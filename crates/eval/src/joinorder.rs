//! Cost-based join-order search: dynamic-programming enumeration of
//! join-chain association orders, a greedy fallback, and the trigger
//! for the worst-case-optimal multiway join.
//!
//! The planner extracts every maximal chain of nested joins as a
//! [`JoinGraph`] (leaves + cross-leaf predicate edges), asks this
//! module for the cheapest [`OrderTree`] under the `C_out` metric —
//! the sum of estimated intermediate cardinalities, each estimate the
//! [`Estimator`]'s join rule ([`join_est`]) whose guaranteed bound is
//! capped by the operand product (the binary AGM bound) — and rebuilds
//! the expression in that order
//! ([`sj_algebra::JoinGraph::join_expr_with`]); a final projection
//! restores the as-written column order, so results are byte-identical
//! for every [`JoinOrder`] mode.
//!
//! Enumeration is the textbook subset DP over connected (and, pricing
//! cross products honestly, disconnected) leaf sets: **bushy** trees
//! for up to [`DP_MAX_RELATIONS`] relations (`O(3ⁿ)` split pairs —
//! trivial at n ≤ 8), greedy pair-merging beyond that or under
//! [`JoinOrder::Greedy`]. Ties and splits are resolved
//! deterministically (canonical split orientation, first-found-wins
//! submask order), so the same statistics always produce the same
//! plan — a requirement for the server's plan cache.
//!
//! **When no pairwise order is good enough**: for chains whose join
//! graph is one simple equality cycle of binary relations (triangles,
//! 4-cycles, …) where even the *cheapest adjacent pairwise join*
//! exceeds the AGM output bound `∏|Rᵢ|^{1/2}`, every pairwise plan
//! must materialize an intermediate larger than the final output, and
//! [`multiway_plan`] tells the planner to collapse the whole chain
//! into one [`crate::kernel::multiway_join`] operator instead (the
//! worst-case-optimal generic join). The reorder pass and the lowering
//! pass both consult the same function, so they never disagree about
//! which chains collapse.

use crate::kernel::{MultiwayLeaf, MultiwaySpec};
use sj_algebra::{Expr, JoinGraph, OrderTree};
use sj_stats::{cycle_agm_bound, eq_join_rows_skewed, join_est, CardEst, Estimator, StatsSource};
use sj_storage::Schema;

/// Largest join-chain size enumerated exhaustively (bushy subset DP,
/// `O(3ⁿ)`); longer chains fall back to the greedy pairing. Eight
/// relations cost 6561 split evaluations — microseconds — while nine
/// would start to show up in planning time.
pub const DP_MAX_RELATIONS: usize = 8;

/// How the planner associates join chains (the `Engine::join_order`
/// knob). Results are byte-identical across all modes; only plan shape
/// and speed change.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum JoinOrder {
    /// Keep the association order the query was written in (the
    /// pre-enumeration behavior, and the only option without
    /// statistics).
    AsWritten,
    /// Greedily merge the pair with the smallest estimated join output
    /// until one tree remains — `O(n³)`, linear trees not guaranteed
    /// optimal.
    Greedy,
    /// Exhaustive bushy dynamic programming up to
    /// [`DP_MAX_RELATIONS`] relations (greedy beyond), plus the
    /// worst-case-optimal multiway collapse for AGM-bound-beating
    /// cyclic chains. The default under statistics.
    #[default]
    Dp,
}

impl std::fmt::Display for JoinOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinOrder::AsWritten => write!(f, "as-written"),
            JoinOrder::Greedy => write!(f, "greedy"),
            JoinOrder::Dp => write!(f, "dp"),
        }
    }
}

/// Reassociate every join chain of `expr` per `order`, using leaf
/// cardinality estimates from `src`. Returns `None` when nothing
/// changed: the mode is [`JoinOrder::AsWritten`], statistics are
/// missing for some leaf, every chosen order already matches the
/// written one, or a chain is ear-marked for the multiway collapse
/// (which the lowering pass performs on the unchanged shape).
pub fn reorder(
    expr: &Expr,
    schema: &Schema,
    src: &dyn StatsSource,
    order: JoinOrder,
) -> Option<Expr> {
    if order == JoinOrder::AsWritten {
        return None;
    }
    let estimator = Estimator::new(src);
    let rewritten = reorder_expr(expr, schema, &estimator, order);
    (rewritten != *expr).then_some(rewritten)
}

fn reorder_expr(e: &Expr, schema: &Schema, est: &Estimator<'_>, order: JoinOrder) -> Expr {
    if matches!(e, Expr::Join(..)) {
        if let Some(g) = JoinGraph::extract(e, schema) {
            let leaves: Vec<Expr> = g
                .leaves
                .iter()
                .map(|l| reorder_expr(l, schema, est, order))
                .collect();
            let leaf_ests: Option<Vec<CardEst>> =
                g.leaves.iter().map(|l| est.estimate(l)).collect();
            let tree = match leaf_ests {
                // Leaves without statistics keep the written order.
                None => g.as_written.clone(),
                Some(ests) => {
                    if order == JoinOrder::Dp && multiway_plan(&g, &ests).is_some() {
                        // The lowering pass collapses this chain into
                        // the multiway operator — leave its shape alone
                        // so it still looks like the extracted cycle.
                        g.as_written.clone()
                    } else {
                        choose_order(&g, &ests, order)
                    }
                }
            };
            return g.join_expr_with(&tree, &leaves);
        }
    }
    // Generic recursion for everything that is not a join chain root.
    match e {
        Expr::Rel(_) => e.clone(),
        Expr::Union(a, b) => Expr::Union(
            Box::new(reorder_expr(a, schema, est, order)),
            Box::new(reorder_expr(b, schema, est, order)),
        ),
        Expr::Diff(a, b) => Expr::Diff(
            Box::new(reorder_expr(a, schema, est, order)),
            Box::new(reorder_expr(b, schema, est, order)),
        ),
        Expr::Project(cols, a) => {
            Expr::Project(cols.clone(), Box::new(reorder_expr(a, schema, est, order)))
        }
        Expr::Select(sel, a) => {
            Expr::Select(sel.clone(), Box::new(reorder_expr(a, schema, est, order)))
        }
        Expr::ConstTag(c, a) => {
            Expr::ConstTag(c.clone(), Box::new(reorder_expr(a, schema, est, order)))
        }
        Expr::Join(theta, a, b) => Expr::Join(
            theta.clone(),
            Box::new(reorder_expr(a, schema, est, order)),
            Box::new(reorder_expr(b, schema, est, order)),
        ),
        Expr::Semijoin(theta, a, b) => Expr::Semijoin(
            theta.clone(),
            Box::new(reorder_expr(a, schema, est, order)),
            Box::new(reorder_expr(b, schema, est, order)),
        ),
        Expr::GroupCount(cols, a) => {
            Expr::GroupCount(cols.clone(), Box::new(reorder_expr(a, schema, est, order)))
        }
    }
}

/// The cheapest association order for `g` under the `C_out` metric,
/// never worse than the as-written order (when the search's best ties
/// the written cost, the written shape wins — no churn for nothing).
pub fn choose_order(g: &JoinGraph<'_>, leaf_ests: &[CardEst], order: JoinOrder) -> OrderTree {
    let chosen = if order == JoinOrder::Dp && g.len() <= DP_MAX_RELATIONS {
        dp_order(g, leaf_ests)
    } else {
        greedy_order(g, leaf_ests)
    };
    let written = order_cost(g, &g.as_written, leaf_ests);
    let best = order_cost(g, &chosen, leaf_ests);
    if best < written {
        chosen
    } else {
        g.as_written.clone()
    }
}

/// The `C_out` cost of an association order: the sum over join nodes
/// of the estimated output cardinality ([`join_est`] on the condition
/// spanning the two subtrees — cross products price at the operand
/// product, so they lose to connected splits on their own merits).
pub fn order_cost(g: &JoinGraph<'_>, tree: &OrderTree, leaf_ests: &[CardEst]) -> f64 {
    fold_est(g, tree, leaf_ests).1
}

/// Cardinality estimate of a subtree's output plus its accumulated
/// `C_out` cost.
fn fold_est(g: &JoinGraph<'_>, tree: &OrderTree, leaf_ests: &[CardEst]) -> (CardEst, f64) {
    match tree {
        OrderTree::Leaf(i) => (leaf_ests[*i].clone(), 0.0),
        OrderTree::Join(l, r) => {
            let (le, lc) = fold_est(g, l, leaf_ests);
            let (re, rc) = fold_est(g, r, leaf_ests);
            let theta = g.span_condition(&layout_of(g, l), &layout_of(g, r));
            let est = join_est(&theta, &le, &re);
            let cost = lc + rc + est.rows;
            (est, cost)
        }
    }
}

/// Column layout of a subtree's output: `(leaf, 1-based col)` in
/// subtree concatenation order.
fn layout_of(g: &JoinGraph<'_>, tree: &OrderTree) -> Vec<(usize, usize)> {
    tree.leaf_sequence()
        .into_iter()
        .flat_map(|leaf| (1..=g.arities[leaf]).map(move |c| (leaf, c)))
        .collect()
}

/// One DP table entry: the best plan found for a leaf subset.
struct Partial {
    cost: f64,
    est: CardEst,
    tree: OrderTree,
}

/// Exhaustive bushy enumeration over leaf subsets (`n ≤
/// [`DP_MAX_RELATIONS`]`): for every subset, try every split into two
/// nonempty halves (canonical orientation — the half containing the
/// subset's lowest leaf goes left, halving the work and making the
/// result deterministic) and keep the cheapest.
fn dp_order(g: &JoinGraph<'_>, leaf_ests: &[CardEst]) -> OrderTree {
    let n = g.len();
    let full = (1usize << n) - 1;
    let mut best: Vec<Option<Partial>> = (0..=full).map(|_| None).collect();
    for i in 0..n {
        best[1 << i] = Some(Partial {
            cost: 0.0,
            est: leaf_ests[i].clone(),
            tree: OrderTree::Leaf(i),
        });
    }
    // Numeric order visits every proper submask before its superset.
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let low = mask & mask.wrapping_neg(); // lowest set bit
        let mut sub = (mask - 1) & mask;
        let mut found: Option<Partial> = None;
        while sub > 0 {
            // Canonical orientation: the left half owns the lowest leaf.
            if sub & low != 0 {
                let (l, r) = (
                    best[sub].as_ref().expect("submask filled"),
                    best[mask ^ sub].as_ref().expect("submask filled"),
                );
                let theta = g.span_condition(&layout_of(g, &l.tree), &layout_of(g, &r.tree));
                let est = join_est(&theta, &l.est, &r.est);
                let cost = l.cost + r.cost + est.rows;
                if found.as_ref().is_none_or(|b| cost < b.cost) {
                    found = Some(Partial {
                        cost,
                        est,
                        tree: OrderTree::join(l.tree.clone(), r.tree.clone()),
                    });
                }
            }
            sub = (sub - 1) & mask;
        }
        best[mask] = found;
    }
    best[full].take().expect("full mask planned").tree
}

/// Greedy pairing for chains past the DP cutoff (or under
/// [`JoinOrder::Greedy`]): repeatedly join the pair of partial trees
/// with the smallest estimated output (ties → lowest index pair).
/// `O(n³)` estimate evaluations; linear in practice on chain shapes.
fn greedy_order(g: &JoinGraph<'_>, leaf_ests: &[CardEst]) -> OrderTree {
    let mut forest: Vec<Partial> = (0..g.len())
        .map(|i| Partial {
            cost: 0.0,
            est: leaf_ests[i].clone(),
            tree: OrderTree::Leaf(i),
        })
        .collect();
    while forest.len() > 1 {
        let mut pick: Option<(usize, usize, CardEst, f64)> = None;
        for i in 0..forest.len() {
            for j in (i + 1)..forest.len() {
                let theta = g.span_condition(
                    &layout_of(g, &forest[i].tree),
                    &layout_of(g, &forest[j].tree),
                );
                let est = join_est(&theta, &forest[i].est, &forest[j].est);
                if pick.as_ref().is_none_or(|&(_, _, _, rows)| est.rows < rows) {
                    let rows = est.rows;
                    pick = Some((i, j, est, rows));
                }
            }
        }
        let (i, j, est, _) = pick.expect("forest has at least two trees");
        let right = forest.remove(j);
        let left = forest.remove(i);
        let cost = left.cost + right.cost + est.rows;
        forest.insert(
            i,
            Partial {
                cost,
                est,
                tree: OrderTree::join(left.tree, right.tree),
            },
        );
    }
    forest.pop().expect("one tree remains").tree
}

/// Decide whether a chain collapses into the worst-case-optimal
/// multiway join, and build its kernel spec if so. Fires when the join
/// graph is one simple equality cycle of binary relations **and** the
/// cheapest cycle-adjacent pairwise join is estimated above the AGM
/// output bound `∏|Rᵢ|^{1/2}` — the first intermediate of *any*
/// pairwise plan is either one of those adjacent joins or a (strictly
/// larger) cross product, so every pairwise order is estimated to
/// materialize more than the output can hold.
///
/// Pairwise intermediates are priced with the **skew-aware** estimate
/// ([`eq_join_rows_skewed`]): under the uniform distinct-count formula
/// consistent statistics can *never* put an adjacent join above the
/// cycle's AGM bound (each relation has `rows ≤ d₁·d₂`, so the
/// pairwise estimates telescope below `∏|Rᵢ|^{1/2}`) — hub skew is
/// precisely what pushes real intermediates past the bound, and
/// `max_freq` is the statistic that sees it. Both the reorder pass and
/// the lowering pass call this, keeping their decisions aligned.
pub fn multiway_plan(g: &JoinGraph<'_>, leaf_ests: &[CardEst]) -> Option<MultiwaySpec> {
    let cycle = g.hamiltonian_cycle()?;
    let agm = cycle_agm_bound(leaf_ests.iter().map(|e| e.rows));
    let k = cycle.len();
    let cheapest_pairwise = (0..k)
        .map(|p| {
            let (a, b) = (cycle[p].leaf, cycle[(p + 1) % k].leaf);
            let theta = g.span_condition(&leaf_layout(g, a), &leaf_layout(g, b));
            // Adjacent cycle leaves share exactly one variable; extra
            // atoms (self-join corner cases) only filter further.
            theta
                .atoms()
                .iter()
                .map(|at| eq_join_rows_skewed(&leaf_ests[a], at.left, &leaf_ests[b], at.right))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::INFINITY, f64::min);
    (cheapest_pairwise > agm).then(|| MultiwaySpec {
        cycle: cycle
            .iter()
            .map(|p| MultiwayLeaf {
                child: p.leaf,
                var_col: p.var_col - 1,
                next_col: p.next_col - 1,
            })
            .collect(),
    })
}

fn leaf_layout(g: &JoinGraph<'_>, leaf: usize) -> Vec<(usize, usize)> {
    (1..=g.arities[leaf]).map(|c| (leaf, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::Condition;
    use sj_stats::AnalyzeSource;
    use sj_storage::{Database, Relation};

    /// R: 1000 rows, S: 10 rows, T: 3 rows; chain R ⋈ S ⋈ T written
    /// worst-first.
    fn chain_db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<i64>> = (0..1000).map(|i| vec![i % 50, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        db.set("R", Relation::from_int_rows(&refs));
        let srows: Vec<Vec<i64>> = (0..10).map(|i| vec![i, i % 3]).collect();
        let srefs: Vec<&[i64]> = srows.iter().map(|r| r.as_slice()).collect();
        db.set("S", Relation::from_int_rows(&srefs));
        db.set("T", Relation::from_int_rows(&[&[0, 0], &[1, 1], &[2, 2]]));
        db
    }

    fn chain_expr() -> Expr {
        // (R ⋈₁₌₂ S) ⋈₃₌₁ T — the written order joins the two big
        // relations first on a low-selectivity key (R.1 has 50
        // distinct values over 1000 rows), while S ⋈ T is tiny.
        Expr::rel("R")
            .join(Condition::eq(1, 2), Expr::rel("S"))
            .join(Condition::eq(3, 1), Expr::rel("T"))
    }

    #[test]
    fn dp_reorders_a_badly_written_chain() {
        let db = chain_db();
        let src = AnalyzeSource::new(&db);
        let e = chain_expr();
        let reordered = reorder(&e, &db.schema(), &src, JoinOrder::Dp)
            .expect("worst-first chain must be reordered");
        // The cheapest association is R ⋈ (S ⋈ T): the leaf sequence is
        // unchanged, so the rebuild needs no restoring projection and
        // stays a join.
        assert!(matches!(reordered, Expr::Join(..)), "{reordered}");
        // It costs strictly less under the same estimates.
        let g = JoinGraph::extract(&e, &db.schema()).unwrap();
        let est = Estimator::new(&src);
        let ests: Vec<CardEst> = g.leaves.iter().map(|l| est.estimate(l).unwrap()).collect();
        let chosen = choose_order(&g, &ests, JoinOrder::Dp);
        assert!(order_cost(&g, &chosen, &ests) < order_cost(&g, &g.as_written, &ests));
        // S and T meet first in the cheapest tree.
        assert_ne!(chosen, g.as_written);
    }

    #[test]
    fn as_written_mode_never_rewrites() {
        let db = chain_db();
        let src = AnalyzeSource::new(&db);
        assert!(reorder(&chain_expr(), &db.schema(), &src, JoinOrder::AsWritten).is_none());
    }

    #[test]
    fn well_written_chains_are_left_alone() {
        let db = chain_db();
        let src = AnalyzeSource::new(&db);
        // T ⋈ S ⋈ R — already cheapest-first; the canonical DP tree
        // ties or matches it, so nothing changes.
        let e = Expr::rel("T")
            .join(Condition::eq(2, 2), Expr::rel("S"))
            .join(Condition::eq(3, 2), Expr::rel("R"));
        let g = JoinGraph::extract(&e, &db.schema()).unwrap();
        let est = Estimator::new(&src);
        let ests: Vec<CardEst> = g.leaves.iter().map(|l| est.estimate(l).unwrap()).collect();
        let chosen = choose_order(&g, &ests, JoinOrder::Dp);
        assert!(order_cost(&g, &chosen, &ests) <= order_cost(&g, &g.as_written, &ests));
    }

    #[test]
    fn greedy_and_dp_agree_on_small_chains_cost_order() {
        let db = chain_db();
        let src = AnalyzeSource::new(&db);
        let e = chain_expr();
        let g = JoinGraph::extract(&e, &db.schema()).unwrap();
        let est = Estimator::new(&src);
        let ests: Vec<CardEst> = g.leaves.iter().map(|l| est.estimate(l).unwrap()).collect();
        let dp = choose_order(&g, &ests, JoinOrder::Dp);
        let greedy = choose_order(&g, &ests, JoinOrder::Greedy);
        // DP is exhaustive: its cost lower-bounds greedy's.
        assert!(order_cost(&g, &dp, &ests) <= order_cost(&g, &greedy, &ests));
    }

    /// The as-written triangle over an edge relation E(src, dst).
    fn triangle_expr() -> Expr {
        Expr::rel("E")
            .join(Condition::eq(2, 1), Expr::rel("E"))
            .join(Condition::eq_pairs([(4, 1), (1, 2)]), Expr::rel("E"))
    }

    fn triangle_graph_ests<'a>(
        tri: &'a Expr,
        db: &Database,
        src: &AnalyzeSource<'_>,
    ) -> (JoinGraph<'a>, Vec<CardEst>) {
        let g = JoinGraph::extract(tri, &db.schema()).unwrap();
        let est = Estimator::new(src);
        let ests: Vec<CardEst> = g.leaves.iter().map(|l| est.estimate(l).unwrap()).collect();
        (g, ests)
    }

    #[test]
    fn multiway_fires_on_skewed_triangles_not_on_chains_or_uniform_cycles() {
        let tri = triangle_expr();

        // Hub graph: vertex 0 connects to everything in both
        // directions — the pairwise join through the hub materializes
        // ~hub² rows, past the AGM bound at any scale.
        let mut db = Database::new();
        let mut rows: Vec<Vec<i64>> = (0..200).map(|i| vec![0, i]).collect();
        rows.extend((1..200).map(|i| vec![i, 0]));
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        db.set("E", Relation::from_int_rows(&refs));
        let src = AnalyzeSource::new(&db);
        let (g, ests) = triangle_graph_ests(&tri, &db, &src);
        assert!(
            multiway_plan(&g, &ests).is_some(),
            "hub triangle collapses to the multiway join"
        );

        // A complete bipartite graph is the AGM-tight case: the
        // pairwise estimate exactly meets the bound, never strictly
        // exceeds it — pairwise plans are kept.
        let mut db2 = Database::new();
        let rows2: Vec<Vec<i64>> = (0..30)
            .flat_map(|a| (0..30).map(move |b| vec![a, b]))
            .collect();
        let refs2: Vec<&[i64]> = rows2.iter().map(|r| r.as_slice()).collect();
        db2.set("E", Relation::from_int_rows(&refs2));
        let src2 = AnalyzeSource::new(&db2);
        let (g2, ests2) = triangle_graph_ests(&tri, &db2, &src2);
        assert!(multiway_plan(&g2, &ests2).is_none());

        // A chain never collapses regardless of sizes.
        let db3 = chain_db();
        let src3 = AnalyzeSource::new(&db3);
        let chain = chain_expr();
        let g3 = JoinGraph::extract(&chain, &db3.schema()).unwrap();
        let est3 = Estimator::new(&src3);
        let ests3: Vec<CardEst> = g3
            .leaves
            .iter()
            .map(|l| est3.estimate(l).unwrap())
            .collect();
        assert!(multiway_plan(&g3, &ests3).is_none());

        // A 1:1 matching triangle (uniform, sparse): pairwise joins
        // stay far below the AGM bound — no collapse.
        let mut db4 = Database::new();
        let mrows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i]).collect();
        let mrefs: Vec<&[i64]> = mrows.iter().map(|r| r.as_slice()).collect();
        db4.set("E", Relation::from_int_rows(&mrefs));
        let src4 = AnalyzeSource::new(&db4);
        let (g4, ests4) = triangle_graph_ests(&tri, &db4, &src4);
        assert!(multiway_plan(&g4, &ests4).is_none());
    }

    #[test]
    fn multiway_spec_maps_cycle_positions_to_zero_based_columns() {
        let mut db = Database::new();
        // Hub: vertex 0 connects to everything — pairwise joins
        // explode through the hub.
        let mut rows: Vec<Vec<i64>> = (0..200).map(|i| vec![0, i]).collect();
        rows.extend((0..200).map(|i| vec![i, 0]));
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        db.set("E", Relation::from_int_rows(&refs));
        let src = AnalyzeSource::new(&db);
        let tri = triangle_expr();
        let (g, ests) = triangle_graph_ests(&tri, &db, &src);
        let spec = multiway_plan(&g, &ests).expect("hub triangle beats AGM");
        assert_eq!(spec.cycle.len(), 3);
        let mut children: Vec<usize> = spec.cycle.iter().map(|p| p.child).collect();
        children.sort_unstable();
        assert_eq!(children, vec![0, 1, 2]);
        for p in &spec.cycle {
            assert!(p.var_col < 2 && p.next_col < 2 && p.var_col != p.next_col);
        }
    }
}
