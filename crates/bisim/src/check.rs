//! Verification that a given set `I` is a C-guarded bisimulation
//! (Definition 11).

use crate::iso::{check_c_partial_iso, PartialIso};
use sj_storage::{Database, Value};

/// A (candidate) guarded bisimulation: a set of partial isomorphisms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bisimulation {
    /// The partial isomorphisms, deduplicated.
    pub isos: Vec<PartialIso>,
}

impl Bisimulation {
    /// Build from a list of isomorphisms (deduplicates).
    pub fn new(isos: impl IntoIterator<Item = PartialIso>) -> Self {
        let mut v: Vec<PartialIso> = isos.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Bisimulation { isos: v }
    }

    /// Number of partial isomorphisms.
    pub fn len(&self) -> usize {
        self.isos.len()
    }

    /// True when the set is empty (an empty set is *not* a valid
    /// bisimulation — Definition 11 requires nonemptiness).
    pub fn is_empty(&self) -> bool {
        self.isos.is_empty()
    }

    /// Does the set contain the componentwise map `ā → b̄`?
    pub fn contains_tuple_map(&self, a: &sj_storage::Tuple, b: &sj_storage::Tuple) -> bool {
        match PartialIso::from_tuples(a, b) {
            Ok(m) => self.isos.contains(&m),
            Err(_) => false,
        }
    }
}

/// Check all of Definition 11 for a user-supplied set `I`:
///
/// 1. `I` is nonempty;
/// 2. every element is a C-partial isomorphism from `a` to `b`;
/// 3. **Forth**: for every `f : X → Y` in `I` and every guarded set `X′`
///    of `a`, some `g : X′ → Y′` in `I` agrees with `f` on `X ∩ X′`;
/// 4. **Back**: for every `f` in `I` and every guarded set `Y′` of `b`,
///    some `g : X′ → Y′` in `I` has `g⁻¹` agreeing with `f⁻¹` on `Y ∩ Y′`.
///
/// Returns a description of the first violation.
pub fn check_bisimulation(
    a: &Database,
    b: &Database,
    i: &Bisimulation,
    constants: &[Value],
) -> Result<(), String> {
    if i.is_empty() {
        return Err("a guarded bisimulation must be nonempty".into());
    }
    for f in &i.isos {
        check_c_partial_iso(a, b, f, constants)
            .map_err(|e| format!("element {f} is not a C-partial isomorphism: {e}"))?;
    }
    let guarded_a = a.guarded_sets();
    let guarded_b = b.guarded_sets();
    for f in &i.isos {
        let dom = f.domain();
        let ran = f.range();
        // Forth.
        for x_prime in &guarded_a {
            let found = i
                .isos
                .iter()
                .any(|g| g.domain() == *x_prime && f.agrees_forward(g, &dom));
            if !found {
                return Err(format!(
                    "forth fails for {f} at guarded set {x_prime:?}: no g with that \
                     domain agrees on the overlap"
                ));
            }
        }
        // Back.
        for y_prime in &guarded_b {
            let found = i
                .isos
                .iter()
                .any(|g| g.range() == *y_prime && f.agrees_backward(g, &ran));
            if !found {
                return Err(format!(
                    "back fails for {f} at guarded set {y_prime:?}: no g with that \
                     range agrees on the overlap"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{tuple, Relation, Tuple};

    fn fig3_a() -> Database {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 3]]));
        d.set("S", Relation::from_int_rows(&[&[1, 2]]));
        d.set("T", Relation::from_int_rows(&[&[2, 3]]));
        d
    }

    fn fig3_b() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[6, 7], &[7, 8], &[9, 10], &[10, 11]]),
        );
        d.set("S", Relation::from_int_rows(&[&[6, 7], &[9, 10]]));
        d.set("T", Relation::from_int_rows(&[&[7, 8], &[10, 11]]));
        d
    }

    fn fig3_bisim() -> Bisimulation {
        let maps = [
            (tuple![1, 2], tuple![6, 7]),
            (tuple![2, 3], tuple![7, 8]),
            (tuple![1, 2], tuple![9, 10]),
            (tuple![2, 3], tuple![10, 11]),
        ];
        Bisimulation::new(
            maps.iter()
                .map(|(x, y)| PartialIso::from_tuples(x, y).unwrap()),
        )
    }

    #[test]
    fn example_12_verifies() {
        // The exact set given in Example 12 of the paper is a ∅-guarded
        // bisimulation between the Fig. 3 databases.
        let (a, b) = (fig3_a(), fig3_b());
        check_bisimulation(&a, &b, &fig3_bisim(), &[]).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn dropping_an_element_breaks_it() {
        // Without (2,3) → (7,8), the forth condition fails for
        // (1,2) → (6,7) at the guarded set {2,3}: the only remaining map
        // with domain {2,3} is (2,3) → (10,11), which disagrees on 2.
        let (a, b) = (fig3_a(), fig3_b());
        let partial = Bisimulation::new(
            [
                (tuple![1, 2], tuple![6, 7]),
                (tuple![1, 2], tuple![9, 10]),
                (tuple![2, 3], tuple![10, 11]),
            ]
            .iter()
            .map(|(x, y)| PartialIso::from_tuples(x, y).unwrap()),
        );
        let err = check_bisimulation(&a, &b, &partial, &[]).unwrap_err();
        assert!(err.contains("forth") || err.contains("back"), "{err}");
    }

    #[test]
    fn empty_set_rejected() {
        let (a, b) = (fig3_a(), fig3_b());
        let err = check_bisimulation(&a, &b, &Bisimulation::new([]), &[]).unwrap_err();
        assert!(err.contains("nonempty"));
    }

    #[test]
    fn non_iso_element_rejected() {
        let (a, b) = (fig3_a(), fig3_b());
        let mut isos = fig3_bisim().isos;
        isos.push(PartialIso::from_tuples(&tuple![1, 2], &tuple![7, 8]).unwrap());
        let err = check_bisimulation(&a, &b, &Bisimulation::new(isos), &[]).unwrap_err();
        assert!(err.contains("not a C-partial isomorphism"), "{err}");
    }

    #[test]
    fn contains_tuple_map() {
        let i = fig3_bisim();
        assert!(i.contains_tuple_map(&tuple![1, 2], &tuple![6, 7]));
        assert!(!i.contains_tuple_map(&tuple![1, 2], &tuple![7, 8]));
        assert!(!i.contains_tuple_map(&tuple![1, 1], &tuple![6, 7])); // not a map
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn identity_bisimulation_on_same_database() {
        // {t → t : t ∈ T_D} is always a bisimulation from D to itself.
        let a = fig3_a();
        let isos: Vec<PartialIso> = a
            .tuple_space_set()
            .iter()
            .map(|t: &Tuple| PartialIso::from_tuples(t, t).unwrap())
            .collect();
        check_bisimulation(&a, &a, &Bisimulation::new(isos), &[]).unwrap_or_else(|e| panic!("{e}"));
    }
}
