//! The paper's figures as constant databases, reproduced cell for cell.
//!
//! | function | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — Person / Disease / Symptoms |
//! | [`fig2`] | Fig. 2 — the C-stored-tuple example database |
//! | [`fig3_a`], [`fig3_b`] | Fig. 3 — the guarded-bisimulation pair |
//! | [`fig4`] | Fig. 4 (top) — the pump-construction seed `D` |
//! | [`fig5_a`], [`fig5_b`] | Fig. 5 — the division counterexample pair |
//! | [`fig6_a`], [`fig6_b`] | Fig. 6 — the cyclic-query counterexample pair |
//! | [`example3_beer_db`] | a small instance of Ullman's beer-drinkers schema |

use sj_algebra::{Condition, Expr};
use sj_storage::{Database, Relation};

/// Fig. 1: the Person/Disease/Symptoms illustration of set-containment
/// join and division.
pub fn fig1() -> Database {
    let mut d = Database::new();
    d.set(
        "Person",
        Relation::from_str_rows(&[
            &["An", "headache"],
            &["An", "sore throat"],
            &["An", "neck pain"],
            &["Bob", "headache"],
            &["Bob", "sore throat"],
            &["Bob", "memory loss"],
            &["Bob", "neck pain"],
            &["Carol", "headache"],
        ]),
    );
    d.set(
        "Disease",
        Relation::from_str_rows(&[
            &["flu", "headache"],
            &["flu", "sore throat"],
            &["Lyme", "headache"],
            &["Lyme", "sore throat"],
            &["Lyme", "memory loss"],
            &["Lyme", "neck pain"],
        ]),
    );
    d.set(
        "Symptoms",
        Relation::from_str_rows(&[&["headache"], &["neck pain"]]),
    );
    d
}

/// Fig. 1's expected set-containment join result:
/// `{(An, flu), (Bob, flu), (Bob, Lyme)}`.
pub fn fig1_expected_join() -> Relation {
    Relation::from_str_rows(&[&["An", "flu"], &["Bob", "flu"], &["Bob", "Lyme"]])
}

/// Fig. 1's expected division result: `{An, Bob}`.
pub fn fig1_expected_division() -> Relation {
    Relation::from_str_rows(&[&["An"], &["Bob"]])
}

/// Fig. 2: `R`, `S` ternary and `T` binary — the database of Example 5
/// (C-stored tuples).
pub fn fig2() -> Database {
    let mut d = Database::new();
    d.set(
        "R",
        Relation::from_str_rows(&[&["a", "b", "c"], &["d", "e", "f"]]),
    );
    d.set("S", Relation::from_str_rows(&[&["d", "a", "b"]]));
    d.set("T", Relation::from_str_rows(&[&["e", "a"], &["f", "c"]]));
    d
}

/// Fig. 3, database A (guarded bisimulation illustration).
pub fn fig3_a() -> Database {
    let mut d = Database::new();
    d.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 3]]));
    d.set("S", Relation::from_int_rows(&[&[1, 2]]));
    d.set("T", Relation::from_int_rows(&[&[2, 3]]));
    d
}

/// Fig. 3, database B.
pub fn fig3_b() -> Database {
    let mut d = Database::new();
    d.set(
        "R",
        Relation::from_int_rows(&[&[6, 7], &[7, 8], &[9, 10], &[10, 11]]),
    );
    d.set("S", Relation::from_int_rows(&[&[6, 7], &[9, 10]]));
    d.set("T", Relation::from_int_rows(&[&[7, 8], &[10, 11]]));
    d
}

/// Fig. 4 (top): the seed database `D` of the pump-construction example.
pub fn fig4() -> Database {
    let mut d = Database::new();
    d.set("R", Relation::from_int_rows(&[&[1, 2, 3], &[8, 9, 10]]));
    d.set("S", Relation::from_int_rows(&[&[3, 4, 5]]));
    d.set("T", Relation::from_int_rows(&[&[6, 1], &[4, 7]]));
    d
}

/// Fig. 4's expression `E = (R ⋉₁₌₂ T) ⋈₃₌₁ (S ⋉₂₌₁ T)` together with its
/// left and right SA= operands.
pub fn fig4_expression() -> (Expr, Expr, Expr) {
    let e1 = Expr::rel("R").semijoin(Condition::eq(1, 2), Expr::rel("T"));
    let e2 = Expr::rel("S").semijoin(Condition::eq(2, 1), Expr::rel("T"));
    let e = e1.clone().join(Condition::eq(3, 1), e2.clone());
    (e, e1, e2)
}

/// Fig. 5, database A: `R ÷ S = {1, 2}`.
pub fn fig5_a() -> Database {
    let mut d = Database::new();
    d.set(
        "R",
        Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[2, 8]]),
    );
    d.set("S", Relation::from_int_rows(&[&[7], &[8]]));
    d
}

/// Fig. 5, database B: `R ÷ S = ∅`, yet `B, 1` is guarded-bisimilar to
/// `A, 1`.
pub fn fig5_b() -> Database {
    let mut d = Database::new();
    d.set(
        "R",
        Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 8], &[2, 9], &[3, 7], &[3, 9]]),
    );
    d.set("S", Relation::from_int_rows(&[&[7], &[8], &[9]]));
    d
}

/// Fig. 6, database A: Alex visits the Pareto bar, which serves
/// Westmalle, which he likes.
pub fn fig6_a() -> Database {
    let mut d = Database::new();
    d.set(
        "Visits",
        Relation::from_str_rows(&[&["alex", "pareto bar"]]),
    );
    d.set(
        "Serves",
        Relation::from_str_rows(&[&["pareto bar", "westmalle"]]),
    );
    d.set("Likes", Relation::from_str_rows(&[&["alex", "westmalle"]]));
    d
}

/// Fig. 6, database B: nobody visits a bar serving a beer they like —
/// yet `B, alex` is guarded-bisimilar to `A, alex`.
pub fn fig6_b() -> Database {
    let mut d = Database::new();
    d.set(
        "Visits",
        Relation::from_str_rows(&[&["alex", "pareto bar"], &["bart", "qwerty bar"]]),
    );
    d.set(
        "Serves",
        Relation::from_str_rows(&[
            &["pareto bar", "westmalle"],
            &["qwerty bar", "westvleteren"],
        ]),
    );
    d.set(
        "Likes",
        Relation::from_str_rows(&[&["alex", "westvleteren"], &["bart", "westmalle"]]),
    );
    d
}

/// A small beer-drinkers instance for Example 3 / Example 7 with one
/// lousy bar ("bad bar", serving only unliked "swill").
pub fn example3_beer_db() -> Database {
    let mut db = Database::new();
    db.set(
        "Visits",
        Relation::from_str_rows(&[
            &["an", "bad bar"],
            &["bob", "good bar"],
            &["eve", "bad bar"],
        ]),
    );
    db.set(
        "Serves",
        Relation::from_str_rows(&[
            &["bad bar", "swill"],
            &["good bar", "nectar"],
            &["good bar", "swill"],
        ]),
    );
    db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_printed_figures() {
        assert_eq!(fig1().size(), 8 + 6 + 2);
        assert_eq!(fig2().size(), 5);
        assert_eq!(fig3_a().size(), 4);
        assert_eq!(fig3_b().size(), 8);
        assert_eq!(fig4().size(), 5);
        assert_eq!(fig5_a().size(), 6);
        assert_eq!(fig5_b().size(), 9);
        assert_eq!(fig6_a().size(), 3);
        assert_eq!(fig6_b().size(), 6);
    }

    #[test]
    fn fig4_expression_arities() {
        let (e, e1, e2) = fig4_expression();
        let schema = fig4().schema();
        assert_eq!(e1.arity(&schema).unwrap(), 3);
        assert_eq!(e2.arity(&schema).unwrap(), 3);
        assert_eq!(e.arity(&schema).unwrap(), 6);
        assert!(e1.is_sa_eq() && e2.is_sa_eq());
        assert!(!e.is_sa());
    }

    #[test]
    fn schemas_are_as_expected() {
        let s = fig1().schema();
        assert_eq!(s.arity_of("Person"), Some(2));
        assert_eq!(s.arity_of("Symptoms"), Some(1));
        let s6 = fig6_a().schema();
        assert_eq!(s6.arity_of("Visits"), Some(2));
        assert_eq!(s6.arity_of("Serves"), Some(2));
        assert_eq!(s6.arity_of("Likes"), Some(2));
    }
}
