//! Errors for the dichotomy machinery.

use std::fmt;

/// Errors from the pump construction, rewriter, and analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Lemma 24 requires both free-value sets nonempty.
    EmptyFreeValues {
        /// Which side ("left"/"right") was empty.
        side: &'static str,
    },
    /// The witness pair does not satisfy the join condition.
    WitnessDoesNotJoin,
    /// The pump construction's fresh-value allocation is implemented for
    /// the integer universe; a non-integer value was encountered.
    NonIntegerUniverse,
    /// A free value fell inside the constant range, which the re-spacing
    /// scheme cannot stretch (cannot happen for values produced by
    /// Definition 22; indicates misuse).
    FreeValueInConstantRange,
    /// The expression is outside the fragment an operation handles.
    NotLinearSafe(String),
    /// Underlying algebra error.
    Algebra(sj_algebra::AlgebraError),
    /// Underlying evaluation error.
    Eval(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyFreeValues { side } => {
                write!(
                    f,
                    "the {side} free-value set is empty (Lemma 24 needs both nonempty)"
                )
            }
            CoreError::WitnessDoesNotJoin => {
                write!(f, "the witness pair does not satisfy the join condition")
            }
            CoreError::NonIntegerUniverse => {
                write!(f, "pump construction requires an integer universe")
            }
            CoreError::FreeValueInConstantRange => {
                write!(f, "a free value lies inside the constant range")
            }
            CoreError::NotLinearSafe(m) => write!(f, "not linear-safe: {m}"),
            CoreError::Algebra(e) => write!(f, "algebra error: {e}"),
            CoreError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sj_algebra::AlgebraError> for CoreError {
    fn from(e: sj_algebra::AlgebraError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<sj_eval::EvalError> for CoreError {
    fn from(e: sj_eval::EvalError) -> Self {
        CoreError::Eval(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::EmptyFreeValues { side: "left" }
            .to_string()
            .contains("left"));
        assert!(CoreError::NonIntegerUniverse
            .to_string()
            .contains("integer"));
        assert!(CoreError::NotLinearSafe("x".into())
            .to_string()
            .contains("x"));
    }
}
