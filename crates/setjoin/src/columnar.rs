//! Columnar signature set join: signatures and verification computed
//! directly from a relation's [`Columns`] view.
//!
//! The row-wise [`crate::signature_set_join`] walks `(key, Vec<Value>)`
//! groups — every element is cloned into the group list, every signature
//! bit goes through a `Value` hash (enum dispatch plus `Arc<str>`
//! dereference), and every verification merge compares `Value`s. The
//! columnar port removes all three costs:
//!
//! * **Grouping** is a boundary scan over column 0 — a dense `i64` (or
//!   dictionary-code) run-length pass producing `(start, end)` row
//!   ranges. No element is copied: a group's element *set* is a
//!   contiguous, strictly increasing slice of the element column
//!   (canonical relation order sorts by key first, element second).
//! * **Signatures** are a dense u64 fold over the element column slice
//!   (`acc | 1 << (mix(x) & 63)` per element — branch-free,
//!   SIMD-friendly), one stream per group range.
//! * **Verification** merges run over `i64` slices, or over dictionary
//!   codes translated into a **joint code space**: the two relations'
//!   sorted dictionaries are merged once ([`joint_codes`]), after which
//!   cross-relation string comparison is a `u32` compare.
//!
//! The signature *bits* differ from the row implementation's (they hash
//! raw cells, not `Value`s) — that is fine: signatures only prune, the
//! exact verification decides, and the result is byte-identical. The
//! columnar path covers element columns that are both integers or both
//! dictionary-encoded strings; anything else (mixed-variant columns)
//! returns `None` and the caller falls back to the row path.

use crate::setjoin::SetPredicate;
use sj_storage::column::hash_int_cell;
use sj_storage::{ColumnData, Columns, Relation, StrDict, Tuple};

/// The `(start, end)` row ranges of column 0's equal-key runs — the
/// groups of a binary set-join operand, in key order, without
/// materializing a single key or element.
pub fn group_ranges(cols: &Columns) -> Vec<(u32, u32)> {
    let n = cols.len();
    let mut out: Vec<(u32, u32)> = Vec::new();
    if n == 0 {
        return out;
    }
    let mut push_runs = |neq: &mut dyn FnMut(usize) -> bool| {
        let mut start = 0usize;
        for i in 1..n {
            if neq(i) {
                out.push((start as u32, i as u32));
                start = i;
            }
        }
        out.push((start as u32, n as u32));
    };
    match cols.col(0) {
        ColumnData::Int(v) => push_runs(&mut |i| v[i] != v[i - 1]),
        ColumnData::Str(v) => push_runs(&mut |i| v[i] != v[i - 1]),
        ColumnData::Mixed(v) => push_runs(&mut |i| v[i] != v[i - 1]),
    }
    out
}

/// Merge two sorted dictionaries into one joint code space: returns, for
/// each dictionary, the strictly increasing map from its codes to joint
/// codes. Equal strings get the same joint code, so cross-relation
/// string equality (and order) becomes `u32` equality (and order).
pub fn joint_codes(a: &StrDict, b: &StrDict) -> (Vec<u32>, Vec<u32>) {
    let (mut ma, mut mb) = (Vec::with_capacity(a.len()), Vec::with_capacity(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    let mut next = 0u32;
    while i < a.len() || j < b.len() {
        let ord = if i == a.len() {
            std::cmp::Ordering::Greater
        } else if j == b.len() {
            std::cmp::Ordering::Less
        } else {
            a.strings()[i].as_ref().cmp(b.strings()[j].as_ref())
        };
        match ord {
            std::cmp::Ordering::Less => {
                ma.push(next);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                mb.push(next);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                ma.push(next);
                mb.push(next);
                i += 1;
                j += 1;
            }
        }
        next += 1;
    }
    (ma, mb)
}

/// 64-bit superset signature of a dense sorted element slice: the OR of
/// one [`hash_int_cell`] bit per element. Works for `i64` element
/// columns and joint-space `u32` codes alike (both embed into `i64`),
/// which is what lets the serial columnar join and the partition-
/// parallel one ([`crate::parallel`]) share one signature definition.
pub(crate) fn dense_signature<T: Copy + Into<i64>>(set: &[T]) -> u64 {
    set.iter().fold(0u64, |acc, &x| {
        acc | (1u64 << (hash_int_cell(x.into()) & 63))
    })
}

/// One relation's element column in a comparison-ready dense form.
enum Elems<'a> {
    /// Integer elements: the column slice itself, zero-copy.
    Ints(&'a [i64]),
    /// String elements as joint-space codes (one remap pass).
    Codes(Vec<u32>),
}

impl Elems<'_> {
    /// The group's element slice and its 64-bit signature fold.
    fn signature(&self, start: usize, end: usize) -> u64 {
        match self {
            Elems::Ints(v) => dense_signature(&v[start..end]),
            Elems::Codes(v) => dense_signature(&v[start..end]),
        }
    }
}

/// Is sorted `sub` a subset of sorted `sup`? (Merge scan over dense
/// values — the columnar counterpart of the row path's `Value` merge.)
fn sorted_subset<T: Ord>(sub: &[T], sup: &[T]) -> bool {
    let mut i = 0;
    for v in sub {
        while i < sup.len() && sup[i] < *v {
            i += 1;
        }
        if i >= sup.len() || sup[i] != *v {
            return false;
        }
        i += 1;
    }
    true
}

/// Do two sorted slices share an element?
fn intersects<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Exact predicate check on two sorted dense element slices (`b` is the
/// R-side set, `d` the S-side set — the argument order of the row path's
/// `predicate_holds`). Shared with the partition-parallel columnar join.
pub(crate) fn predicate_on<T: Ord>(pred: SetPredicate, b: &[T], d: &[T]) -> bool {
    match pred {
        SetPredicate::Contains => sorted_subset(d, b),
        SetPredicate::ContainedIn => sorted_subset(b, d),
        SetPredicate::Equals => b == d,
        SetPredicate::IntersectsNonempty => intersects(b, d),
    }
}

/// Remap a dictionary-code column through a joint-code map.
pub(crate) fn remap(codes: &[u32], map: &[u32]) -> Vec<u32> {
    codes.iter().map(|&c| map[c as usize]).collect()
}

/// The columnar signature set join, when the element columns support it:
/// both integer columns, or both dictionary-encoded string columns.
/// Returns `None` otherwise (mixed-variant element columns) — callers
/// fall back to the row-wise [`crate::signature_set_join_rowwise`].
/// Output is byte-identical to the row path.
pub fn columnar_signature_set_join(
    r: &Relation,
    s: &Relation,
    pred: SetPredicate,
) -> Option<Relation> {
    assert_eq!(r.arity(), 2, "set-join operands must be binary");
    assert_eq!(s.arity(), 2, "set-join operands must be binary");
    let (rc, sc) = (r.columns(), s.columns());
    let (relems, selems) = match (rc.col(1), sc.col(1)) {
        (ColumnData::Int(a), ColumnData::Int(b)) => {
            (Elems::Ints(a.as_slice()), Elems::Ints(b.as_slice()))
        }
        (ColumnData::Str(a), ColumnData::Str(b)) => {
            let (mr, ms) = joint_codes(rc.dict(), sc.dict());
            (Elems::Codes(remap(a, &mr)), Elems::Codes(remap(b, &ms)))
        }
        // Cross-variant element columns never match; mixed columns are
        // rare and stay on the row path.
        _ => return None,
    };
    let rg = group_ranges(rc);
    let sg = group_ranges(sc);
    let rsig: Vec<u64> = rg
        .iter()
        .map(|&(a, b)| relems.signature(a as usize, b as usize))
        .collect();
    let ssig: Vec<u64> = sg
        .iter()
        .map(|&(a, b)| selems.signature(a as usize, b as usize))
        .collect();
    let verify = |bi: &(u32, u32), di: &(u32, u32)| -> bool {
        let (bs, be) = (bi.0 as usize, bi.1 as usize);
        let (ds, de) = (di.0 as usize, di.1 as usize);
        match (&relems, &selems) {
            (Elems::Ints(b), Elems::Ints(d)) => predicate_on(pred, &b[bs..be], &d[ds..de]),
            (Elems::Codes(b), Elems::Codes(d)) => predicate_on(pred, &b[bs..be], &d[ds..de]),
            _ => unreachable!("element representations agree by construction"),
        }
    };
    let mut out: Vec<Tuple> = Vec::new();
    for (bi, &sb) in rg.iter().zip(&rsig) {
        for (di, &sd) in sg.iter().zip(&ssig) {
            let may = match pred {
                SetPredicate::Contains => sd & !sb == 0,
                SetPredicate::ContainedIn => sb & !sd == 0,
                SetPredicate::Equals => sb == sd,
                // Groups are never empty (every group has ≥ 1 row), so
                // the signature intersection test is exact enough.
                SetPredicate::IntersectsNonempty => sb & sd != 0,
            };
            if may && verify(bi, di) {
                out.push(Tuple::new(vec![
                    rc.value_at(0, bi.0 as usize),
                    sc.value_at(0, di.0 as usize),
                ]));
            }
        }
    }
    Some(Relation::from_tuples(2, out).expect("binary output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setjoin::{nested_loop_set_join, signature_set_join_rowwise};
    use sj_storage::{Relation, Value};
    use SetPredicate::*;

    #[test]
    fn group_ranges_match_group_sets() {
        let r = Relation::from_int_rows(&[&[2, 9], &[1, 7], &[1, 8], &[3, 1]]);
        let ranges = group_ranges(r.columns());
        assert_eq!(ranges, vec![(0, 2), (2, 3), (3, 4)]);
        assert!(group_ranges(Relation::empty(2).columns()).is_empty());
        // String keys.
        let s = Relation::from_str_rows(&[&["a", "x"], &["a", "y"], &["b", "x"]]);
        assert_eq!(group_ranges(s.columns()), vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn joint_codes_agree_with_string_order() {
        let a = StrDict::from_strings(["b", "d"].map(std::sync::Arc::from));
        let b = StrDict::from_strings(["a", "b", "c"].map(std::sync::Arc::from));
        let (ma, mb) = joint_codes(&a, &b);
        // Joint space: a=0, b=1, c=2, d=3.
        assert_eq!(ma, vec![1, 3]);
        assert_eq!(mb, vec![0, 1, 2]);
    }

    #[test]
    fn columnar_matches_rowwise_on_ints() {
        let r = Relation::from_int_rows(&[
            &[1, 10],
            &[1, 11],
            &[2, 10],
            &[3, 12],
            &[3, 13],
            &[4, 10],
            &[4, 11],
        ]);
        let s = Relation::from_int_rows(&[&[5, 10], &[5, 11], &[6, 10], &[7, 13], &[8, 20]]);
        for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
            assert_eq!(
                columnar_signature_set_join(&r, &s, pred).expect("int columns"),
                signature_set_join_rowwise(&r, &s, pred),
                "{pred:?}"
            );
        }
    }

    #[test]
    fn columnar_matches_rowwise_on_strings() {
        let r = Relation::from_str_rows(&[
            &["An", "headache"],
            &["An", "sore throat"],
            &["Bob", "headache"],
            &["Bob", "memory loss"],
            &["Bob", "sore throat"],
        ]);
        let s = Relation::from_str_rows(&[
            &["flu", "headache"],
            &["flu", "sore throat"],
            &["Lyme", "headache"],
            &["Lyme", "memory loss"],
            &["Lyme", "sore throat"],
        ]);
        for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
            assert_eq!(
                columnar_signature_set_join(&r, &s, pred).expect("string columns"),
                signature_set_join_rowwise(&r, &s, pred),
                "{pred:?}"
            );
        }
    }

    #[test]
    fn mixed_and_cross_variant_columns_fall_back() {
        // Mixed element column: ints and strings together.
        let mixed = Relation::from_tuples(
            2,
            vec![
                sj_storage::tuple![1, 7],
                sj_storage::tuple![1, "x"],
                sj_storage::tuple![2, 7],
            ],
        )
        .unwrap();
        let ints = Relation::from_int_rows(&[&[5, 7]]);
        assert!(columnar_signature_set_join(&mixed, &ints, Contains).is_none());
        // Cross-variant (int elements vs string elements) also declines;
        // the row path handles it (and finds nothing).
        let strs = Relation::from_str_rows(&[&["5", "7"]]);
        assert!(columnar_signature_set_join(&ints, &strs, Contains).is_none());
        assert!(signature_set_join_rowwise(&ints, &strs, Contains).is_empty());
    }

    #[test]
    fn empty_operands() {
        let e = Relation::empty(2);
        let r = Relation::from_int_rows(&[&[1, 10]]);
        for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
            assert!(columnar_signature_set_join(&e, &r, pred)
                .unwrap()
                .is_empty());
            assert!(columnar_signature_set_join(&r, &e, pred)
                .unwrap()
                .is_empty());
            assert!(columnar_signature_set_join(&e, &e, pred)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn agrees_with_nested_loop_on_random_groups() {
        // Deterministic pseudo-random groups, both key types.
        let mut rows_r: Vec<Vec<i64>> = Vec::new();
        let mut rows_s: Vec<Vec<i64>> = Vec::new();
        let mut x = 0x9e3779b9u64;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as i64
        };
        for g in 0..24 {
            for _ in 0..(1 + step() % 5) {
                rows_r.push(vec![g, step() % 16]);
            }
            for _ in 0..(1 + step() % 5) {
                rows_s.push(vec![g + 100, step() % 16]);
            }
        }
        let rr: Vec<&[i64]> = rows_r.iter().map(|v| v.as_slice()).collect();
        let ss: Vec<&[i64]> = rows_s.iter().map(|v| v.as_slice()).collect();
        let (r, s) = (Relation::from_int_rows(&rr), Relation::from_int_rows(&ss));
        for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
            assert_eq!(
                columnar_signature_set_join(&r, &s, pred).unwrap(),
                nested_loop_set_join(&r, &s, pred),
                "{pred:?}"
            );
        }
        let _ = Value::int(0); // keep the import exercised under cfg(test) pruning
    }
}
