//! Physical operator implementations on [`Relation`]s.
//!
//! Each logical operator of the paper's algebra (Definitions 1 and 2, plus
//! the Section 5 grouping extension) has one function here. Joins and
//! semijoins dispatch on the condition: equality atoms are executed with a
//! hash index (build on the right, probe from the left), remaining atoms
//! (`≠`, `<`, `>`) are applied as residual filters; a condition with no
//! equality atom falls back to a filtered nested loop.
//!
//! All functions assume the expressions were validated (column references
//! in range); they index slices directly.

use sj_algebra::{CompOp, Condition, Selection};
use sj_storage::{FxHashMap, FxHashSet, HashIndex, Relation, Tuple, Value};

/// `π_{cols}(r)` — 1-based columns, may repeat and reorder (Definition 1(3)).
pub fn project(r: &Relation, cols: &[usize]) -> Relation {
    let zero_based: Vec<usize> = cols.iter().map(|c| c - 1).collect();
    Relation::from_tuples(cols.len(), r.iter().map(|t| t.project(&zero_based)))
        .expect("projection preserves arity")
}

/// `σ(r)` for the three selection forms (Definition 1(4) + derived σᵢ₌c).
pub fn select(r: &Relation, sel: &Selection) -> Relation {
    let keep: Box<dyn Fn(&Tuple) -> bool> = match sel {
        Selection::Eq(i, j) => {
            let (i, j) = (*i - 1, *j - 1);
            Box::new(move |t: &Tuple| t[i] == t[j])
        }
        Selection::Lt(i, j) => {
            let (i, j) = (*i - 1, *j - 1);
            Box::new(move |t: &Tuple| t[i] < t[j])
        }
        Selection::EqConst(i, c) => {
            let i = *i - 1;
            let c = c.clone();
            Box::new(move |t: &Tuple| t[i] == c)
        }
    };
    Relation::from_tuples(r.arity(), r.iter().filter(|t| keep(t)).cloned())
        .expect("selection preserves arity")
}

/// `τ_c(r)` — append the constant to every tuple (Definition 1(5)).
pub fn const_tag(r: &Relation, c: &Value) -> Relation {
    Relation::from_tuples(r.arity() + 1, r.iter().map(|t| t.tag(c.clone())))
        .expect("tagging increments arity")
}

/// Split a condition into its equality part (as 0-based `(left, right)`
/// column pairs) and the residual non-equality atoms.
fn split_condition(theta: &Condition) -> (Vec<(usize, usize)>, Condition) {
    let eq: Vec<(usize, usize)> = theta
        .atoms()
        .iter()
        .filter(|a| a.op == CompOp::Eq)
        .map(|a| (a.left - 1, a.right - 1))
        .collect();
    let residual = Condition::new(theta.atoms().iter().filter(|a| a.op != CompOp::Eq).copied());
    (eq, residual)
}

/// `r₁ ⋈θ r₂` (Definition 1(6)). Hash join on the equality atoms with a
/// residual filter; filtered nested loop when θ has no equality atom.
pub fn join(r1: &Relation, r2: &Relation, theta: &Condition) -> Relation {
    let (eq, residual) = split_condition(theta);
    let out_arity = r1.arity() + r2.arity();
    let mut out: Vec<Tuple> = Vec::new();
    if eq.is_empty() {
        for t1 in r1 {
            for t2 in r2 {
                if theta.eval(t1.values(), t2.values()) {
                    out.push(t1.concat(t2));
                }
            }
        }
    } else {
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let index = HashIndex::build(r2, &right_cols);
        for t1 in r1 {
            let key: Vec<Value> = left_cols.iter().map(|&c| t1[c].clone()).collect();
            for &pos in index.probe(&key) {
                let t2 = &r2.tuples()[pos];
                if residual.eval(t1.values(), t2.values()) {
                    out.push(t1.concat(t2));
                }
            }
        }
    }
    Relation::from_tuples(out_arity, out).expect("join arity is n+m")
}

/// `r₁ ⋉θ r₂` (Definition 2). For equality-only θ a hash-set membership
/// probe; for mixed conditions a hash probe plus residual check; otherwise
/// a nested-loop `any`.
pub fn semijoin(r1: &Relation, r2: &Relation, theta: &Condition) -> Relation {
    let (eq, residual) = split_condition(theta);
    let keep: Vec<Tuple> = if eq.is_empty() {
        if r2.is_empty() {
            Vec::new()
        } else if theta.is_empty() {
            // Unconditional semijoin against a nonempty right side.
            r1.iter().cloned().collect()
        } else {
            r1.iter()
                .filter(|t1| r2.iter().any(|t2| theta.eval(t1.values(), t2.values())))
                .cloned()
                .collect()
        }
    } else if residual.is_empty() {
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let mut keys: FxHashSet<Vec<Value>> = FxHashSet::default();
        for t2 in r2 {
            keys.insert(right_cols.iter().map(|&c| t2[c].clone()).collect());
        }
        r1.iter()
            .filter(|t1| {
                let key: Vec<Value> = left_cols.iter().map(|&c| t1[c].clone()).collect();
                keys.contains(&key)
            })
            .cloned()
            .collect()
    } else {
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let index = HashIndex::build(r2, &right_cols);
        r1.iter()
            .filter(|t1| {
                let key: Vec<Value> = left_cols.iter().map(|&c| t1[c].clone()).collect();
                index
                    .probe(&key)
                    .iter()
                    .any(|&pos| residual.eval(t1.values(), r2.tuples()[pos].values()))
            })
            .cloned()
            .collect()
    };
    Relation::from_tuples(r1.arity(), keep).expect("semijoin preserves left arity")
}

/// `γ_{cols; count}(r)` — group by the 1-based `cols` and append the group
/// cardinality as an integer (Section 5). With `cols` empty the result is a
/// single `(count,)` tuple — `{(0,)}` for an empty input, matching SQL's
/// `COUNT(*)` on an empty table.
pub fn group_count(r: &Relation, cols: &[usize]) -> Relation {
    let zero_based: Vec<usize> = cols.iter().map(|c| c - 1).collect();
    let mut groups: FxHashMap<Vec<Value>, i64> = FxHashMap::default();
    for t in r {
        let key: Vec<Value> = zero_based.iter().map(|&c| t[c].clone()).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    if cols.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), 0);
    }
    Relation::from_tuples(
        cols.len() + 1,
        groups.into_iter().map(|(mut key, n)| {
            key.push(Value::int(n));
            Tuple::new(key)
        }),
    )
    .expect("group_count arity is k+1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::tuple;

    fn r(rows: &[&[i64]]) -> Relation {
        Relation::from_int_rows(rows)
    }

    #[test]
    fn project_reorders_and_dedups() {
        let a = r(&[&[1, 2], &[3, 2]]);
        assert_eq!(project(&a, &[2]), r(&[&[2]])); // dedup: both rows map to (2)
        assert_eq!(project(&a, &[2, 1]), r(&[&[2, 1], &[2, 3]]));
        assert_eq!(project(&a, &[1, 1]), r(&[&[1, 1], &[3, 3]]));
    }

    #[test]
    fn select_forms() {
        let a = r(&[&[1, 1], &[1, 2], &[2, 1]]);
        assert_eq!(select(&a, &Selection::Eq(1, 2)), r(&[&[1, 1]]));
        assert_eq!(select(&a, &Selection::Lt(1, 2)), r(&[&[1, 2]]));
        assert_eq!(
            select(&a, &Selection::EqConst(1, Value::int(2))),
            r(&[&[2, 1]])
        );
    }

    #[test]
    fn const_tag_appends() {
        let a = r(&[&[1], &[2]]);
        assert_eq!(const_tag(&a, &Value::int(9)), r(&[&[1, 9], &[2, 9]]));
    }

    #[test]
    fn equi_join_matches_definition() {
        let a = r(&[&[1, 10], &[2, 20]]);
        let b = r(&[&[10, 100], &[10, 101], &[30, 300]]);
        let j = join(&a, &b, &Condition::eq(2, 1));
        assert_eq!(j, r(&[&[1, 10, 10, 100], &[1, 10, 10, 101]]));
    }

    #[test]
    fn cartesian_product_via_empty_condition() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[8], &[9]]);
        let j = join(&a, &b, &Condition::always());
        assert_eq!(j.len(), 4);
        assert_eq!(j.arity(), 2);
    }

    #[test]
    fn theta_join_with_inequalities() {
        let a = r(&[&[1], &[5]]);
        let b = r(&[&[3]]);
        assert_eq!(join(&a, &b, &Condition::lt(1, 1)), r(&[&[1, 3]]));
        assert_eq!(join(&a, &b, &Condition::gt(1, 1)), r(&[&[5, 3]]));
        assert_eq!(join(&a, &b, &Condition::neq(1, 1)), r(&[&[1, 3], &[5, 3]]));
    }

    #[test]
    fn mixed_condition_join_uses_residual_filter() {
        // equal on col1, strictly increasing on col2
        let a = r(&[&[1, 1], &[1, 5], &[2, 1]]);
        let b = r(&[&[1, 3], &[2, 0]]);
        let theta = Condition::eq(1, 1).and(2, CompOp::Lt, 2);
        assert_eq!(join(&a, &b, &theta), r(&[&[1, 1, 1, 3]]));
    }

    #[test]
    fn semijoin_matches_definition() {
        let a = r(&[&[1, 10], &[2, 20], &[3, 10]]);
        let b = r(&[&[10, 0], &[10, 1]]);
        // duplicates on the right do not duplicate output (set semantics)
        let s = semijoin(&a, &b, &Condition::eq(2, 1));
        assert_eq!(s, r(&[&[1, 10], &[3, 10]]));
    }

    #[test]
    fn semijoin_equals_join_project() {
        let a = r(&[&[1, 10], &[2, 20], &[3, 10]]);
        let b = r(&[&[10, 0], &[20, 9], &[40, 2]]);
        for theta in [
            Condition::eq(2, 1),
            Condition::lt(1, 2),
            Condition::eq(2, 1).and(1, CompOp::Lt, 2),
            Condition::neq(1, 1),
            Condition::always(),
        ] {
            let via_join = project(&join(&a, &b, &theta), &[1, 2]);
            let direct = semijoin(&a, &b, &theta);
            assert_eq!(direct, via_join, "theta = {theta}");
        }
    }

    #[test]
    fn unconditional_semijoin_is_emptiness_test() {
        let a = r(&[&[1], &[2]]);
        assert_eq!(
            semijoin(&a, &Relation::empty(3), &Condition::always()),
            Relation::empty(1)
        );
        assert_eq!(semijoin(&a, &r(&[&[9]]), &Condition::always()), a);
    }

    #[test]
    fn group_count_basic() {
        let a = r(&[&[1, 10], &[1, 20], &[2, 30]]);
        let g = group_count(&a, &[1]);
        assert_eq!(g, r(&[&[1, 2], &[2, 1]]));
    }

    #[test]
    fn group_count_global() {
        let a = r(&[&[1, 10], &[1, 20], &[2, 30]]);
        assert_eq!(group_count(&a, &[]), r(&[&[3]]));
        assert_eq!(group_count(&Relation::empty(2), &[]), r(&[&[0]]));
    }

    #[test]
    fn group_count_empty_input_with_groups() {
        assert_eq!(group_count(&Relation::empty(2), &[1]), Relation::empty(2));
    }

    #[test]
    fn join_with_strings() {
        let visits = Relation::from_str_rows(&[&["alex", "pareto bar"]]);
        let serves = Relation::from_str_rows(&[&["pareto bar", "westmalle"]]);
        let j = join(&visits, &serves, &Condition::eq(2, 1));
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.tuples()[0],
            tuple!["alex", "pareto bar", "pareto bar", "westmalle"]
        );
    }
}
