//! Client traces for the serving experiments: a zipf-skewed hot query
//! set interleaved with writes and ANALYZEs.
//!
//! A serving workload is *not* one query over a scaling database (that
//! is what [`crate::generators`] produces) but a long stream of
//! operations hitting a server: most are queries drawn from a finite
//! pool with zipf skew (a few expressions account for most traffic —
//! the regime where a result cache pays), a small fraction are inserts
//! (which invalidate cached results over the touched relation), and an
//! even smaller fraction are ANALYZEs (which retire cached plans).
//!
//! Like everything in this crate, a trace is bit-reproducible from its
//! seed.

use crate::generators::{DivisionWorkload, ELEMENT_BASE};
use crate::rng::{SplitMix64, Zipf};
use sj_algebra::{division, Expr};
use sj_storage::{Database, Tuple};

/// One operation in a client trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceOp {
    /// Run a query and observe its result.
    Query(Expr),
    /// Insert one tuple into a relation.
    Insert {
        /// Target relation name.
        relation: String,
        /// The tuple to add.
        tuple: Tuple,
    },
    /// Recollect statistics (retires cached plans).
    Analyze,
}

/// Parameters of a serving trace over a division database `{R/2, S/1}`.
#[derive(Clone, Debug)]
pub struct ServingWorkload {
    /// Number of A-groups in the dividend (database scale).
    pub groups: usize,
    /// Number of values in the divisor.
    pub divisor_size: usize,
    /// Size of the hot query pool.
    pub hot_queries: usize,
    /// Zipf skew over the pool (0 = uniform; ≈1 = classic hot set).
    pub theta: f64,
    /// Trace length in operations.
    pub ops: usize,
    /// Fraction of operations that are inserts.
    pub write_fraction: f64,
    /// Fraction of operations that are ANALYZEs.
    pub analyze_fraction: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ServingWorkload {
    fn default() -> Self {
        ServingWorkload {
            groups: 48,
            divisor_size: 6,
            hot_queries: 16,
            theta: 1.1,
            ops: 400,
            write_fraction: 0.05,
            analyze_fraction: 0.01,
            seed: 0x5E_4F_1E_57,
        }
    }
}

impl ServingWorkload {
    /// The initial database the trace runs against.
    pub fn database(&self) -> Database {
        DivisionWorkload {
            groups: self.groups,
            divisor_size: self.divisor_size,
            containment_fraction: 0.4,
            extra_per_group: 3,
            noise_domain: 4 * self.groups.max(1),
            seed: self.seed ^ 0xDB,
        }
        .database()
    }

    /// The hot query pool: `hot_queries` *distinct* expressions over
    /// `{R, S}`, cycling through the paper's division plans and
    /// parameterized selection/semijoin shapes so the pool can be made
    /// arbitrarily large without repeating an expression.
    pub fn query_pool(&self) -> Vec<Expr> {
        (0..self.hot_queries)
            .map(|i| match i {
                0 => division::division_double_difference("R", "S"),
                // Not `division_via_join`: product desugars to a
                // trivial join, making that expression structurally
                // identical to the double-difference plan.
                1 => division::division_equality("R", "S"),
                2 => division::division_counting("R", "S"),
                _ => {
                    // Parameterized by a per-index constant, so every
                    // further pool slot is a distinct expression.
                    // (Columns are 1-based: A = 1, B = 2.)
                    let b = ELEMENT_BASE + 1 + i as i64;
                    if i % 2 == 1 {
                        // Groups holding element b.
                        Expr::rel("R").select_const(2, b).project([1])
                    } else {
                        // Groups holding a divisor element other than b.
                        Expr::rel("R")
                            .semijoin_eq(
                                [(2, 1)],
                                Expr::rel("S").diff(Expr::rel("S").select_const(1, b)),
                            )
                            .project([1])
                    }
                }
            })
            .collect()
    }

    /// Generate the operation stream. Queries are drawn zipf-skewed
    /// from [`ServingWorkload::query_pool`]; inserts add noise tuples
    /// to `R` (arity-preserving, so cached plans survive and only
    /// result entries die); ANALYZEs punctuate the stream.
    pub fn trace(&self) -> Vec<TraceOp> {
        let pool = self.query_pool();
        let zipf = Zipf::new(pool.len().max(1), self.theta);
        let mut rng = SplitMix64::new(self.seed);
        (0..self.ops)
            .map(|_| {
                let u = rng.unit_f64();
                if u < self.write_fraction {
                    let g = rng.range_i64(1, self.groups.max(1) as i64);
                    let b = ELEMENT_BASE
                        + 1
                        + self.divisor_size as i64
                        + rng.below(4 * self.groups.max(1) as u64) as i64;
                    TraceOp::Insert {
                        relation: "R".into(),
                        tuple: Tuple::from_ints(&[g, b]),
                    }
                } else if u < self.write_fraction + self.analyze_fraction {
                    TraceOp::Analyze
                } else {
                    TraceOp::Query(pool[zipf.sample(&mut rng)].clone())
                }
            })
            .collect()
    }

    /// A read-only variant of the trace (same seed, same zipf stream,
    /// writes and ANALYZEs suppressed) — the steady-state phase for
    /// measuring cache-hot throughput.
    pub fn read_only(&self) -> ServingWorkload {
        ServingWorkload {
            write_fraction: 0.0,
            analyze_fraction: 0.0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_queries_are_distinct() {
        let w = ServingWorkload {
            hot_queries: 25,
            ..ServingWorkload::default()
        };
        let pool = w.query_pool();
        assert_eq!(pool.len(), 25);
        for (i, a) in pool.iter().enumerate() {
            for b in &pool[i + 1..] {
                assert_ne!(a, b, "pool entries must be distinct expressions");
            }
        }
    }

    #[test]
    fn trace_is_deterministic_and_mixed() {
        let w = ServingWorkload::default();
        let t1 = w.trace();
        let t2 = w.trace();
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), w.ops);
        let writes = t1
            .iter()
            .filter(|op| matches!(op, TraceOp::Insert { .. }))
            .count();
        let analyzes = t1
            .iter()
            .filter(|op| matches!(op, TraceOp::Analyze))
            .count();
        let queries = t1
            .iter()
            .filter(|op| matches!(op, TraceOp::Query(_)))
            .count();
        assert_eq!(writes + analyzes + queries, w.ops);
        assert!(writes > 0, "expected some writes at 5%");
        assert!(queries > writes, "queries dominate");
    }

    #[test]
    fn zipf_skew_concentrates_traffic_on_a_hot_set() {
        let w = ServingWorkload {
            ops: 2000,
            hot_queries: 16,
            theta: 1.1,
            write_fraction: 0.0,
            analyze_fraction: 0.0,
            ..ServingWorkload::default()
        };
        let pool = w.query_pool();
        let trace = w.trace();
        // Count hits on the head of the pool (first 4 of 16 queries).
        let head: usize = trace
            .iter()
            .filter(|op| match op {
                TraceOp::Query(e) => pool[..4].contains(e),
                _ => false,
            })
            .count();
        assert!(
            head * 2 > trace.len(),
            "head queries should carry most traffic: {head}/{}",
            trace.len()
        );
    }

    #[test]
    fn read_only_variant_has_no_writes() {
        let w = ServingWorkload::default().read_only();
        assert!(w.trace().iter().all(|op| matches!(op, TraceOp::Query(_))));
    }

    #[test]
    fn database_matches_pool_schema() {
        let w = ServingWorkload::default();
        let db = w.database();
        assert_eq!(db.get("R").unwrap().arity(), 2);
        assert_eq!(db.get("S").unwrap().arity(), 1);
    }
}
