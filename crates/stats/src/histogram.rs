//! Equi-width histograms over integer column values.
//!
//! The estimator's selectivity primitives need a distribution summary
//! that is cheap to build (one pass after min/max), cheap to store
//! (a handful of bucket counters), and deterministic. Equi-width
//! buckets over the `i64` payload of [`Value::Int`] are exactly that.
//! String columns get the same treatment through their dictionary
//! encoding: [`StringHistogram`] bins the dictionary *codes* (code
//! order equals string order within one dictionary, so equi-width code
//! buckets are order-respecting) and resolves constants through
//! [`StrDict::code_of`] — a constant absent from the dictionary is
//! **provably absent** from the relation and estimates exactly zero,
//! instead of the distinct-count uniform fallback.

use sj_storage::{StrDict, Value};
use std::sync::Arc;

/// Default number of buckets for [`Histogram::build`]. Narrow enough to
/// keep [`crate::TableStats`] a few cache lines per column, wide enough
/// that equality estimates on the synthetic workloads stay within a
/// small q-error (pinned by the accuracy tests).
pub const DEFAULT_BUCKETS: usize = 32;

/// An equi-width histogram over the integer values of one column.
///
/// Invariants: `buckets` is empty iff no integer value was observed;
/// otherwise `lo ≤ hi` and every counted value lies in `lo..=hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: i64,
    hi: i64,
    buckets: Vec<u32>,
    /// Integer values counted into the buckets.
    ints: usize,
}

impl Histogram {
    /// A histogram of nothing (empty column, or no integer values).
    pub fn empty() -> Histogram {
        Histogram {
            lo: 0,
            hi: 0,
            buckets: Vec::new(),
            ints: 0,
        }
    }

    /// Build from a column of values with at most [`DEFAULT_BUCKETS`]
    /// buckets. Non-integer values are ignored (callers estimate string
    /// equality from the distinct count instead).
    pub fn build(values: impl Iterator<Item = i64> + Clone) -> Histogram {
        Self::build_with(values, DEFAULT_BUCKETS)
    }

    /// [`Histogram::build`] with an explicit bucket budget (`≥ 1`).
    pub fn build_with(values: impl Iterator<Item = i64> + Clone, max_buckets: usize) -> Histogram {
        let Some((lo, hi)) = values
            .clone()
            .fold(None, |acc: Option<(i64, i64)>, v| match acc {
                None => Some((v, v)),
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
            })
        else {
            return Histogram::empty();
        };
        Self::build_range(values, lo, hi, max_buckets)
    }

    /// Build with a caller-supplied value range `lo..=hi` (every yielded
    /// value must lie inside it), skipping the min/max fold — the path
    /// `TableStats::analyze` uses, having already computed the range in
    /// its fused column scan.
    pub fn build_range(
        values: impl Iterator<Item = i64>,
        lo: i64,
        hi: i64,
        max_buckets: usize,
    ) -> Histogram {
        debug_assert!(lo <= hi, "build_range: empty range");
        // One bucket per distinct *possible* value when the range is
        // narrower than the budget — a single value gets exactly one
        // bucket, so its estimate is exact.
        let span = (hi as i128 - lo as i128) as u128 + 1;
        let n = (max_buckets.max(1) as u128).min(span) as usize;
        let mut h = Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            ints: 0,
        };
        for v in values {
            let b = h.bucket_of(v);
            h.buckets[b] += 1;
            h.ints += 1;
        }
        h
    }

    /// The number of distinct values in `lo..=hi` (i128 arithmetic:
    /// the full `i64` range must not overflow).
    fn span(&self) -> u128 {
        (self.hi as i128 - self.lo as i128) as u128 + 1
    }

    /// Bucket index of a value inside `lo..=hi` (callers guarantee the
    /// range; build-time values always satisfy it).
    fn bucket_of(&self, v: i64) -> usize {
        let n = self.buckets.len() as u128;
        let off = (v as i128 - self.lo as i128) as u128;
        ((off * n) / self.span()) as usize
    }

    /// Number of distinct values a bucket's sub-range can hold.
    fn bucket_width(&self, b: usize) -> u128 {
        let n = self.buckets.len() as u128;
        let span = self.span();
        // Bucket b covers offsets [ceil(b·span/n), ceil((b+1)·span/n)).
        let start = (b as u128 * span).div_ceil(n);
        let end = ((b as u128 + 1) * span).div_ceil(n);
        (end - start).max(1)
    }

    /// Total integer values counted.
    pub fn count(&self) -> usize {
        self.ints
    }

    /// Number of buckets (0 for [`Histogram::empty`]).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Estimated number of rows whose column equals `v`: the containing
    /// bucket's count spread uniformly over the bucket's value range.
    /// String values and out-of-range integers estimate 0 — out of the
    /// observed range means the value cannot occur (the histogram has
    /// exact bounds).
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        let Some(v) = v.as_int() else { return 0.0 };
        if self.buckets.is_empty() || v < self.lo || v > self.hi {
            return 0.0;
        }
        let b = self.bucket_of(v);
        self.buckets[b] as f64 / self.bucket_width(b) as f64
    }

    /// Estimated number of rows with column value strictly below `v`
    /// (integer values only; the whole count when `v` exceeds the range).
    pub fn estimate_lt(&self, v: i64) -> f64 {
        if self.buckets.is_empty() || v <= self.lo {
            return 0.0;
        }
        if v > self.hi {
            return self.ints as f64;
        }
        let b = self.bucket_of(v);
        let below: u32 = self.buckets[..b].iter().sum();
        // Fraction of the containing bucket assumed below v.
        let n = self.buckets.len() as u128;
        let start = (b as u128 * self.span()).div_ceil(n);
        let off = (v as i128 - self.lo as i128) as u128;
        let frac = (off - start) as f64 / self.bucket_width(b) as f64;
        below as f64 + self.buckets[b] as f64 * frac.clamp(0.0, 1.0)
    }
}

/// An equi-width histogram over a dictionary-encoded string column:
/// bucket counts over the column's dictionary codes, plus the shared
/// dictionary to resolve constant strings to codes.
///
/// Built in the same fused `ANALYZE` scan as the integer statistics
/// (the code range `0..dict.len()` is known before the scan starts, so
/// counting needs no separate min/max pass). Estimates are exact-zero
/// for strings outside the dictionary — the dictionary is a perfect
/// membership index over the *whole relation's* string values.
#[derive(Debug, Clone, PartialEq)]
pub struct StringHistogram {
    dict: Arc<StrDict>,
    hist: Histogram,
}

impl StringHistogram {
    /// Build from a column of dictionary codes and the relation's
    /// shared dictionary (every code must be `< dict.len()`).
    pub fn build(dict: Arc<StrDict>, codes: &[u32]) -> StringHistogram {
        let hist = if dict.is_empty() || codes.is_empty() {
            Histogram::empty()
        } else {
            Histogram::build_range(
                codes.iter().map(|&c| c as i64),
                0,
                dict.len() as i64 - 1,
                DEFAULT_BUCKETS,
            )
        };
        StringHistogram { dict, hist }
    }

    /// Total string values counted.
    pub fn count(&self) -> usize {
        self.hist.count()
    }

    /// Estimated number of rows whose column equals the string `s`.
    /// Exactly zero when `s` is not in the dictionary.
    pub fn estimate_eq(&self, s: &str) -> f64 {
        match self.dict.code_of(s) {
            Some(code) => self.hist.estimate_eq(&Value::int(code as i64)),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = Histogram::build(std::iter::empty());
        assert_eq!(h, Histogram::empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_count(), 0);
        assert_eq!(h.estimate_eq(&Value::int(5)), 0.0);
        assert_eq!(h.estimate_lt(100), 0.0);
    }

    #[test]
    fn single_value_is_exact() {
        let h = Histogram::build([7i64; 40].into_iter());
        assert_eq!(h.bucket_count(), 1);
        assert_eq!(h.estimate_eq(&Value::int(7)), 40.0);
        assert_eq!(h.estimate_eq(&Value::int(8)), 0.0);
        assert_eq!(h.estimate_lt(7), 0.0);
        assert_eq!(h.estimate_lt(8), 40.0);
    }

    #[test]
    fn narrow_range_gets_one_bucket_per_value() {
        // 10 distinct values < 32 buckets: every estimate is exact.
        let vals: Vec<i64> = (0..100).map(|i| i % 10).collect();
        let h = Histogram::build(vals.into_iter());
        assert_eq!(h.bucket_count(), 10);
        for v in 0..10 {
            assert_eq!(h.estimate_eq(&Value::int(v)), 10.0, "value {v}");
        }
        assert_eq!(h.estimate_lt(5), 50.0);
    }

    #[test]
    fn wide_uniform_range_estimates_within_bucket_resolution() {
        let vals: Vec<i64> = (0..1000).collect();
        let h = Histogram::build(vals.into_iter());
        assert_eq!(h.bucket_count(), DEFAULT_BUCKETS);
        assert_eq!(h.count(), 1000);
        // Uniform data: each point estimate ≈ 1.
        for v in [0i64, 123, 555, 999] {
            let est = h.estimate_eq(&Value::int(v));
            assert!((0.5..=2.0).contains(&est), "estimate_eq({v}) = {est}");
        }
        let lt = h.estimate_lt(500);
        assert!((450.0..=550.0).contains(&lt), "estimate_lt(500) = {lt}");
    }

    #[test]
    fn out_of_range_and_string_values() {
        let h = Histogram::build(0..10i64);
        assert_eq!(h.estimate_eq(&Value::int(-1)), 0.0);
        assert_eq!(h.estimate_eq(&Value::int(10)), 0.0);
        assert_eq!(h.estimate_eq(&Value::str("x")), 0.0);
        assert_eq!(h.estimate_lt(i64::MAX), 10.0);
    }

    #[test]
    fn extreme_range_does_not_overflow() {
        let h = Histogram::build([i64::MIN, 0, i64::MAX].into_iter());
        assert_eq!(h.count(), 3);
        assert!(h.estimate_eq(&Value::int(0)) >= 0.0);
        assert!(h.estimate_lt(i64::MAX) >= 2.0);
    }

    #[test]
    fn string_histogram_estimates() {
        let dict = Arc::new(StrDict::from_strings(["ague", "flu", "pox"].map(Arc::from)));
        // Column: ague ×1, flu ×3 (codes 0, 1, 1, 1).
        let h = StringHistogram::build(dict, &[0, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.estimate_eq("flu"), 3.0, "narrow dict: exact");
        assert_eq!(h.estimate_eq("ague"), 1.0);
        assert_eq!(h.estimate_eq("pox"), 0.0, "in dict, not in column");
        assert_eq!(h.estimate_eq("absent"), 0.0, "outside the dictionary");
    }

    #[test]
    fn string_histogram_empty_cases() {
        let dict = Arc::new(StrDict::from_strings(["x"].map(Arc::from)));
        assert_eq!(StringHistogram::build(dict, &[]).estimate_eq("x"), 0.0);
        let none = StringHistogram::build(Arc::new(StrDict::default()), &[]);
        assert_eq!(none.count(), 0);
    }
}
