//! Partition-parallel vs serial execution on fig-scale division and
//! set-join workloads — the benchmark behind `experiments -- parallel`
//! (which additionally writes `results/parallel_scaling.csv`).
//!
//! Three workloads, each at `Parallelism::Serial` and `Threads(2/4/8)`:
//! registry-routed division (hash vs partitioned hash), registry-routed
//! set-containment join (monolithic signature filter vs the
//! partition-based set join), and a planned merge-semijoin query (serial
//! DAG executor vs concurrent levels + partitioned operators).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::{Condition, Expr};
use sj_bench::beer_database;
use sj_eval::{Engine, Parallelism};
use sj_setjoin::{DivisionSemantics, SetPredicate};
use sj_storage::Database;
use sj_workload::{DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist};
use std::time::Duration;

fn parallelisms() -> Vec<(String, Parallelism)> {
    let mut v = vec![("serial".to_string(), Parallelism::Serial)];
    for n in [2usize, 4, 8] {
        v.push((format!("threads{n}"), Parallelism::Threads(n)));
    }
    v
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Division: fig-scale dividend, registry-routed through the engine.
    let w = DivisionWorkload {
        groups: 16_384,
        divisor_size: 128,
        containment_fraction: 0.1,
        extra_per_group: 4,
        noise_domain: 4 * 16_384,
        seed: 0xD1ADE,
    };
    let db = w.database();
    for (name, par) in parallelisms() {
        let engine = Engine::new(db.clone()).parallelism(par);
        group.bench_with_input(
            BenchmarkId::new("division_auto", name),
            &engine,
            |b, engine| {
                b.iter(|| {
                    engine
                        .divide("R", "S", DivisionSemantics::Containment)
                        .unwrap()
                })
            },
        );
    }

    // Set-containment join: the quadratic workload where partitioning
    // prunes candidate pairs as well as sharding them.
    let (r, s) = SetJoinWorkload {
        r_groups: 2_048,
        s_groups: 2_048,
        set_size: SetSizeDist::Uniform(2, 10),
        domain: 64,
        elements: ElementDist::Uniform,
        seed: 0x5E71,
    }
    .generate();
    let mut sdb = Database::new();
    sdb.set("R", r);
    sdb.set("S", s);
    for (name, par) in parallelisms() {
        let engine = Engine::new(sdb.clone()).parallelism(par);
        group.bench_with_input(
            BenchmarkId::new("setjoin_contains_auto", name),
            &engine,
            |b, engine| b.iter(|| engine.set_join("R", "S", SetPredicate::Contains).unwrap()),
        );
    }

    // Planned query: foreign-key hash join over the beer scene — the DAG
    // executor's concurrent levels + partition-parallel hash join.
    let bdb = beer_database(16_384, 0xBEE5);
    let e = Expr::rel("Visits").join(Condition::eq(2, 1), Expr::rel("Serves"));
    for (name, par) in parallelisms() {
        let engine = Engine::new(bdb.clone()).parallelism(par);
        let query = e.clone();
        group.bench_with_input(
            BenchmarkId::new("planned_fk_hash_join", name),
            &engine,
            |b, engine| b.iter(|| engine.query(query.clone()).run().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
