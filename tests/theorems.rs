//! Cross-crate theorem tests (E13, E14, E15 of DESIGN.md): Theorem 8
//! round-trips on the running examples, Corollary 14 invariance on pumped
//! copies, and Theorem 18 rewriting equivalence end to end.

use setjoins::prelude::*;
use sj_bisim::are_bisimilar;
use sj_core::{to_sa_eq, Pump};
use sj_eval::evaluate;
use sj_logic::{eval_query, gf_to_sa, sa_to_gf};
use sj_workload::figures;

#[test]
fn thm8_example3_to_example7_and_back() {
    let db = figures::example3_beer_db();
    let schema = db.schema();
    let e3 = sj_algebra::division::example3_lousy_bar_sa();

    // SA= → GF: the translated formula answers exactly E(D).
    let gf = sa_to_gf(&e3, &schema).unwrap();
    let mut candidates = db.active_domain();
    candidates.push(Value::str("zz-outsider"));
    let answers = eval_query(&db, &gf.formula, &gf.free_vars, &candidates);
    assert_eq!(answers, evaluate(&e3, &db).unwrap().tuples().to_vec());

    // GF → SA=: the paper's own Example 7 formula translates to an SA=
    // expression equivalent to Example 3.
    let phi7 = sj_logic::formula::example7_lousy_bar();
    let back = gf_to_sa(&phi7, &schema, &[]).unwrap();
    assert!(back.expr.is_sa_eq());
    assert_eq!(
        evaluate(&back.expr, &db).unwrap(),
        evaluate(&e3, &db).unwrap()
    );
}

#[test]
fn cor14_pumped_copies_indistinguishable_by_sa() {
    // E14: pump the Fig. 4 witness; every SA= expression of a small corpus
    // answers the same on (D, ā) and (Dₙ, copy) — Corollary 14 made
    // concrete via membership of the witness tuples.
    let db = figures::fig4();
    let pump = Pump::new(
        &db,
        &Condition::eq(3, 1),
        &tuple![1, 2, 3],
        &tuple![3, 4, 5],
        &[],
        4,
    )
    .unwrap();
    let n = 3;
    let dn = pump.database(n);
    let base = pump.base();
    let (a, _) = pump.witness();
    let corpus: Vec<Expr> = vec![
        Expr::rel("R"),
        Expr::rel("R").semijoin(Condition::eq(1, 2), Expr::rel("T")),
        Expr::rel("R").semijoin(Condition::eq(3, 1), Expr::rel("S")),
        Expr::rel("R")
            .semijoin(Condition::eq(1, 2), Expr::rel("T"))
            .diff(Expr::rel("S")),
        Expr::rel("R").select_lt(1, 2),
    ];
    for copy in pump.left_copies(n) {
        // Guarded bisimilar …
        assert!(are_bisimilar(base, a, &dn, &copy, &[]).is_some());
        // … hence SA=-indistinguishable: ā ∈ E(base) ⟺ copy ∈ E(Dₙ).
        for e in &corpus {
            let on_base = evaluate(e, base).unwrap().contains(a);
            let on_dn = evaluate(e, &dn).unwrap().contains(&copy);
            assert_eq!(on_base, on_dn, "{e} distinguishes {a} from {copy}");
        }
    }
}

#[test]
fn thm18_rewrites_preserve_semantics_on_workloads() {
    // E15: linear-safe joins rewritten to SA= agree with the originals on
    // generated workloads of several scales.
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let plans: Vec<Expr> = vec![
        Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
        Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1]),
        Expr::rel("R").join(
            Condition::eq(2, 1).and(1, sj_algebra::CompOp::Lt, 1),
            Expr::rel("S"),
        ),
        Expr::rel("S")
            .join(Condition::eq(1, 2), Expr::rel("R"))
            .project([2, 3]),
    ];
    for plan in plans {
        let sa = to_sa_eq(&plan, &schema).unwrap_or_else(|e| panic!("{plan}: {e}"));
        assert!(sa.is_sa_eq());
        for groups in [10usize, 50] {
            let db = sj_workload::DivisionWorkload {
                groups,
                divisor_size: 4,
                containment_fraction: 0.5,
                extra_per_group: 2,
                noise_domain: 32,
                seed: groups as u64,
            }
            .database();
            assert_eq!(
                evaluate(&plan, &db).unwrap(),
                evaluate(&sa, &db).unwrap(),
                "{plan}"
            );
        }
    }
}

#[test]
fn parse_analyze_rewrite_evaluate_pipeline() {
    // End to end: a plan arrives as text, is parsed, analyzed, rewritten,
    // and both versions evaluated.
    let text = "project[1](join[2=1](R, S))";
    let e = sj_algebra::parse(text).unwrap();
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let verdict = sj_core::analyze(&e, &schema, &[]).unwrap();
    let sj_core::Verdict::Linear { sa_equivalent } = verdict else {
        panic!("expected linear");
    };
    let db = sj_workload::DivisionWorkload::default().database();
    assert_eq!(
        evaluate(&e, &db).unwrap(),
        evaluate(&sa_equivalent, &db).unwrap()
    );
    // Round-trip the rewritten plan through text as well.
    let reparsed = sj_algebra::parse(&sj_algebra::to_text(&sa_equivalent)).unwrap();
    assert_eq!(reparsed, sa_equivalent);
}
