//! Smoke tests: every `examples/` binary must run to completion,
//! exit successfully, and print something — so examples can't rot
//! silently while the library evolves.

use std::path::PathBuf;
use std::process::Command;

/// Locate the compiled example binary next to this test executable
/// (`target/<profile>/examples/<name>`). `cargo test` builds all
/// examples before running integration tests, so the binary normally
/// exists; if it doesn't (e.g. a filtered build), fall back to
/// `cargo build --example` first.
fn example_binary(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir
        .join("examples")
        .join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    if !path.exists() {
        // Build with the profile this test binary was built with, so the
        // example lands at `path` rather than under another profile dir.
        let mut args = vec!["build", "--example", name];
        if dir.ends_with("release") {
            args.push("--release");
        }
        let status = Command::new(env!("CARGO"))
            .args(&args)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .status()
            .expect("failed to spawn cargo to build the example");
        assert!(status.success(), "cargo build --example {name} failed");
    }
    path
}

fn run_example(name: &str) {
    let bin = example_binary(name);
    let output = Command::new(&bin)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to run {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` printed nothing on stdout"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn beer_drinkers_runs() {
    run_example("beer_drinkers");
}

#[test]
fn medical_diagnosis_runs() {
    run_example("medical_diagnosis");
}

#[test]
fn explain_and_optimize_runs() {
    run_example("explain_and_optimize");
}

#[test]
fn dichotomy_analyzer_runs() {
    run_example("dichotomy_analyzer");
}
