//! # setjoins — umbrella crate
//!
//! A production-quality Rust reproduction of
//!
//! > Dirk Leinders, Jan Van den Bussche.
//! > *On the complexity of division and set joins in the relational algebra.*
//! > PODS 2005; JCSS 73(3):538–549, 2007.
//!
//! This crate re-exports the whole workspace under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`storage`] | `sj-storage` | values, tuples, relations, databases |
//! | [`algebra`] | `sj-algebra` | RA / SA / extended-RA expression ASTs, optimizer pass pipeline |
//! | [`eval`] | `sj-eval` | the [`Engine`] facade and the underlying evaluators |
//! | [`logic`] | `sj-logic` | guarded fragment, Theorem 8 translations |
//! | [`bisim`] | `sj-bisim` | guarded bisimulation checker and solver |
//! | [`core`] | `sj-core` | dichotomy theorem machinery (the paper's contribution) |
//! | [`setjoin`] | `sj-setjoin` | division and set-join algorithms & their [`Registry`] |
//! | [`stats`] | `sj-stats` | per-relation statistics, cardinality estimation, the cost model |
//! | [`workload`] | `sj-workload` | deterministic data generators, paper figures, serving traces |
//! | [`server`] | `sj-server` | concurrent snapshot-isolated serving with a plan/result cache |
//!
//! ## Quickstart
//!
//! The [`Engine`] is the single entry point: build it over a database,
//! configure optimizer level / evaluation strategy / instrumentation /
//! set-join algorithm choice, then run queries and set operators:
//!
//! ```
//! use setjoins::prelude::*;
//!
//! // Fig. 1: who has all the symptoms in the Symptoms table?
//! let engine = Engine::new(setjoins::workload::figures::fig1())
//!     .strategy(Strategy::Planned)
//!     .instrument(Instrument::Cardinalities);
//!
//! // Division and set joins route through the algorithm registry; the
//! // default `AlgorithmChoice::Auto` picks by predicate and input size.
//! let division = engine
//!     .divide("Person", "Symptoms", DivisionSemantics::Containment)
//!     .unwrap();
//! assert_eq!(division.relation.len(), 2); // An and Bob
//!
//! let diagnosis = engine
//!     .set_join("Person", "Disease", SetPredicate::Contains)
//!     .unwrap();
//! assert_eq!(diagnosis.relation.len(), 3);
//!
//! // Relational-algebra queries return relation + report + plan at once.
//! let plan = setjoins::algebra::division::division_double_difference("Person", "Symptoms");
//! let out = engine.query(plan).run().unwrap();
//! assert_eq!(out.relation, division.relation);
//! assert!(out.plan.is_some()); // the memoized physical DAG
//! assert!(out.report.unwrap().max_intermediate() >= 2);
//! ```
//!
//! The pre-`Engine` free functions (`evaluate`, `evaluate_planned`,
//! `divide`, `set_join`, …) remain exported: they are thin wrappers over
//! the same operators and registry entries, convenient for one-off calls
//! on bare relations.

pub use sj_algebra as algebra;
pub use sj_bisim as bisim;
pub use sj_core as core;
pub use sj_eval as eval;
pub use sj_logic as logic;
pub use sj_obs as obs;
pub use sj_server as server;
pub use sj_setjoin as setjoin;
pub use sj_stats as stats;
pub use sj_storage as storage;
pub use sj_workload as workload;

pub use sj_eval::{
    Engine, Execution, Instrument, JoinOrder, Parallelism, Query, QueryOutput, StatsMode, Strategy,
};
pub use sj_setjoin::Registry;
pub use sj_stats::{CostModel, TableStats};

/// Most-used items in one import.
pub mod prelude {
    pub use sj_algebra::{Condition, Expr, OptimizeLevel, Pass, Pipeline};
    pub use sj_eval::{
        evaluate, evaluate_instrumented, AlgorithmChoice, Engine, EvalReport, Execution,
        Instrument, JoinOrder, Parallelism, Query, QueryOutput, Report, SetOpOutput, StatsMode,
        Strategy,
    };
    pub use sj_setjoin::{
        divide, set_join, ComplexityClass, DivisionSemantics, Registry, SetPredicate,
    };
    pub use sj_stats::{CostModel, StatsCatalog, TableStats};
    pub use sj_storage::{tuple, Database, Relation, Schema, Tuple, Value};
}
