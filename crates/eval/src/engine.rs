//! The [`Engine`]: one configurable entry point for every way this
//! workspace can answer a query.
//!
//! Before the engine existed, every caller hand-wired its own pipeline
//! out of ~15 free functions: pick an optimizer call, pick an evaluator
//! (`evaluate` / `evaluate_instrumented` / `evaluate_planned` /
//! `evaluate_reference`), pick a division or set-join algorithm, and pick
//! one of two `explain` flavors. The paper's dichotomy is fundamentally a
//! statement about *which plan/algorithm gets picked* — so that choice
//! should be configuration on one object, not copy-pasted call sites:
//!
//! ```
//! use sj_eval::{Engine, Instrument, Strategy};
//! use sj_algebra::{division, OptimizeLevel};
//! use sj_storage::{Database, Relation};
//!
//! let mut db = Database::new();
//! db.set("R", Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7]]));
//! db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
//!
//! let engine = Engine::new(db)
//!     .optimize(OptimizeLevel::Full)
//!     .strategy(Strategy::Planned)
//!     .instrument(Instrument::Cardinalities);
//!
//! let out = engine
//!     .query(division::division_double_difference("R", "S"))
//!     .run()
//!     .unwrap();
//! assert_eq!(out.relation, Relation::from_int_rows(&[&[1]]));
//! assert!(out.plan.is_some());                      // Strategy::Planned
//! assert!(out.report.unwrap().max_intermediate() >= 1);
//! ```
//!
//! * [`Engine::query`] builds a [`Query`]; [`Query::run`] returns a
//!   single [`QueryOutput`] `{ relation, report, plan }`, and
//!   [`Query::explain`] unifies the old `explain` / `explain_plan` pair.
//! * [`Engine::divide`] and [`Engine::set_join`] route the direct
//!   division/set-join operators through the
//!   [`sj_setjoin::Registry`], so algorithm ablations are a
//!   one-line [`Engine::algorithm`] change; the default
//!   [`AlgorithmChoice::Auto`] picks by predicate and input statistics.

use crate::error::EvalError;
use crate::exec::Execution;
use crate::explain::render_tree;
use crate::instrumented::{evaluate_instrumented, EvalReport};
use crate::joinorder::JoinOrder;
use crate::par::Parallelism;
use crate::plain::evaluate;
use crate::plan::{PhysicalPlan, PlannedReport};
use crate::reference::evaluate_reference;
use sj_algebra::{AlgebraError, Expr, OptimizeLevel, Pipeline};
use sj_setjoin::registry::{ComplexityClass, Registry};
use sj_setjoin::{DivisionSemantics, SetPredicate};
use sj_stats::{AnalyzeSource, CatalogSource, CostModel, StatsCatalog, TableStats};
use sj_storage::{Database, Relation};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which evaluator executes the (optimized) expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum Strategy {
    /// The DAG-memoizing physical planner ([`crate::evaluate_planned`]):
    /// every distinct subexpression evaluated once, zero-copy leaf scans,
    /// merge operators on aligned key prefixes. The production default.
    #[default]
    Planned,
    /// The tree-walking evaluator ([`crate::evaluate`]): one evaluation
    /// per *tree* node — the measurement instrument for the paper's
    /// Definition 16 experiments, where per-occurrence cardinalities are
    /// the point.
    Naive,
    /// The nested-loop transliteration of the paper's semantics
    /// ([`crate::evaluate_reference`]): slow, obviously correct, used to
    /// cross-validate the other two.
    Reference,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Planned => write!(f, "planned"),
            Strategy::Naive => write!(f, "naive"),
            Strategy::Reference => write!(f, "reference"),
        }
    }
}

/// How much measurement a [`Query::run`] performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum Instrument {
    /// No per-node statistics; fastest. [`QueryOutput::report`] is `None`.
    #[default]
    Off,
    /// Record per-node cardinalities (the Definition 16 quantities).
    Cardinalities,
    /// Cardinalities plus wall-clock timing: per-node self times in the
    /// report and the end-to-end [`QueryOutput::elapsed`].
    Timings,
    /// Everything `Timings` records, packaged as an `EXPLAIN
    /// ANALYZE`-style [`crate::QueryProfile`] via
    /// [`QueryOutput::profile`]: per-node estimated vs actual rows,
    /// q-error, elapsed, and partition counts, with a
    /// timing-masked rendering for golden tests.
    Profile,
}

/// Whether (and how) the engine collects per-relation statistics for
/// cost-based decisions.
///
/// With statistics, [`Engine::divide`] / [`Engine::set_join`] pick the
/// estimated-cheapest registry algorithm
/// ([`Registry::auto_division_costed`]), and [`Strategy::Planned`]
/// queries plan with per-node cardinality estimates (operator choice,
/// the partition-parallelism gate, `est≈` annotations in [`Query::explain`]
/// and instrumented reports). Results never depend on the mode — only
/// which algorithm/operator computes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum StatsMode {
    /// No statistics. Selection falls back to the fixed thresholds of
    /// [`sj_setjoin::registry::thresholds`] — byte-identical behavior
    /// to engines predating the statistics subsystem.
    #[default]
    Off,
    /// Analyze operand relations afresh on every call: always-current
    /// statistics at the price of one `ANALYZE` pass per operand
    /// (linear in the relation — usually dwarfed by the operator
    /// itself).
    Analyze,
    /// Analyze on first use and cache per relation name in a shared
    /// [`StatsCatalog`]; the cache invalidates copy-on-write whenever
    /// a relation is replaced or mutated (see [`StatsCatalog`]).
    Cached,
}

impl fmt::Display for StatsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsMode::Off => write!(f, "off"),
            StatsMode::Analyze => write!(f, "analyze"),
            StatsMode::Cached => write!(f, "cached"),
        }
    }
}

/// How [`Engine::divide`] / [`Engine::set_join`] pick their algorithm
/// from the registry.
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub enum AlgorithmChoice {
    /// Let [`Registry::auto_set_join`] / [`Registry::auto_division`]
    /// choose from the predicate and input statistics.
    #[default]
    Auto,
    /// Always use the named algorithm (registry lookup by name).
    Named(String),
}

impl AlgorithmChoice {
    /// Convenience constructor for the named form.
    pub fn named(name: impl Into<String>) -> AlgorithmChoice {
        AlgorithmChoice::Named(name.into())
    }
}

/// The per-node statistics of an instrumented run, from whichever
/// evaluator produced them.
#[derive(Debug, Clone)]
pub enum Report {
    /// One [`crate::NodeStat`] per expression-tree node (pre-order).
    Naive(EvalReport),
    /// One [`crate::NodeStat`] per physical-plan DAG node (topological).
    Planned(PlannedReport),
}

impl Report {
    /// The query result the instrumented run computed.
    pub fn result(&self) -> &Relation {
        match self {
            Report::Naive(r) => &r.result,
            Report::Planned(r) => &r.result,
        }
    }

    /// The largest intermediate (or final) cardinality — the quantity the
    /// dichotomy theorem is about.
    pub fn max_intermediate(&self) -> usize {
        match self {
            Report::Naive(r) => r.max_intermediate(),
            Report::Planned(r) => r.max_intermediate(),
        }
    }

    /// The input database size `|D|`.
    pub fn db_size(&self) -> usize {
        match self {
            Report::Naive(r) => r.db_size,
            Report::Planned(r) => r.db_size,
        }
    }

    /// Sum of per-node self times.
    pub fn total_elapsed(&self) -> Duration {
        match self {
            Report::Naive(r) => r.total_elapsed(),
            Report::Planned(r) => r.total_elapsed(),
        }
    }

    /// Render the per-node table of whichever report this is.
    pub fn render(&self) -> String {
        match self {
            Report::Naive(r) => r.render(),
            Report::Planned(r) => r.render(),
        }
    }

    /// The naive (per-tree-node) report, when that evaluator ran.
    pub fn as_naive(&self) -> Option<&EvalReport> {
        match self {
            Report::Naive(r) => Some(r),
            Report::Planned(_) => None,
        }
    }

    /// The planned (per-DAG-node) report, when the planner ran.
    pub fn as_planned(&self) -> Option<&PlannedReport> {
        match self {
            Report::Naive(_) => None,
            Report::Planned(r) => Some(r),
        }
    }
}

/// Everything a [`Query::run`] produces.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The query result.
    pub relation: Relation,
    /// Per-node statistics, present iff [`Instrument`] is not `Off` and
    /// the strategy supports instrumentation (the reference evaluator
    /// does not).
    pub report: Option<Report>,
    /// The physical plan that was executed ([`Strategy::Planned`] only).
    pub plan: Option<PhysicalPlan>,
    /// End-to-end wall-clock time (optimize + plan + execute), recorded
    /// under [`Instrument::Timings`] and [`Instrument::Profile`].
    pub elapsed: Option<Duration>,
    /// The parallelism the engine ran the query under. Worker counts and
    /// per-partition timings appear in the planned report
    /// ([`PlannedReport::workers`], [`crate::NodeStat::partitions`]).
    pub parallelism: Parallelism,
}

impl QueryOutput {
    /// The `EXPLAIN ANALYZE`-style per-node breakdown of this run, when
    /// a report was collected (any instrument level except `Off`;
    /// request [`Instrument::Profile`] to also get the end-to-end
    /// elapsed time in the header).
    pub fn profile(&self) -> Option<crate::QueryProfile> {
        self.report
            .as_ref()
            .map(|r| crate::QueryProfile::from_report(r, self.elapsed))
    }
}

/// The result of a registry-routed [`Engine::divide`] /
/// [`Engine::set_join`], carrying which algorithm ran.
#[derive(Debug, Clone)]
pub struct SetOpOutput {
    /// The operator result.
    pub relation: Relation,
    /// Name of the algorithm the registry supplied.
    pub algorithm: &'static str,
    /// Its complexity class for the executed predicate/semantics.
    pub complexity: ComplexityClass,
    /// Wall-clock time of the algorithm run.
    pub elapsed: Duration,
}

/// The unified query engine: a database plus evaluation configuration.
///
/// Construction is builder-style — each setter consumes and returns the
/// engine, so a fully configured engine is one expression. See the
/// [module docs](self) for a complete example.
#[derive(Clone, Debug)]
pub struct Engine {
    db: Database,
    pipeline: Pipeline,
    strategy: Strategy,
    instrument: Instrument,
    algorithm: AlgorithmChoice,
    registry: Arc<Registry>,
    parallelism: Parallelism,
    execution: Execution,
    stats: StatsMode,
    catalog: Arc<StatsCatalog>,
    cost_model: Arc<CostModel>,
    join_order: JoinOrder,
}

impl Engine {
    /// An engine over `db` with the default configuration: no rewrites
    /// ([`OptimizeLevel::Off`] — the expression runs as written),
    /// [`Strategy::Planned`], [`Instrument::Off`],
    /// [`AlgorithmChoice::Auto`] over the standard registry,
    /// [`Parallelism::Serial`].
    pub fn new(db: Database) -> Engine {
        Engine {
            db,
            pipeline: OptimizeLevel::Off.pipeline(),
            strategy: Strategy::default(),
            instrument: Instrument::default(),
            algorithm: AlgorithmChoice::default(),
            registry: Registry::standard_shared(),
            parallelism: Parallelism::default(),
            execution: Execution::from_env(),
            stats: StatsMode::default(),
            catalog: Arc::new(StatsCatalog::new()),
            cost_model: Arc::new(CostModel::default()),
            join_order: JoinOrder::default(),
        }
    }

    /// Set the optimizer level (a named pass pipeline).
    pub fn optimize(mut self, level: OptimizeLevel) -> Engine {
        self.pipeline = level.pipeline();
        self
    }

    /// Set a custom optimizer pass pipeline (finer-grained than
    /// [`Engine::optimize`]).
    pub fn passes(mut self, pipeline: Pipeline) -> Engine {
        self.pipeline = pipeline;
        self
    }

    /// Set the evaluation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Engine {
        self.strategy = strategy;
        self
    }

    /// Set the instrumentation level.
    pub fn instrument(mut self, instrument: Instrument) -> Engine {
        self.instrument = instrument;
        self
    }

    /// Set how [`Engine::divide`] / [`Engine::set_join`] pick their
    /// algorithm.
    pub fn algorithm(mut self, choice: AlgorithmChoice) -> Engine {
        self.algorithm = choice;
        self
    }

    /// Swap in a custom algorithm registry (e.g. with tuned variants
    /// shadowing the standard entries).
    pub fn registry(mut self, registry: Arc<Registry>) -> Engine {
        self.registry = registry;
        self
    }

    /// Set the execution parallelism. Under [`Parallelism::Threads`] the
    /// planned executor runs independent DAG nodes concurrently and
    /// join/semijoin nodes partition-parallel, and the registry's `auto`
    /// selectors may pick the partition-parallel division/set-join
    /// variants for large inputs. Results are byte-identical to
    /// [`Parallelism::Serial`] (the default) for every worker count; the
    /// tree-walking [`Strategy::Naive`] and [`Strategy::Reference`]
    /// evaluators — measurement instruments, not production paths —
    /// always run serially.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Engine {
        self.parallelism = parallelism;
        self
    }

    /// Set the execution mode for the planned path's serial operator
    /// work: [`Execution::Vectorized`] (the default) runs the chunked
    /// columnar kernels of [`crate::ops_vec`], [`Execution::RowAtATime`]
    /// the classic tuple operators of [`crate::ops`]. Results are
    /// byte-identical either way; like [`Engine::parallelism`] the knob
    /// is ignored by the tree-walking [`Strategy::Naive`] and
    /// [`Strategy::Reference`] evaluators (tuple-at-a-time by
    /// definition). The process default honors the `SETJOINS_EXECUTION`
    /// environment variable ([`Execution::from_env`]).
    pub fn execution(mut self, execution: Execution) -> Engine {
        self.execution = execution;
        self
    }

    /// The configured execution mode.
    pub fn execution_mode(&self) -> Execution {
        self.execution
    }

    /// Set the statistics mode (see [`StatsMode`]). Clones of a
    /// [`StatsMode::Cached`] engine share one catalog, so statistics
    /// analyzed by one clone benefit the others.
    pub fn stats(mut self, mode: StatsMode) -> Engine {
        self.stats = mode;
        self
    }

    /// Swap in a custom [`CostModel`] (e.g. re-calibrated constants
    /// for different hardware).
    pub fn cost_model(mut self, model: CostModel) -> Engine {
        self.cost_model = Arc::new(model);
        self
    }

    /// The cost model the engine currently plans with.
    pub fn cost_model_ref(&self) -> &CostModel {
        &self.cost_model
    }

    /// Refit the cost-model constants from the kernel spans recorded in
    /// `log` — the observability feedback loop. Every closed
    /// `kernel.*` span (recorded by running queries under an installed
    /// [`sj_obs::Collector`]) contributes its operand sizes, worker
    /// count, output rows, and wall-clock duration; the
    /// [`sj_stats::Calibrator`] refits the constants by relative-error
    /// least squares, keeping the engine's current constants for
    /// primitives the trace never exercised. Returns the recalibrated
    /// model; apply it with [`Engine::cost_model`]:
    ///
    /// ```ignore
    /// let model = engine.calibrate(&ring.log());
    /// let engine = engine.cost_model(model);
    /// ```
    pub fn calibrate(&self, log: &sj_obs::TraceLog) -> CostModel {
        let mut calibrator = sj_stats::Calibrator::new();
        calibrator.observe_trace(log);
        calibrator.fit(&self.cost_model)
    }

    /// Set the join-order mode: how the planner associates join chains
    /// when statistics are on ([`JoinOrder::Dp`], the default, runs the
    /// exhaustive bushy search and enables the worst-case-optimal
    /// multiway collapse for AGM-bound-beating cyclic chains;
    /// [`JoinOrder::AsWritten`] keeps the written shape). Ignored under
    /// [`StatsMode::Off`] — without estimates there is nothing to cost
    /// orders with. Results are byte-identical in every mode.
    pub fn join_order(mut self, order: JoinOrder) -> Engine {
        self.join_order = order;
        self
    }

    /// The configured join-order mode.
    pub fn join_order_mode(&self) -> JoinOrder {
        self.join_order
    }

    /// The configured statistics mode.
    pub fn stats_mode(&self) -> StatsMode {
        self.stats
    }

    /// The shared statistics catalog ([`StatsMode::Cached`] fills it;
    /// the other modes leave it empty).
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// The engine's database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the engine's database (loads, inserts).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consume the engine, returning its database.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// A clone of this engine bound to a different database, sharing
    /// everything else: the registry, cost model, and — crucially — the
    /// [`StatsCatalog`], so statistics analyzed by any fork benefit all
    /// of them (the catalog's `Arc::ptr_eq` freshness check keeps this
    /// sound across databases that share relation `Arc`s, e.g.
    /// snapshots of one evolving master).
    ///
    /// This is the serving substrate: `sj-server` holds one template
    /// engine and forks it per query onto an immutable
    /// [`sj_storage::Snapshot`] of the master database.
    pub fn fork(&self, db: Database) -> Engine {
        let mut forked = self.clone();
        forked.db = db;
        forked
    }

    /// The configured optimizer pipeline.
    pub fn optimizer(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The configured algorithm registry.
    pub fn algorithms(&self) -> &Registry {
        &self.registry
    }

    /// Build a [`Query`] for `expr` against this engine's configuration.
    pub fn query(&self, expr: Expr) -> Query<'_> {
        Query { engine: self, expr }
    }

    /// Division `dividend ÷ divisor`, routed through the registry
    /// ([`AlgorithmChoice::Auto`] picks by semantics and input size).
    pub fn divide(
        &self,
        dividend: &str,
        divisor: &str,
        sem: DivisionSemantics,
    ) -> Result<SetOpOutput, EvalError> {
        let r = self.operand(dividend, 2)?;
        let s = self.operand(divisor, 1)?;
        let workers = self.parallelism.workers();
        let alg = match &self.algorithm {
            AlgorithmChoice::Auto => {
                let rs = self.operand_stats(dividend, r);
                let ss = self.operand_stats(divisor, s);
                let stats = rs.as_deref().zip(ss.as_deref());
                self.registry
                    .auto_division_costed(r, s, sem, workers, stats, &self.cost_model)
                    .ok_or_else(|| EvalError::UnknownAlgorithm("auto (empty registry)".into()))?
            }
            AlgorithmChoice::Named(name) => self
                .registry
                .find_division(name)
                .ok_or_else(|| EvalError::UnknownAlgorithm(name.clone()))?,
        };
        let start = Instant::now();
        let relation = sj_setjoin::run_division_traced(&*alg, r, s, sem, workers);
        Ok(SetOpOutput {
            relation,
            algorithm: alg.name(),
            complexity: alg.complexity(sem),
            elapsed: start.elapsed(),
        })
    }

    /// Set join `left ⋈_{B pred D} right`, routed through the registry.
    ///
    /// Errors with [`EvalError::UnsupportedPredicate`] when a
    /// [`AlgorithmChoice::Named`] algorithm does not implement `pred`
    /// (e.g. `inverted-index` asked for `⊆`), or when no registered
    /// algorithm does under [`AlgorithmChoice::Auto`].
    pub fn set_join(
        &self,
        left: &str,
        right: &str,
        pred: SetPredicate,
    ) -> Result<SetOpOutput, EvalError> {
        let r = self.operand(left, 2)?;
        let s = self.operand(right, 2)?;
        let workers = self.parallelism.workers();
        let alg = match &self.algorithm {
            AlgorithmChoice::Auto => {
                let rs = self.operand_stats(left, r);
                let ss = self.operand_stats(right, s);
                let stats = rs.as_deref().zip(ss.as_deref());
                self.registry
                    .auto_set_join_costed(r, s, pred, workers, stats, &self.cost_model)
                    .ok_or_else(|| {
                        // None means nothing registered supports the predicate
                        // — distinguish that from a genuinely empty registry.
                        if self.registry.set_join_algorithms().is_empty() {
                            EvalError::UnknownAlgorithm("auto (empty registry)".into())
                        } else {
                            EvalError::UnsupportedPredicate {
                                algorithm: "auto".into(),
                                predicate: format!("{pred:?}"),
                            }
                        }
                    })?
            }
            AlgorithmChoice::Named(name) => {
                let alg = self
                    .registry
                    .find_set_join(name)
                    .ok_or_else(|| EvalError::UnknownAlgorithm(name.clone()))?;
                if !alg.supports(pred) {
                    return Err(EvalError::UnsupportedPredicate {
                        algorithm: name.clone(),
                        predicate: format!("{pred:?}"),
                    });
                }
                alg
            }
        };
        let start = Instant::now();
        let relation = sj_setjoin::run_set_join_traced(&*alg, r, s, pred, workers);
        Ok(SetOpOutput {
            relation,
            algorithm: alg.name(),
            complexity: alg.complexity(pred),
            elapsed: start.elapsed(),
        })
    }

    /// Build the physical plan for an (optimized) expression: plain
    /// under [`StatsMode::Off`], estimate-annotated and cost-gated
    /// otherwise.
    fn plan_for(&self, expr: &Expr) -> Result<PhysicalPlan, EvalError> {
        let schema = self.db.schema();
        match self.stats {
            StatsMode::Off => PhysicalPlan::of(expr, &schema),
            StatsMode::Analyze => {
                let src = AnalyzeSource::new(&self.db);
                PhysicalPlan::of_costed_with_order(
                    expr,
                    &schema,
                    &src,
                    &self.cost_model,
                    self.join_order,
                )
            }
            StatsMode::Cached => {
                let src = CatalogSource::new(&self.catalog, &self.db);
                PhysicalPlan::of_costed_with_order(
                    expr,
                    &schema,
                    &src,
                    &self.cost_model,
                    self.join_order,
                )
            }
        }
    }

    /// Statistics for a set-operator operand per the configured
    /// [`StatsMode`]: `None` (off), a fresh analysis, or a catalog hit.
    fn operand_stats(&self, name: &str, rel: &Relation) -> Option<Arc<TableStats>> {
        match self.stats {
            StatsMode::Off => None,
            StatsMode::Analyze => Some(Arc::new(TableStats::analyze(rel))),
            StatsMode::Cached => self.catalog.stats_for(&self.db, name),
        }
    }

    /// Look up a set-operator operand and check its arity.
    fn operand(&self, name: &str, expected: usize) -> Result<&Relation, EvalError> {
        let rel = self
            .db
            .get(name)
            .ok_or_else(|| EvalError::Algebra(AlgebraError::UnknownRelation(name.to_string())))?;
        if rel.arity() != expected {
            return Err(EvalError::InvalidSetOperand {
                relation: name.to_string(),
                arity: rel.arity(),
                expected,
            });
        }
        Ok(rel)
    }
}

/// An expression bound to an [`Engine`]; run it with [`Query::run`] or
/// render it with [`Query::explain`].
#[derive(Clone, Debug)]
pub struct Query<'e> {
    engine: &'e Engine,
    expr: Expr,
}

impl Query<'_> {
    /// The expression as submitted (before optimization).
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The expression after the engine's optimizer pipeline.
    pub fn optimized(&self) -> Result<Expr, EvalError> {
        Ok(self
            .engine
            .pipeline
            .run(&self.expr, &self.engine.db.schema())?)
    }

    /// Optimize, plan (under [`Strategy::Planned`]), and execute.
    ///
    /// Instrumented runs hand the result out twice — as
    /// [`QueryOutput::relation`] and inside the report, whose `result`
    /// field the report renderers use — at the cost of one copy of the
    /// result relation. Turn instrumentation [`Instrument::Off`] on hot
    /// paths where only the relation matters.
    pub fn run(&self) -> Result<QueryOutput, EvalError> {
        let engine = self.engine;
        let start = Instant::now();
        let expr = self.optimized()?;
        let instrumented = engine.instrument != Instrument::Off;
        // The tree-walking evaluators are measurement instruments (one
        // evaluation per tree node is their point); only the planned
        // executor honors the parallelism knob.
        let parallelism = match engine.strategy {
            Strategy::Planned => engine.parallelism,
            Strategy::Naive | Strategy::Reference => Parallelism::Serial,
        };
        let mut out = match engine.strategy {
            Strategy::Reference => QueryOutput {
                relation: evaluate_reference(&expr, &engine.db)?,
                report: None,
                plan: None,
                elapsed: None,
                parallelism,
            },
            Strategy::Naive => {
                if instrumented {
                    let report = evaluate_instrumented(&expr, &engine.db)?;
                    QueryOutput {
                        relation: report.result.clone(),
                        report: Some(Report::Naive(report)),
                        plan: None,
                        elapsed: None,
                        parallelism,
                    }
                } else {
                    QueryOutput {
                        relation: evaluate(&expr, &engine.db)?,
                        report: None,
                        plan: None,
                        elapsed: None,
                        parallelism,
                    }
                }
            }
            Strategy::Planned => {
                let plan = engine.plan_for(&expr)?;
                if instrumented {
                    let report = plan.execute_instrumented_with_execution(
                        &engine.db,
                        parallelism,
                        engine.execution,
                    )?;
                    QueryOutput {
                        relation: report.result.clone(),
                        report: Some(Report::Planned(report)),
                        plan: Some(plan),
                        elapsed: None,
                        parallelism,
                    }
                } else {
                    QueryOutput {
                        relation: plan.execute_with_execution(
                            &engine.db,
                            parallelism,
                            engine.execution,
                        )?,
                        report: None,
                        plan: Some(plan),
                        elapsed: None,
                        parallelism,
                    }
                }
            }
        };
        if matches!(engine.instrument, Instrument::Timings | Instrument::Profile) {
            out.elapsed = Some(start.elapsed());
        }
        Ok(out)
    }

    /// Render the query plan, unifying the two historical flavors:
    ///
    /// * under [`Strategy::Planned`], the physical DAG with operator
    ///   choices and sharing annotations (no execution) — the old
    ///   `explain_plan`;
    /// * under [`Strategy::Naive`] / [`Strategy::Reference`], an
    ///   `EXPLAIN ANALYZE`-style tree with actual per-node cardinalities
    ///   (runs the instrumented tree evaluator) — the old `explain`.
    pub fn explain(&self) -> Result<String, EvalError> {
        let expr = self.optimized()?;
        match self.engine.strategy {
            // With statistics enabled the rendered DAG carries `~N
            // rows` estimates per node (compare against the actuals in
            // an instrumented run's report).
            Strategy::Planned => Ok(self.engine.plan_for(&expr)?.explain()),
            Strategy::Naive | Strategy::Reference => {
                let report = evaluate_instrumented(&expr, &self.engine.db)?;
                Ok(render_tree(&expr, &report))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::division;
    use sj_algebra::Condition;

    fn division_db() -> Database {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 8], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        db
    }

    fn fig1_db() -> Database {
        let mut db = Database::new();
        db.set(
            "Person",
            Relation::from_str_rows(&[
                &["An", "headache"],
                &["An", "neck pain"],
                &["Bob", "headache"],
                &["Bob", "neck pain"],
                &["Carol", "headache"],
            ]),
        );
        db.set(
            "Symptoms",
            Relation::from_str_rows(&[&["headache"], &["neck pain"]]),
        );
        db
    }

    #[test]
    fn all_strategies_agree_on_the_division_plan() {
        let e = division::division_double_difference("R", "S");
        let expected = Relation::from_int_rows(&[&[1]]);
        for strategy in [Strategy::Planned, Strategy::Naive, Strategy::Reference] {
            let engine = Engine::new(division_db()).strategy(strategy);
            let out = engine.query(e.clone()).run().unwrap();
            assert_eq!(out.relation, expected, "{strategy}");
            assert_eq!(out.plan.is_some(), strategy == Strategy::Planned);
            assert!(out.report.is_none(), "Instrument::Off ⇒ no report");
            assert!(out.elapsed.is_none());
        }
    }

    #[test]
    fn instrumentation_produces_the_right_report_flavor() {
        let e = division::division_double_difference("R", "S");
        let naive = Engine::new(division_db())
            .strategy(Strategy::Naive)
            .instrument(Instrument::Cardinalities);
        let out = naive.query(e.clone()).run().unwrap();
        let report = out.report.unwrap();
        assert!(report.as_naive().is_some());
        assert_eq!(report.as_naive().unwrap().nodes.len(), e.node_count());
        assert_eq!(report.result(), &out.relation);

        let planned = Engine::new(division_db())
            .strategy(Strategy::Planned)
            .instrument(Instrument::Cardinalities);
        let out = planned.query(e.clone()).run().unwrap();
        let report = out.report.unwrap();
        assert!(report.as_planned().is_some());
        assert_eq!(report.as_planned().unwrap().nodes.len(), 7);
        assert!(out.elapsed.is_none(), "Cardinalities ⇒ no wall clock");

        // The reference evaluator has no instrumentation: report is None.
        let reference = Engine::new(division_db())
            .strategy(Strategy::Reference)
            .instrument(Instrument::Cardinalities);
        assert!(reference.query(e).run().unwrap().report.is_none());
    }

    #[test]
    fn timings_record_wall_clock() {
        let e = division::division_double_difference("R", "S");
        let engine = Engine::new(division_db()).instrument(Instrument::Timings);
        let out = engine.query(e).run().unwrap();
        assert!(out.elapsed.is_some());
        assert!(out.report.unwrap().total_elapsed() <= out.elapsed.unwrap());
    }

    #[test]
    fn optimizer_levels_are_applied() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1]);
        let off = Engine::new(division_db());
        assert_eq!(off.query(e.clone()).optimized().unwrap(), e);
        let full = Engine::new(division_db()).optimize(OptimizeLevel::Full);
        let opt = full.query(e.clone()).optimized().unwrap();
        assert!(
            opt.subexpressions()
                .iter()
                .any(|s| matches!(s, Expr::Semijoin(..))),
            "Full level runs semijoin reduction: {opt}"
        );
        assert_eq!(
            full.query(e.clone()).run().unwrap().relation,
            off.query(e).run().unwrap().relation
        );
    }

    #[test]
    fn custom_pass_pipeline_is_respected() {
        use sj_algebra::{Pass, Pipeline};
        let e = Expr::rel("R").project([2, 1]).project([2, 2]);
        let engine = Engine::new(division_db()).passes(Pipeline::new([Pass::ProjectionPruning]));
        let opt = engine.query(e).optimized().unwrap();
        assert_eq!(sj_algebra::to_text(&opt), "project[1,1](R)");
    }

    #[test]
    fn explain_unifies_both_flavors() {
        let e = division::division_double_difference("R", "S");
        let planned = Engine::new(division_db())
            .query(e.clone())
            .explain()
            .unwrap();
        assert!(planned.contains("physical plan"), "{planned}");
        assert!(planned.contains("scan"), "{planned}");
        let naive = Engine::new(division_db())
            .strategy(Strategy::Naive)
            .query(e)
            .explain()
            .unwrap();
        assert!(naive.contains("max intermediate"), "{naive}");
        assert!(naive.contains("◀ largest"), "{naive}");
    }

    #[test]
    fn divide_routes_through_the_registry() {
        let engine = Engine::new(fig1_db());
        let out = engine
            .divide("Person", "Symptoms", DivisionSemantics::Containment)
            .unwrap();
        assert_eq!(out.relation, Relation::from_str_rows(&[&["An"], &["Bob"]]));
        // Tiny input → the auto selector picks the sort-free merge.
        assert_eq!(out.algorithm, "sort-merge");
        assert_eq!(out.complexity, ComplexityClass::Linear);
        // Algorithm ablation is a one-line config change.
        let nested = engine
            .clone()
            .algorithm(AlgorithmChoice::named("nested-loop"))
            .divide("Person", "Symptoms", DivisionSemantics::Containment)
            .unwrap();
        assert_eq!(nested.relation, out.relation);
        assert_eq!(nested.algorithm, "nested-loop");
        assert_eq!(nested.complexity, ComplexityClass::Quadratic);
    }

    #[test]
    fn set_join_routes_through_the_registry() {
        let mut db = fig1_db();
        db.set(
            "Disease",
            Relation::from_str_rows(&[&["flu", "headache"], &["meningitis", "neck pain"]]),
        );
        let engine = Engine::new(db);
        let auto = engine
            .set_join("Person", "Disease", SetPredicate::Contains)
            .unwrap();
        let named = engine
            .clone()
            .algorithm(AlgorithmChoice::named("signature64"))
            .set_join("Person", "Disease", SetPredicate::Contains)
            .unwrap();
        assert_eq!(auto.relation, named.relation);
        assert_eq!(named.algorithm, "signature64");
    }

    #[test]
    fn set_op_errors_are_typed() {
        let engine = Engine::new(fig1_db());
        assert!(matches!(
            engine.divide("Nope", "Symptoms", DivisionSemantics::Containment),
            Err(EvalError::Algebra(AlgebraError::UnknownRelation(_)))
        ));
        assert!(matches!(
            engine.divide("Symptoms", "Symptoms", DivisionSemantics::Containment),
            Err(EvalError::InvalidSetOperand { expected: 2, .. })
        ));
        assert!(matches!(
            engine
                .clone()
                .algorithm(AlgorithmChoice::named("no-such"))
                .divide("Person", "Symptoms", DivisionSemantics::Containment),
            Err(EvalError::UnknownAlgorithm(_))
        ));
        assert!(matches!(
            engine
                .clone()
                .algorithm(AlgorithmChoice::named("inverted-index"))
                .set_join("Person", "Person", SetPredicate::ContainedIn),
            Err(EvalError::UnsupportedPredicate { .. })
        ));
        // Auto over a registry that has algorithms, none supporting the
        // predicate: the error blames the predicate, not the registry.
        let mut contains_only = Registry::new();
        contains_only.register_set_join(Arc::new(sj_setjoin::registry::InvertedIndexSetJoin));
        let err = engine
            .clone()
            .registry(Arc::new(contains_only))
            .set_join("Person", "Person", SetPredicate::ContainedIn)
            .unwrap_err();
        assert!(
            matches!(&err, EvalError::UnsupportedPredicate { algorithm, .. } if algorithm == "auto"),
            "{err}"
        );
        // A genuinely empty registry is reported as such.
        assert!(matches!(
            engine.clone().registry(Arc::new(Registry::new())).set_join(
                "Person",
                "Person",
                SetPredicate::Contains
            ),
            Err(EvalError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn parallelism_knob_preserves_results_and_reports_workers() {
        let e = division::division_double_difference("R", "S");
        let serial = Engine::new(division_db())
            .instrument(Instrument::Cardinalities)
            .query(e.clone())
            .run()
            .unwrap();
        assert_eq!(serial.parallelism, Parallelism::Serial);
        for par in [Parallelism::Threads(2), Parallelism::Threads(4)] {
            let out = Engine::new(division_db())
                .parallelism(par)
                .instrument(Instrument::Cardinalities)
                .query(e.clone())
                .run()
                .unwrap();
            assert_eq!(out.relation, serial.relation, "{par}");
            assert_eq!(out.parallelism, par);
            let report = out.report.unwrap();
            assert_eq!(report.as_planned().unwrap().workers, par.workers());
            assert_eq!(
                report.max_intermediate(),
                serial.report.as_ref().unwrap().max_intermediate()
            );
        }
        // The tree-walking strategies ignore the knob: they are the
        // measurement instruments and always run serially.
        let naive = Engine::new(division_db())
            .strategy(Strategy::Naive)
            .parallelism(Parallelism::Threads(4))
            .query(e)
            .run()
            .unwrap();
        assert_eq!(naive.parallelism, Parallelism::Serial);
        assert_eq!(naive.relation, serial.relation);
    }

    #[test]
    fn parallel_auto_picks_partition_variants_on_large_set_ops() {
        // Fig-scale dividend: big enough for the parallel auto rules.
        let rows: Vec<Vec<i64>> = (0..12_000).map(|i| vec![i / 3, i % 3]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", Relation::from_int_rows(&[&[0], &[1], &[2]]));
        let serial = Engine::new(db.clone());
        let threaded = Engine::new(db).parallelism(Parallelism::Threads(4));
        let a = serial
            .divide("R", "S", DivisionSemantics::Containment)
            .unwrap();
        let b = threaded
            .divide("R", "S", DivisionSemantics::Containment)
            .unwrap();
        assert_eq!(a.algorithm, "hash");
        assert_eq!(b.algorithm, "parallel-hash");
        assert_eq!(a.relation, b.relation, "parallel ≡ serial");
        assert_eq!(b.complexity, ComplexityClass::Linear);
    }

    #[test]
    fn stats_modes_preserve_results_and_refine_picks() {
        // Fig-scale selective containment input: the threshold selector
        // stays with signature64, the cost-based one prices the anchor
        // pruning and picks the partition-based join even serially.
        let rows: Vec<Vec<i64>> = (0..2000)
            .flat_map(|g| (0..6).map(move |v| vec![g, (g * 7 + v) % 64]))
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", Relation::from_int_rows(&refs));
        let off = Engine::new(db.clone());
        let analyze = Engine::new(db.clone()).stats(StatsMode::Analyze);
        let cached = Engine::new(db).stats(StatsMode::Cached);
        let a = off.set_join("R", "S", SetPredicate::Contains).unwrap();
        let b = analyze.set_join("R", "S", SetPredicate::Contains).unwrap();
        let c = cached.set_join("R", "S", SetPredicate::Contains).unwrap();
        assert_eq!(a.algorithm, "signature64", "threshold pick unchanged");
        assert_eq!(b.algorithm, "parallel-signature", "cost-based pick");
        assert_eq!(c.algorithm, b.algorithm);
        assert_eq!(a.relation, b.relation, "mode never changes results");
        assert_eq!(a.relation, c.relation);
        // Cached mode filled the shared catalog; Analyze did not.
        assert_eq!(cached.catalog().len(), 2);
        assert!(analyze.catalog().is_empty());
        // Queries keep their results too, at every mode.
        let e = division::division_double_difference("R", "S2");
        let mut qdb = division_db();
        qdb.set("S2", Relation::from_int_rows(&[&[7], &[8]]));
        let want = Engine::new(qdb.clone()).query(e.clone()).run().unwrap();
        for mode in [StatsMode::Analyze, StatsMode::Cached] {
            let out = Engine::new(qdb.clone())
                .stats(mode)
                .query(e.clone())
                .run()
                .unwrap();
            assert_eq!(out.relation, want.relation, "{mode}");
        }
    }

    #[test]
    fn cached_stats_invalidate_when_the_db_changes() {
        // Tiny relations: cost-based selection picks nested-loop.
        let mut engine = Engine::new(fig1_db()).stats(StatsMode::Cached);
        let small = engine
            .set_join("Person", "Person", SetPredicate::Contains)
            .unwrap();
        assert_eq!(small.algorithm, "nested-loop");
        // Replace Person with a fig-scale relation through db_mut: the
        // catalog entry must be refreshed, flipping the pick.
        let rows: Vec<Vec<i64>> = (0..2000)
            .flat_map(|g| (0..6).map(move |v| vec![g, (g * 7 + v) % 64]))
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        engine
            .db_mut()
            .set("Person", Relation::from_int_rows(&refs));
        let big = engine
            .set_join("Person", "Person", SetPredicate::Contains)
            .unwrap();
        assert_eq!(big.algorithm, "parallel-signature");
    }

    #[test]
    fn explain_is_annotated_with_estimates_under_stats() {
        let e = division::division_double_difference("R", "S");
        let plain = Engine::new(division_db())
            .query(e.clone())
            .explain()
            .unwrap();
        assert!(!plain.contains("rows"), "{plain}");
        let annotated = Engine::new(division_db())
            .stats(StatsMode::Analyze)
            .query(e.clone())
            .explain()
            .unwrap();
        assert!(annotated.contains("~"), "{annotated}");
        assert!(annotated.contains("rows"), "{annotated}");
        // Instrumented runs put estimated next to actual per node.
        let out = Engine::new(division_db())
            .stats(StatsMode::Analyze)
            .instrument(Instrument::Cardinalities)
            .query(e)
            .run()
            .unwrap();
        let report = out.report.unwrap();
        let rendered = report.render();
        assert!(rendered.contains("est≈"), "{rendered}");
        assert!(rendered.contains("card"), "{rendered}");
    }

    #[test]
    fn stats_off_is_byte_identical_to_the_threshold_selector() {
        // The PR-4 boundary behaviors: tiny division → sort-merge, big
        // containment division → hash, equality → counting; parallel
        // hints flip to the partition variants only past the documented
        // thresholds. StatsMode::Off must reproduce all of it (it
        // routes through the identical threshold code path).
        use sj_setjoin::registry::thresholds::*;
        let rows: Vec<Vec<i64>> = (0..(PARALLEL_DIVISION_INPUT as i64))
            .map(|i| vec![i / 4, i % 4])
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", Relation::from_int_rows(&[&[0], &[1]]));
        let serial = Engine::new(db.clone());
        assert_eq!(serial.stats_mode(), StatsMode::Off);
        assert_eq!(
            serial
                .divide("R", "S", DivisionSemantics::Containment)
                .unwrap()
                .algorithm,
            "hash"
        );
        assert_eq!(
            serial
                .divide("R", "S", DivisionSemantics::Equality)
                .unwrap()
                .algorithm,
            "counting"
        );
        let threaded = Engine::new(db).parallelism(Parallelism::Threads(4));
        assert_eq!(
            threaded
                .divide("R", "S", DivisionSemantics::Containment)
                .unwrap()
                .algorithm,
            "parallel-hash"
        );
    }

    #[test]
    fn fork_rebinds_db_and_shares_the_catalog() {
        let engine = Engine::new(fig1_db()).stats(StatsMode::Cached);
        engine
            .set_join("Person", "Person", SetPredicate::Contains)
            .unwrap();
        assert_eq!(engine.catalog().len(), 1);
        // The fork shares one catalog: it sees the original's analysis
        // before running anything of its own...
        let fork = engine.fork(division_db());
        assert_eq!(fork.catalog().len(), 1);
        // ...runs against its own database...
        let out = fork
            .query(division::division_double_difference("R", "S"))
            .run()
            .unwrap();
        assert_eq!(out.relation, Relation::from_int_rows(&[&[1]]));
        // ...and its analyses (R and S, done while planning) become
        // visible to the original through the shared catalog.
        assert_eq!(engine.catalog().len(), 3, "Person + R + S");
        // Configuration rides along.
        assert_eq!(fork.stats_mode(), StatsMode::Cached);
    }

    #[test]
    fn db_access_and_mutation() {
        let mut engine = Engine::new(division_db());
        assert_eq!(engine.db().size(), 7);
        engine.db_mut().insert("S", sj_storage::tuple![9]).unwrap();
        assert_eq!(engine.db().size(), 8);
        assert_eq!(engine.into_db().size(), 8);
    }

    #[test]
    fn run_surfaces_validation_errors() {
        let engine = Engine::new(Database::new());
        assert!(engine.query(Expr::rel("R")).run().is_err());
        assert!(engine.query(Expr::rel("R")).explain().is_err());
    }
}
