//! Structured tracing: spans, the pluggable collector, and the ring
//! buffer.
//!
//! A *span* is a named region of execution with key/value attributes
//! and a parent — the innermost span open on the same thread (or one
//! explicitly adopted across a thread boundary with [`with_parent`],
//! which is how kernel partitions running on scoped worker threads stay
//! attached to the kernel span that spawned them). Spans are emitted
//! with the [`crate::span!`] macro and delivered to the process-global
//! [`Collector`].
//!
//! ## The null fast path
//!
//! With no collector installed, [`enabled`] is false and
//! [`crate::span!`] compiles down to one relaxed atomic load: the
//! attribute expressions are **not evaluated**, nothing allocates, no
//! lock is touched, and the returned [`SpanGuard`] is inert (its `Drop`
//! does nothing). `crates/obs/tests/alloc.rs` pins the zero-allocation
//! property with a counting global allocator; `experiments -- obs`
//! bounds the residual overhead on a real workload.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Identifier of one span within a collector, unique for the
/// collector's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One span attribute value. Constructed through `From` impls so call
/// sites write plain literals (`rows = out.len()`).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (the common case: row counts, worker counts).
    Uint(u64),
    /// Floating point.
    Float(f64),
    /// Static string (operator names, labels known at compile time).
    Str(&'static str),
    /// Owned string (dynamic labels). Allocates — only ever constructed
    /// when a collector is installed, because the [`crate::span!`]
    /// macro skips attribute evaluation on the null path.
    Text(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v:.3}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! attr_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for AttrValue {
            fn from(v: $t) -> AttrValue { AttrValue::$variant(v as $conv) }
        })*
    };
}
attr_from!(i64 => Int as i64, i32 => Int as i64, u64 => Uint as u64,
           u32 => Uint as u64, usize => Uint as u64, f64 => Float as f64);

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Text(v)
    }
}

/// Receives span events. Implementations must be cheap and lock-light:
/// `enter`/`exit` run on query hot paths whenever a collector is
/// installed.
pub trait Collector: Send + Sync {
    /// A span opened: allocate and return its id.
    fn enter(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: &[(&'static str, AttrValue)],
    ) -> SpanId;

    /// The span closed; `attrs` are attributes recorded after entry
    /// (e.g. output cardinalities known only once the operator ran).
    fn exit(&self, id: SpanId, attrs: &[(&'static str, AttrValue)]);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

thread_local! {
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// Is a collector installed? One relaxed load — this is the whole cost
/// of a span on the null path, and the guard the [`crate::span!`] macro
/// evaluates before touching any attribute expression.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `collector` as the process-global span sink. Spans opened
/// while it is installed are delivered to it; spans already open keep
/// the collector they started under.
pub fn install(collector: Arc<dyn Collector>) {
    *COLLECTOR.write().expect("collector lock poisoned") = Some(collector);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the global collector, returning every subsequent span to the
/// null fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    *COLLECTOR.write().expect("collector lock poisoned") = None;
}

/// Run `f` with `collector` installed, then uninstall. The install is
/// process-global, so concurrent callers share the collector —
/// serialize tests that inspect what was recorded.
pub fn with_collector<R>(collector: Arc<dyn Collector>, f: impl FnOnce() -> R) -> R {
    install(collector);
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            uninstall();
        }
    }
    let _guard = Uninstall;
    f()
}

fn collector() -> Option<Arc<dyn Collector>> {
    COLLECTOR.read().expect("collector lock poisoned").clone()
}

/// The innermost span currently open on this thread, if any. Capture it
/// before fanning work out to other threads and re-establish it there
/// with [`with_parent`] so cross-thread children stay attached.
pub fn current_span() -> Option<SpanId> {
    if !enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// Run `f` with `parent` as this thread's innermost span, so spans `f`
/// opens become its children. No-op (beyond one atomic load) when
/// tracing is off or `parent` is `None`.
pub fn with_parent<R>(parent: Option<SpanId>, f: impl FnOnce() -> R) -> R {
    let adopted = if enabled() { parent } else { None };
    if let Some(id) = adopted {
        STACK.with(|s| s.borrow_mut().push(id));
    }
    struct Pop(Option<SpanId>);
    impl Drop for Pop {
        fn drop(&mut self) {
            if let Some(id) = self.0 {
                STACK.with(|s| {
                    let mut stack = s.borrow_mut();
                    if stack.last() == Some(&id) {
                        stack.pop();
                    } else if let Some(pos) = stack.iter().rposition(|&x| x == id) {
                        stack.remove(pos);
                    }
                });
            }
        }
    }
    let _pop = Pop(adopted);
    f()
}

/// An open span; closes (delivers `exit`) on drop. Inert when tracing
/// was off at entry: dropping it does nothing and [`SpanGuard::attr`]
/// is a no-op.
pub struct SpanGuard {
    active: Option<(Arc<dyn Collector>, SpanId)>,
    close_attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanGuard {
    /// The inert guard the null path returns. `Vec::new` does not
    /// allocate, so this is allocation-free.
    #[inline(always)]
    pub fn noop() -> SpanGuard {
        SpanGuard {
            active: None,
            close_attrs: Vec::new(),
        }
    }

    /// Record an attribute to be delivered at exit (for values known
    /// only after the work ran, like output cardinalities). No-op on an
    /// inert guard.
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.active.is_some() {
            self.close_attrs.push((key, value.into()));
        }
    }

    /// This span's id, when a collector is recording it.
    pub fn id(&self) -> Option<SpanId> {
        self.active.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((collector, id)) = self.active.take() {
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&id) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|&x| x == id) {
                    // Out-of-order drop (guards stored past inner
                    // spans): remove just this entry.
                    stack.remove(pos);
                }
            });
            collector.exit(id, &self.close_attrs);
        }
    }
}

/// Open a span. Prefer the [`crate::span!`] macro, which skips
/// attribute evaluation entirely on the null path.
pub fn span_enter(name: &'static str, attrs: &[(&'static str, AttrValue)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    let Some(c) = collector() else {
        return SpanGuard::noop();
    };
    let parent = STACK.with(|s| s.borrow().last().copied());
    let id = c.enter(name, parent, attrs);
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        active: Some((c, id)),
        close_attrs: Vec::new(),
    }
}

/// Open a span: `span!("kernel.join", left = r1.len(), workers = w)`.
///
/// The attribute expressions are evaluated **only when a collector is
/// installed** — on the null path the macro costs one relaxed atomic
/// load and returns an inert [`SpanGuard`]. Bind the result
/// (`let _span = span!(…)` or `let mut span = span!(…)` to add exit
/// attributes); an unbound span closes immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span_enter($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::span_enter(
                $name,
                &[$((stringify!($key), $crate::trace::AttrValue::from($value))),+],
            )
        } else {
            $crate::trace::SpanGuard::noop()
        }
    };
}

// ---------------------------------------------------------------------------
// Ring-buffer collector and the trace log
// ---------------------------------------------------------------------------

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Collector-unique id.
    pub id: SpanId,
    /// Parent span at entry (same thread, or adopted via
    /// [`with_parent`]).
    pub parent: Option<SpanId>,
    /// Span name (`kernel.join`, `server.dispatch`, …).
    pub name: &'static str,
    /// Entry attributes followed by exit attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Nanoseconds from collector creation to entry.
    pub start_ns: u64,
    /// Nanoseconds from collector creation to exit; `None` while open
    /// (or if the ring evicted the record before exit).
    pub end_ns: Option<u64>,
}

impl SpanRecord {
    /// Enter-to-exit wall time, when the span closed.
    pub fn duration(&self) -> Option<Duration> {
        self.end_ns
            .map(|end| Duration::from_nanos(end.saturating_sub(self.start_ns)))
    }

    /// Look up an attribute by key (first occurrence).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// An attribute as `u64`, converting the numeric variants.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key)? {
            AttrValue::Uint(v) => Some(*v),
            AttrValue::Int(v) => u64::try_from(*v).ok(),
            AttrValue::Float(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }
}

struct RingState {
    slots: Vec<SpanRecord>,
    /// `SpanId → slot`, maintained across ring wrap-around.
    index: HashMap<u64, usize>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    evicted: u64,
}

/// A fixed-capacity ring-buffer [`Collector`]: keeps the most recent
/// `capacity` spans with enter/exit timestamps and attributes,
/// overwriting the oldest on overflow. Snapshot with
/// [`RingCollector::log`].
pub struct RingCollector {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<RingState>,
    capacity: usize,
}

impl RingCollector {
    /// A ring holding up to `capacity` spans (min 1).
    pub fn new(capacity: usize) -> RingCollector {
        let capacity = capacity.max(1);
        RingCollector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            state: Mutex::new(RingState {
                slots: Vec::with_capacity(capacity.min(1024)),
                index: HashMap::new(),
                head: 0,
                evicted: 0,
            }),
            capacity,
        }
    }

    /// Default capacity (64k spans) — enough for thousands of queries
    /// between snapshots.
    pub fn with_default_capacity() -> RingCollector {
        RingCollector::new(65_536)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Snapshot the ring into a [`TraceLog`] (records in entry order).
    pub fn log(&self) -> TraceLog {
        let state = self.state.lock().expect("ring poisoned");
        let mut records = state.slots.clone();
        records.sort_by_key(|r| (r.start_ns, r.id));
        TraceLog {
            records,
            evicted: state.evicted,
        }
    }

    /// Forget everything recorded so far.
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("ring poisoned");
        state.slots.clear();
        state.index.clear();
        state.head = 0;
        state.evicted = 0;
    }
}

impl Collector for RingCollector {
    fn enter(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        attrs: &[(&'static str, AttrValue)],
    ) -> SpanId {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let record = SpanRecord {
            id,
            parent,
            name,
            attrs: attrs.to_vec(),
            start_ns: self.now_ns(),
            end_ns: None,
        };
        let mut state = self.state.lock().expect("ring poisoned");
        if state.slots.len() < self.capacity {
            let slot = state.slots.len();
            state.slots.push(record);
            state.index.insert(id.0, slot);
        } else {
            let slot = state.head;
            state.head = (state.head + 1) % self.capacity;
            let old = std::mem::replace(&mut state.slots[slot], record);
            state.index.remove(&old.id.0);
            state.index.insert(id.0, slot);
            state.evicted += 1;
        }
        id
    }

    fn exit(&self, id: SpanId, attrs: &[(&'static str, AttrValue)]) {
        let end = self.now_ns();
        let mut state = self.state.lock().expect("ring poisoned");
        if let Some(&slot) = state.index.get(&id.0) {
            let record = &mut state.slots[slot];
            record.end_ns = Some(end);
            record.attrs.extend_from_slice(attrs);
        }
    }
}

/// A point-in-time snapshot of a [`RingCollector`]: the raw material
/// for hierarchical rendering ([`TraceLog::render`]) and cost-model
/// calibration (`sj_stats::Calibrator::observe_trace`).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Recorded spans in entry order.
    pub records: Vec<SpanRecord>,
    /// Spans overwritten by ring wrap-around before this snapshot.
    pub evicted: u64,
}

impl TraceLog {
    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The spans named `name`, in entry order.
    pub fn spans<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.records.iter().filter(move |r| r.name == name)
    }

    /// Look up a span by id.
    pub fn get(&self, id: SpanId) -> Option<&SpanRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Does `record` have an ancestor (transitively) named
    /// `ancestor_name`? Used by tests to pin the trace hierarchy.
    pub fn has_ancestor(&self, record: &SpanRecord, ancestor_name: &str) -> bool {
        let mut cursor = record.parent;
        while let Some(pid) = cursor {
            match self.get(pid) {
                Some(p) if p.name == ancestor_name => return true,
                Some(p) => cursor = p.parent,
                None => return false,
            }
        }
        false
    }

    /// Render the hierarchical trace: one line per span, children
    /// indented under parents, durations in microseconds, attributes
    /// appended `key=value`. Spans whose parent was evicted render as
    /// roots.
    pub fn render(&self) -> String {
        let mut children: HashMap<Option<SpanId>, Vec<usize>> = HashMap::new();
        let known: std::collections::HashSet<SpanId> = self.records.iter().map(|r| r.id).collect();
        for (i, r) in self.records.iter().enumerate() {
            let parent = r.parent.filter(|p| known.contains(p));
            children.entry(parent).or_default().push(i);
        }
        let mut out = String::new();
        fn emit(
            log: &TraceLog,
            children: &HashMap<Option<SpanId>, Vec<usize>>,
            key: Option<SpanId>,
            depth: usize,
            out: &mut String,
        ) {
            let Some(ids) = children.get(&key) else {
                return;
            };
            for &i in ids {
                let r = &log.records[i];
                let dur = match r.duration() {
                    Some(d) => format!("{:.1}µs", d.as_nanos() as f64 / 1_000.0),
                    None => "open".to_string(),
                };
                let attrs: String = r
                    .attrs
                    .iter()
                    .map(|(k, v)| format!("  {k}={v}"))
                    .collect::<Vec<_>>()
                    .join("");
                out.push_str(&format!(
                    "{:indent$}{} [{dur}]{attrs}\n",
                    "",
                    r.name,
                    indent = depth * 2
                ));
                emit(log, children, Some(r.id), depth + 1, out);
            }
        }
        emit(self, &children, None, 0, &mut out);
        if self.evicted > 0 {
            out.push_str(&format!(
                "({} spans evicted by ring overflow)\n",
                self.evicted
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The collector slot is process-global; serialize tests that use it.
    static GLOBAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn null_path_records_nothing_and_is_inert() {
        let _lock = GLOBAL.lock().unwrap();
        uninstall();
        assert!(!enabled());
        let mut g = crate::span!("test.null", rows = 5usize);
        g.attr("out", 7usize);
        assert_eq!(g.id(), None);
        drop(g);
        assert_eq!(current_span(), None);
    }

    #[test]
    fn ring_collector_records_hierarchy_and_attrs() {
        let _lock = GLOBAL.lock().unwrap();
        let ring = Arc::new(RingCollector::new(16));
        with_collector(ring.clone(), || {
            let mut outer = crate::span!("outer", left = 3usize);
            {
                let _inner = crate::span!("inner", right = 4usize);
            }
            outer.attr("out", 12usize);
        });
        let log = ring.log();
        assert_eq!(log.len(), 2);
        let outer = log.spans("outer").next().unwrap();
        let inner = log.spans("inner").next().unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.attr_u64("left"), Some(3));
        assert_eq!(outer.attr_u64("out"), Some(12));
        assert!(outer.duration().is_some());
        assert!(log.has_ancestor(inner, "outer"));
        assert!(!log.has_ancestor(outer, "inner"));
        let rendered = log.render();
        let outer_at = rendered.find("outer [").unwrap();
        let inner_at = rendered.find("  inner [").unwrap();
        assert!(
            inner_at > outer_at,
            "child indented under parent:\n{rendered}"
        );
    }

    #[test]
    fn cross_thread_parent_adoption() {
        let _lock = GLOBAL.lock().unwrap();
        let ring = Arc::new(RingCollector::new(16));
        with_collector(ring.clone(), || {
            let _outer = crate::span!("fanout");
            let parent = current_span();
            assert!(parent.is_some());
            std::thread::scope(|s| {
                s.spawn(|| {
                    with_parent(parent, || {
                        let _child = crate::span!("partition", partition = 0usize);
                    });
                });
            });
        });
        let log = ring.log();
        let outer = log.spans("fanout").next().unwrap();
        let child = log.spans("partition").next().unwrap();
        assert_eq!(child.parent, Some(outer.id));
    }

    #[test]
    fn ring_overflow_evicts_oldest() {
        let _lock = GLOBAL.lock().unwrap();
        let ring = Arc::new(RingCollector::new(2));
        with_collector(ring.clone(), || {
            for _ in 0..5 {
                let _g = crate::span!("tick");
            }
        });
        let log = ring.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.evicted, 3);
        assert!(log.render().contains("3 spans evicted"));
        // The survivors are the most recent entries, and both closed.
        assert!(log.records.iter().all(|r| r.end_ns.is_some()));
    }

    #[test]
    fn install_uninstall_toggle_enabled() {
        let _lock = GLOBAL.lock().unwrap();
        assert!(!enabled());
        install(Arc::new(RingCollector::new(4)));
        assert!(enabled());
        uninstall();
        assert!(!enabled());
    }
}
