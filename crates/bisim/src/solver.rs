//! Deciding guarded bisimilarity: the maximal C-guarded bisimulation.
//!
//! Definition 10 forces partial isomorphisms to preserve the order of the
//! universe, so between two value sets there is exactly **one** candidate
//! bijection — the monotone one. The candidate space for a bisimulation is
//! therefore finite: the monotone maps between guarded sets of `A` and
//! guarded sets of `B` that happen to be C-partial isomorphisms. The
//! greatest bisimulation (among guarded-domain maps) is computed by the
//! usual coinductive refinement: start from all candidates and repeatedly
//! delete maps whose forth or back condition fails within the current set.
//!
//! To decide `A, ā ∼ᶜ B, b̄` for C-stored tuples `ā`, `b̄` (whose value
//! sets need not themselves be guarded), note that a bisimulation
//! containing the componentwise map `m : ā → b̄` exists iff
//!
//! 1. `m` is a C-partial isomorphism, and
//! 2. `m` satisfies forth/back against the *maximal* guarded bisimulation
//!    `I*` (any witness set, restricted to its guarded-domain part, is
//!    itself a guarded bisimulation and hence contained in `I*`).
//!
//! Then `I* ∪ {m}` is the certificate.

use crate::check::Bisimulation;
use crate::iso::{check_c_partial_iso, PartialIso};
use sj_storage::{Database, Tuple, Value};

/// Compute the maximal C-guarded bisimulation between `a` and `b`, i.e.
/// the largest set of C-partial isomorphisms with guarded domains/ranges
/// satisfying back-and-forth. The result may be empty (then no guarded
/// bisimulation between guarded sets exists).
pub fn maximal_bisimulation(a: &Database, b: &Database, constants: &[Value]) -> Vec<PartialIso> {
    let guarded_a = a.guarded_sets();
    let guarded_b = b.guarded_sets();
    // All monotone candidate maps that are C-partial isomorphisms.
    let mut current: Vec<PartialIso> = Vec::new();
    for x in &guarded_a {
        for y in &guarded_b {
            if let Some(f) = PartialIso::monotone(x, y) {
                if check_c_partial_iso(a, b, &f, constants).is_ok() {
                    current.push(f);
                }
            }
        }
    }
    // Coinductive refinement to the greatest fixpoint.
    loop {
        let before = current.len();
        current = {
            let snapshot = current.clone();
            current
                .into_iter()
                .filter(|f| survives(f, &snapshot, &guarded_a, &guarded_b))
                .collect()
        };
        if current.len() == before {
            return current;
        }
    }
}

/// Forth and back for `f` within the candidate set `i`.
fn survives(
    f: &PartialIso,
    i: &[PartialIso],
    guarded_a: &[Vec<Value>],
    guarded_b: &[Vec<Value>],
) -> bool {
    let dom = f.domain();
    let ran = f.range();
    let forth = guarded_a.iter().all(|x_prime| {
        i.iter()
            .any(|g| g.domain() == *x_prime && f.agrees_forward(g, &dom))
    });
    if !forth {
        return false;
    }
    guarded_b.iter().all(|y_prime| {
        i.iter()
            .any(|g| g.range() == *y_prime && f.agrees_backward(g, &ran))
    })
}

/// Decide `A, ā ∼ᶜ B, b̄`: is there a C-guarded bisimulation containing
/// the componentwise map `ā → b̄`? Returns the certificate (the maximal
/// guarded bisimulation plus the tuple map) or `None`.
///
/// `ā` and `b̄` should be C-stored in their databases (the paper only
/// defines the relation for such pairs); the decision procedure itself
/// does not require it.
pub fn are_bisimilar(
    a: &Database,
    a_tuple: &Tuple,
    b: &Database,
    b_tuple: &Tuple,
    constants: &[Value],
) -> Option<Bisimulation> {
    let m = PartialIso::from_tuples(a_tuple, b_tuple).ok()?;
    if check_c_partial_iso(a, b, &m, constants).is_err() {
        return None;
    }
    let maximal = maximal_bisimulation(a, b, constants);
    let guarded_a = a.guarded_sets();
    let guarded_b = b.guarded_sets();
    if !survives(&m, &maximal, &guarded_a, &guarded_b) {
        return None;
    }
    let mut isos = maximal;
    isos.push(m);
    Some(Bisimulation::new(isos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_bisimulation;
    use sj_storage::{tuple, Relation};

    fn fig3_a() -> Database {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 3]]));
        d.set("S", Relation::from_int_rows(&[&[1, 2]]));
        d.set("T", Relation::from_int_rows(&[&[2, 3]]));
        d
    }

    fn fig3_b() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[6, 7], &[7, 8], &[9, 10], &[10, 11]]),
        );
        d.set("S", Relation::from_int_rows(&[&[6, 7], &[9, 10]]));
        d.set("T", Relation::from_int_rows(&[&[7, 8], &[10, 11]]));
        d
    }

    /// Fig. 5: the division counterexample databases.
    fn fig5_a() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[2, 8]]),
        );
        d.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        d
    }

    fn fig5_b() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 8], &[2, 9], &[3, 7], &[3, 9]]),
        );
        d.set("S", Relation::from_int_rows(&[&[7], &[8], &[9]]));
        d
    }

    #[test]
    fn fig3_maximal_contains_example12_maps() {
        let (a, b) = (fig3_a(), fig3_b());
        let maximal = maximal_bisimulation(&a, &b, &[]);
        assert!(!maximal.is_empty());
        // The maximal bisimulation is itself a valid bisimulation.
        check_bisimulation(&a, &b, &Bisimulation::new(maximal.clone()), &[])
            .unwrap_or_else(|e| panic!("{e}"));
        // It contains the four maps of Example 12.
        for (x, y) in [
            (tuple![1, 2], tuple![6, 7]),
            (tuple![2, 3], tuple![7, 8]),
            (tuple![1, 2], tuple![9, 10]),
            (tuple![2, 3], tuple![10, 11]),
        ] {
            let f = PartialIso::from_tuples(&x, &y).unwrap();
            assert!(maximal.contains(&f), "missing {f}");
        }
    }

    #[test]
    fn fig3_tuples_bisimilar() {
        let (a, b) = (fig3_a(), fig3_b());
        let cert = are_bisimilar(&a, &tuple![1, 2], &b, &tuple![6, 7], &[]);
        assert!(cert.is_some());
        // And the certificate verifies.
        check_bisimulation(&a, &b, &cert.unwrap(), &[]).unwrap();
        // Mismatched pattern: (1,2) is in A(S) but (7,8) is not in B(S).
        assert!(are_bisimilar(&a, &tuple![1, 2], &b, &tuple![7, 8], &[]).is_none());
    }

    #[test]
    fn fig5_division_counterexample_is_bisimilar() {
        // Proposition 26's witness: A, 1 ∼ B, 1 — yet R ÷ S = {1, 2} on A
        // and ∅ on B (checked in the setjoin crate). Here: bisimilarity.
        let (a, b) = (fig5_a(), fig5_b());
        let cert = are_bisimilar(&a, &tuple![1], &b, &tuple![1], &[]);
        assert!(cert.is_some(), "Fig. 5 pair must be guarded bisimilar");
        check_bisimulation(&a, &b, &cert.unwrap(), &[]).unwrap();
        // Also bisimilar: 2 on A with 1 on B (both "division candidates").
        assert!(are_bisimilar(&a, &tuple![2], &b, &tuple![1], &[]).is_some());
    }

    #[test]
    fn paper_fig5_claimed_set_verifies() {
        // The exact I claimed in the proof of Proposition 26:
        // {1→1} ∪ {ā→b̄ : ā ∈ A(R), b̄ ∈ B(R)} ∪ {ā→b̄ : ā ∈ A(S), b̄ ∈ B(S)}.
        let (a, b) = (fig5_a(), fig5_b());
        let mut isos = vec![PartialIso::from_tuples(&tuple![1], &tuple![1]).unwrap()];
        for ra in a.get("R").unwrap() {
            for rb in b.get("R").unwrap() {
                isos.push(PartialIso::from_tuples(ra, rb).unwrap());
            }
        }
        for sa in a.get("S").unwrap() {
            for sb in b.get("S").unwrap() {
                isos.push(PartialIso::from_tuples(sa, sb).unwrap());
            }
        }
        check_bisimulation(&a, &b, &Bisimulation::new(isos), &[]).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn not_bisimilar_when_patterns_differ() {
        // A has a reflexive loop, B does not: no bisimulation can relate
        // their tuples.
        let mut a = Database::new();
        a.set("E", Relation::from_int_rows(&[&[1, 1]]));
        let mut b = Database::new();
        b.set("E", Relation::from_int_rows(&[&[5, 6]]));
        assert!(are_bisimilar(&a, &tuple![1], &b, &tuple![5], &[]).is_none());
        assert!(maximal_bisimulation(&a, &b, &[]).is_empty());
    }

    #[test]
    fn constants_break_bisimilarity() {
        let (a, b) = (fig5_a(), fig5_b());
        // With C = {9}, B's tuples involving 9 have no counterpart in A:
        // the maximal C-bisimulation loses maps, and back fails for the
        // guarded set {9} of B — 9 must map to itself, but A(S) lacks 9.
        let c = [Value::int(9)];
        assert!(are_bisimilar(&a, &tuple![1], &b, &tuple![1], &c).is_none());
        // Pinning a shared database value also breaks it: with C = {1} the
        // maps may no longer move 1, and the extra divisor value 9 in B
        // becomes distinguishable. This is why Proposition 26 requires the
        // database values to lie outside C.
        let c1 = [Value::int(1)];
        assert!(are_bisimilar(&a, &tuple![1], &b, &tuple![1], &c1).is_none());
        // A constant absent from both databases is harmless.
        let c_out = [Value::int(100)];
        assert!(are_bisimilar(&a, &tuple![1], &b, &tuple![1], &c_out).is_some());
    }

    #[test]
    fn empty_databases_are_trivially_bisimilar_on_constants() {
        let a = Database::new();
        let b = Database::new();
        // No guarded sets at all: the singleton {m} works whenever m is a
        // C-partial isomorphism.
        assert!(are_bisimilar(&a, &tuple![4], &b, &tuple![4], &[]).is_some());
    }

    #[test]
    fn database_bisimilar_to_itself() {
        let a = fig3_a();
        for t in a.tuple_space_set() {
            assert!(
                are_bisimilar(&a, &t, &a, &t, &[]).is_some(),
                "identity on {t} must be bisimilar"
            );
        }
    }
}
