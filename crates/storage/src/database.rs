//! Databases: assignments of relations to relation names.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A database `D` over a schema `S`: an assignment of a finite relation
/// `D(R)` to each relation name `R ∈ S` (Section 2 of the paper).
///
/// Relation names are kept sorted so that iteration, display, and hashing
/// are deterministic.
///
/// Relations are stored behind [`Arc`] so that evaluators can take
/// zero-copy handles to leaf relations ([`Database::get_shared`]) instead
/// of deep-cloning them per scan; mutation goes through
/// [`Arc::make_mut`] (copy-on-write), so the plain `&Relation` /
/// `&mut Relation` API is unchanged.
///
/// Every mutation also bumps a monotonic [`Database::epoch`] counter,
/// and [`Database::snapshot`] captures a cheap immutable handle (one
/// `Arc` clone per relation, zero tuple clones) — together these are
/// the substrate for snapshot-isolated serving (`sj-server`): readers
/// keep their snapshot while writers copy-on-write underneath them.
///
/// ```
/// use sj_storage::{Database, Relation};
/// let mut d = Database::new();
/// d.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 3]]));
/// d.set("S", Relation::from_int_rows(&[&[1, 2]]));
/// assert_eq!(d.size(), 3); // Definition 15: sum of cardinalities
/// ```
#[derive(Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Arc<Relation>>,
    /// Mutation counter; see [`Database::epoch`]. Not part of equality:
    /// two databases with the same contents compare equal regardless of
    /// their mutation histories.
    epoch: u64,
}

/// Contents-only equality — the epoch is a mutation counter, not data.
impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Database {}

impl Database {
    /// The empty database (no relation names at all).
    pub fn new() -> Self {
        Database::default()
    }

    /// Build a database from `(name, relation)` pairs.
    pub fn from_relations<N: Into<String>>(rels: impl IntoIterator<Item = (N, Relation)>) -> Self {
        Database {
            relations: rels
                .into_iter()
                .map(|(n, r)| (n.into(), Arc::new(r)))
                .collect(),
            epoch: 0,
        }
    }

    /// A database over `schema` with every relation empty.
    pub fn empty_over(schema: &Schema) -> Self {
        Database {
            relations: schema
                .iter()
                .map(|(n, a)| (n.to_string(), Arc::new(Relation::empty(a))))
                .collect(),
            epoch: 0,
        }
    }

    /// Assign `rel` to `name`, replacing any previous assignment.
    pub fn set(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), Arc::new(rel));
        self.epoch += 1;
    }

    /// Assign an already-shared relation to `name` without copying it.
    pub fn set_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        self.relations.insert(name.into(), rel);
        self.epoch += 1;
    }

    /// Remove the relation assigned to `name`, returning its handle.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Relation>> {
        let removed = self.relations.remove(name);
        if removed.is_some() {
            self.epoch += 1;
        }
        removed
    }

    /// The database's **mutation epoch**: a monotonic counter bumped by
    /// every mutating operation ([`Database::set`],
    /// [`Database::set_shared`], [`Database::remove`],
    /// [`Database::insert`], and writes through
    /// [`Database::get_mut`]). Two reads of the same epoch are
    /// guaranteed to see identical contents; caches (plans, results,
    /// statistics) use it as a cheap freshness stamp.
    ///
    /// Handing out a [`RelationMut`] guard via [`Database::get_mut`]
    /// does **not** count as a mutation by itself: the guard bumps the
    /// epoch only when it is actually dereferenced mutably. A
    /// read-only pass through `get_mut` therefore leaves the epoch —
    /// and every cache keyed on it — untouched, while contents can
    /// still never change without the epoch advancing.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A cheap immutable [`Snapshot`] of the database: one `Arc` clone
    /// per relation name, **zero tuple clones**. The snapshot keeps
    /// reading the relations as they are now; later writers mutate
    /// copy-on-write (see [`Database::get_mut`]) and never disturb it.
    pub fn snapshot(&self) -> Snapshot {
        let _span = sj_obs::span!(
            "storage.snapshot",
            relations = self.relations.len(),
            epoch = self.epoch
        );
        Snapshot { db: self.clone() }
    }

    /// The relation assigned to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|r| r.as_ref())
    }

    /// A shared, zero-copy handle to the relation assigned to `name`.
    /// This is how the planned evaluator scans leaves: bumping the
    /// reference count instead of deep-cloning the tuple vector.
    pub fn get_shared(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).cloned()
    }

    /// The relation assigned to `name`, as an error-producing lookup.
    pub fn require(&self, name: &str) -> crate::Result<&Relation> {
        self.get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation, as a write-tracking [`RelationMut`]
    /// guard. Copy-on-write via [`Arc::make_mut`]: when the `Arc` is
    /// uniquely held (no evaluator holds a [`Database::get_shared`]
    /// handle) the stored allocation is mutated in place — **no clone**
    /// — and only a relation still shared with a reader is copied
    /// before mutation.
    ///
    /// Both the copy-on-write and the [`Database::epoch`] bump are
    /// deferred to the guard's first *mutable* dereference: merely
    /// obtaining (or reading through) the guard mutates nothing,
    /// advances no epoch, and invalidates no cache.
    pub fn get_mut(&mut self, name: &str) -> Option<RelationMut<'_>> {
        let rel = self.relations.get_mut(name)?;
        Some(RelationMut {
            rel,
            epoch: &mut self.epoch,
            wrote: false,
        })
    }

    /// Insert a tuple into relation `name` (which must exist).
    pub fn insert(&mut self, name: &str, t: Tuple) -> crate::Result<bool> {
        self.get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))?
            .insert(t)
    }

    /// Iterate `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r.as_ref()))
    }

    /// Relation names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|n| n.as_str())
    }

    /// The schema induced by the stored relations.
    pub fn schema(&self) -> Schema {
        Schema::new(self.relations.iter().map(|(n, r)| (n.clone(), r.arity())))
    }

    /// **Definition 15**: the size `|D|` of the database — the sum of the
    /// cardinalities of its relations.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// The active domain: all values occurring in any relation, sorted and
    /// deduplicated. GF formulas are interpreted over this set.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self
            .relations
            .values()
            .flat_map(|r| r.iter().flat_map(|t| t.iter().cloned()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// **Definition 25**: the tuple space `T_D` — the union of all relations
    /// of the database, as a list of `(relation name, tuple)` pairs in
    /// deterministic order. The same tuple may appear under several names;
    /// both views are useful, see [`Database::tuple_space_set`].
    pub fn tuple_space(&self) -> Vec<(&str, &Tuple)> {
        let mut v = Vec::with_capacity(self.size());
        for (n, r) in self.iter() {
            for t in r {
                v.push((n, t));
            }
        }
        v
    }

    /// The tuple space as a deduplicated set of tuples (the paper's
    /// `T_D = ⋃ {D(R) | R ∈ S}` — a set union, so duplicates across
    /// relations collapse). Tuples of different arities coexist.
    pub fn tuple_space_set(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .relations
            .values()
            .flat_map(|r| r.iter().cloned())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// **Definition 9**: the guarded sets of the database — sets of the form
    /// `{d₁, …, dₙ}` for `(d₁, …, dₙ) ∈ D(R)`, each returned as a sorted,
    /// deduplicated vector of values; the list itself is deduplicated.
    pub fn guarded_sets(&self) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = self
            .relations
            .values()
            .flat_map(|r| r.iter().map(Tuple::value_set))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Apply a value renaming to every tuple of every relation, producing a
    /// new database. Used to build isomorphic copies (the re-spacing step in
    /// the Lemma 24 pump construction).
    pub fn map_values(&self, mut f: impl FnMut(&Value) -> Value) -> Database {
        let relations = self
            .relations
            .iter()
            .map(|(n, r)| {
                let tuples = r.iter().map(|t| t.iter().map(&mut f).collect::<Tuple>());
                (
                    n.clone(),
                    Arc::new(
                        Relation::from_tuples(r.arity(), tuples)
                            .expect("map_values preserves arity"),
                    ),
                )
            })
            .collect();
        Database {
            relations,
            epoch: 0,
        }
    }

    /// Number of relation names.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }
}

/// A write-tracking mutable guard over one relation, handed out by
/// [`Database::get_mut`].
///
/// Dereferencing it immutably reads the stored relation in place — no
/// copy, no epoch bump. The first **mutable** dereference is the moment
/// the access becomes a mutation: the guard then bumps
/// [`Database::epoch`] (exactly once per guard) and performs the
/// copy-on-write `Arc::make_mut`, cloning the relation only if a
/// [`Database::get_shared`] handle still aliases it.
///
/// This keeps the epoch honest in both directions: contents can never
/// change without the epoch advancing, and a read-only pass through
/// `get_mut` no longer advances it spuriously (which used to invalidate
/// `sj-server` result-cache entries for free).
pub struct RelationMut<'a> {
    rel: &'a mut Arc<Relation>,
    epoch: &'a mut u64,
    wrote: bool,
}

impl std::ops::Deref for RelationMut<'_> {
    type Target = Relation;

    fn deref(&self) -> &Relation {
        self.rel
    }
}

impl std::ops::DerefMut for RelationMut<'_> {
    fn deref_mut(&mut self) -> &mut Relation {
        if !self.wrote {
            self.wrote = true;
            *self.epoch += 1;
        }
        Arc::make_mut(self.rel)
    }
}

impl fmt::Debug for RelationMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// An immutable snapshot of a [`Database`], captured by
/// [`Database::snapshot`].
///
/// Capture cost is one `Arc` clone per relation name (the tuple vectors
/// themselves are shared, never copied). The snapshot is **stable**: a
/// writer mutating the source database afterwards goes through
/// copy-on-write (`Arc::make_mut`), so this handle keeps reading exactly
/// the state it captured. [`Snapshot::epoch`] records which mutation
/// epoch that was.
///
/// Derefs to [`Database`], so every read-only query API works on it
/// directly; [`Snapshot::into_db`] yields an owned `Database` (e.g. to
/// seed an engine) without any further copying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    db: Database,
}

impl Snapshot {
    /// The source database's [`Database::epoch`] at capture time.
    pub fn epoch(&self) -> u64 {
        self.db.epoch
    }

    /// The captured state as a database reference.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Unwrap into an owned [`Database`] (still zero tuple copies — the
    /// relations stay shared `Arc`s).
    pub fn into_db(self) -> Database {
        self.db
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Database");
        for (n, r) in &self.relations {
            s.field(n, r);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    /// The database of Fig. 2 of the paper: R, S ternary; T binary.
    fn fig2() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_str_rows(&[&["a", "b", "c"], &["d", "e", "f"]]),
        );
        d.set("S", Relation::from_str_rows(&[&["d", "a", "b"]]));
        d.set("T", Relation::from_str_rows(&[&["e", "a"], &["f", "c"]]));
        d
    }

    #[test]
    fn size_is_sum_of_cardinalities() {
        assert_eq!(fig2().size(), 5);
    }

    #[test]
    fn schema_induced() {
        let s = fig2().schema();
        assert_eq!(s.arity_of("R"), Some(3));
        assert_eq!(s.arity_of("T"), Some(2));
    }

    #[test]
    fn active_domain() {
        let dom = fig2().active_domain();
        let expect: Vec<Value> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(Value::str)
            .collect();
        assert_eq!(dom, expect);
    }

    #[test]
    fn tuple_space_has_every_stored_tuple() {
        let d = fig2();
        let ts = d.tuple_space();
        assert_eq!(ts.len(), 5);
        assert!(ts.contains(&("T", &tuple!["e", "a"])));
        let set = d.tuple_space_set();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn guarded_sets_are_value_sets_of_tuples() {
        let d = fig2();
        let gs = d.guarded_sets();
        // {a,b,c}, {d,e,f}, {a,b,d}, {a,e}, {c,f}
        assert_eq!(gs.len(), 5);
        assert!(gs.contains(&vec![Value::str("a"), Value::str("e")]));
        assert!(gs.contains(&vec![Value::str("a"), Value::str("b"), Value::str("c")]));
    }

    #[test]
    fn empty_over_schema() {
        let s = Schema::new([("R", 2), ("S", 1)]);
        let d = Database::empty_over(&s);
        assert_eq!(d.size(), 0);
        assert_eq!(d.get("R").unwrap().arity(), 2);
        assert_eq!(d.get("S").unwrap().arity(), 1);
    }

    #[test]
    fn insert_and_require() {
        let mut d = Database::empty_over(&Schema::new([("R", 2)]));
        assert!(d.insert("R", tuple![1, 2]).unwrap());
        assert!(!d.insert("R", tuple![1, 2]).unwrap());
        assert!(d.insert("Q", tuple![1]).is_err());
        assert!(d.require("R").is_ok());
        assert!(d.require("Q").is_err());
    }

    #[test]
    fn map_values_renames() {
        let d = fig2();
        let e = d.map_values(|v| Value::str(format!("{}'", v.as_str().unwrap())));
        assert!(e.get("S").unwrap().contains(&tuple!["d'", "a'", "b'"]));
        assert_eq!(d.size(), e.size());
    }

    #[test]
    fn shared_handles_are_zero_copy_and_cow() {
        let mut d = fig2();
        let shared = d.get_shared("R").unwrap();
        // The handle aliases the stored relation, not a copy.
        assert!(std::ptr::eq(shared.as_ref(), d.get("R").unwrap()));
        // Mutation while shared copies on write: the handle keeps the old
        // contents, the database sees the new ones.
        d.insert("R", tuple!["x", "y", "z"]).unwrap();
        assert_eq!(shared.len(), 2);
        assert_eq!(d.get("R").unwrap().len(), 3);
        assert!(!std::ptr::eq(shared.as_ref(), d.get("R").unwrap()));
        // set_shared stores without copying.
        let mut e = Database::new();
        e.set_shared("R2", shared.clone());
        assert!(std::ptr::eq(shared.as_ref(), e.get("R2").unwrap()));
    }

    #[test]
    fn get_mut_on_unique_handle_does_not_clone() {
        let mut d = fig2();
        // No outstanding shared handle: the Arc is uniquely held, so
        // Arc::make_mut must hand back the stored allocation itself.
        let before = d.get("R").unwrap() as *const Relation;
        let via_mut = &mut *d.get_mut("R").unwrap() as *mut Relation as *const Relation;
        assert_eq!(before, via_mut, "unique handle must be mutated in place");
        assert_eq!(d.get("R").unwrap() as *const Relation, before);
        // Mutation through get_mut keeps the allocation too.
        d.insert("R", tuple!["x", "y", "z"]).unwrap();
        assert_eq!(d.get("R").unwrap() as *const Relation, before);
        assert_eq!(d.get("R").unwrap().len(), 3);
    }

    #[test]
    fn get_mut_on_shared_handle_copies_once() {
        let mut d = fig2();
        let shared = d.get_shared("R").unwrap();
        // Shared with a reader: a mutable deref must copy on write...
        let cow = &mut *d.get_mut("R").unwrap() as *mut Relation as *const Relation;
        assert!(!std::ptr::eq(cow, shared.as_ref() as *const Relation));
        drop(shared);
        // ...and once the handle is gone, the copy is unique again.
        let again = &mut *d.get_mut("R").unwrap() as *mut Relation as *const Relation;
        assert_eq!(cow, again, "second get_mut must not clone again");
    }

    #[test]
    fn epoch_advances_on_every_mutation_and_only_then() {
        let mut d = fig2();
        let e0 = d.epoch();
        // Reads leave the epoch alone.
        d.get("R");
        d.get_shared("R");
        let _ = d.snapshot();
        assert_eq!(d.epoch(), e0);
        // Every mutating entry point bumps it, monotonically.
        d.set("X", Relation::from_int_rows(&[&[1]]));
        assert_eq!(d.epoch(), e0 + 1);
        d.insert("X", tuple![2]).unwrap();
        assert_eq!(d.epoch(), e0 + 2);
        d.get_mut("X").unwrap();
        assert_eq!(d.epoch(), e0 + 2, "an unused guard is not a mutation");
        d.get_mut("X").unwrap().insert(tuple![3]).unwrap();
        assert_eq!(d.epoch(), e0 + 3, "a write through the guard counts");
        {
            let mut guard = d.get_mut("X").unwrap();
            guard.remove(&tuple![3]);
            guard.insert(tuple![4]).unwrap();
        }
        assert_eq!(d.epoch(), e0 + 4, "one guard bumps at most once");
        let shared = d.get_shared("X").unwrap();
        d.set_shared("Y", shared);
        assert_eq!(d.epoch(), e0 + 5);
        d.remove("Y").unwrap();
        assert_eq!(d.epoch(), e0 + 6);
        assert!(d.remove("no-such").is_none());
        assert_eq!(d.epoch(), e0 + 6, "failed remove is not a mutation");
        // Epoch is not part of equality: same contents, different history.
        let again = fig2();
        let mut mutated = fig2();
        mutated.insert("R", tuple!["x", "y", "z"]).unwrap();
        assert_eq!(fig2(), again);
        assert_ne!(mutated.epoch(), again.epoch());
        assert_ne!(mutated, again, "contents differ");
    }

    #[test]
    fn get_mut_without_write_leaves_epoch_and_sharing_alone() {
        // Regression: get_mut used to bump the epoch on access, so any
        // read-through-get_mut path spuriously invalidated epoch-stamped
        // caches (sj-server result entries). The guard defers the bump
        // to the first mutable dereference.
        let mut d = fig2();
        let shared = d.get_shared("R").unwrap();
        let e0 = d.epoch();
        {
            let guard = d.get_mut("R").unwrap();
            // Read-only uses of the guard: immutable deref only.
            assert_eq!(guard.len(), 2);
            assert_eq!(guard.arity(), 3);
        }
        assert_eq!(d.epoch(), e0, "no write ⇒ no epoch bump");
        // No copy-on-write happened either: the shared handle still
        // aliases the stored relation.
        assert!(std::ptr::eq(shared.as_ref(), d.get("R").unwrap()));
        // A snapshot taken before such an access stays provably fresh.
        let snap = d.snapshot();
        d.get_mut("R").unwrap();
        assert_eq!(snap.epoch(), d.epoch(), "cached results stay valid");
        // An actual write through the guard still does both.
        d.get_mut("R")
            .unwrap()
            .insert(tuple!["x", "y", "z"])
            .unwrap();
        assert_eq!(d.epoch(), e0 + 1);
        assert!(!std::ptr::eq(shared.as_ref(), d.get("R").unwrap()));
        assert_eq!(shared.len(), 2);
        assert_eq!(d.get("R").unwrap().len(), 3);
    }

    #[test]
    fn snapshot_is_stable_across_writes_and_costs_no_tuple_clones() {
        let mut d = fig2();
        let snap = d.snapshot();
        assert_eq!(snap.epoch(), d.epoch());
        // Zero-copy capture: the snapshot's relations are the very same
        // allocations the database stores.
        for (name, rel) in snap.db().iter() {
            assert!(
                std::ptr::eq(rel, d.get(name).unwrap()),
                "snapshot must alias, not copy, {name}"
            );
        }
        // A write after capture goes copy-on-write: the snapshot still
        // reads the old relation, the database sees the new one.
        d.insert("R", tuple!["x", "y", "z"]).unwrap();
        d.set("T", Relation::from_str_rows(&[&["q", "r"]]));
        assert_eq!(snap.get("R").unwrap().len(), 2);
        assert_eq!(d.get("R").unwrap().len(), 3);
        assert_eq!(snap.get("T").unwrap().len(), 2);
        assert_eq!(d.get("T").unwrap().len(), 1);
        assert!(snap.epoch() < d.epoch());
        // Unmutated relations stay shared between snapshot and database.
        assert!(std::ptr::eq(snap.get("S").unwrap(), d.get("S").unwrap()));
        // into_db keeps the aliasing too.
        let owned = snap.clone().into_db();
        assert!(std::ptr::eq(
            owned.get("S").unwrap(),
            snap.get("S").unwrap()
        ));
        // Deref gives the whole read API.
        assert_eq!(snap.size(), 5);
        assert_eq!(snap.schema(), owned.schema());
    }

    #[test]
    fn duplicate_tuples_across_relations_collapse_in_tuple_space_set() {
        let mut d = Database::new();
        d.set("A", Relation::from_int_rows(&[&[1, 2]]));
        d.set("B", Relation::from_int_rows(&[&[1, 2]]));
        assert_eq!(d.size(), 2);
        assert_eq!(d.tuple_space_set().len(), 1);
    }
}
