//! Hash indexes on column subsets of a relation.

use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index mapping the values of a fixed column subset (the *key
/// columns*, 0-based) to the row positions of a [`Relation`] holding those
/// values.
///
/// Used by the hash equi-join and equi-semijoin in `sj-eval` and by the
/// hash-division algorithm in `sj-setjoin`.
///
/// ```
/// use sj_storage::{HashIndex, Relation};
/// let r = Relation::from_int_rows(&[&[1, 10], &[1, 20], &[2, 10]]);
/// let ix = HashIndex::build(&r, &[0]);
/// assert_eq!(ix.probe(&[1.into()]).len(), 2);
/// assert_eq!(ix.probe(&[3.into()]).len(), 0);
/// ```
pub struct HashIndex {
    key_cols: Vec<usize>,
    buckets: FxHashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over `rel` keyed on `key_cols` (0-based positions;
    /// may be empty, in which case all rows share one bucket).
    ///
    /// Panics if a key column is out of range for the relation's arity —
    /// callers (the evaluators) validate column references first.
    pub fn build(rel: &Relation, key_cols: &[usize]) -> Self {
        // No up-front `reserve(rel.len())`: the number of buckets is the
        // number of *distinct keys*, which on low-cardinality keys is far
        // below the row count — pre-sizing to the row count wasted memory
        // proportional to |rel| per index. Amortized growth is cheap.
        let mut buckets: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        let mut scratch: Vec<Value> = Vec::with_capacity(key_cols.len());
        for (pos, t) in rel.iter().enumerate() {
            scratch.clear();
            scratch.extend(key_cols.iter().map(|&c| t[c].clone()));
            // Probe with the reused scratch buffer; only materialize an
            // owned key for the first row of each distinct key.
            match buckets.get_mut(scratch.as_slice()) {
                Some(rows) => rows.push(pos),
                None => {
                    buckets.insert(scratch.clone(), vec![pos]);
                }
            }
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            buckets,
        }
    }

    /// Row positions whose key columns equal `key` (empty slice if none).
    pub fn probe(&self, key: &[Value]) -> &[usize] {
        self.buckets.get(key).map_or(&[], |v| v.as_slice())
    }

    /// True iff some row matches `key`.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.buckets.contains_key(key)
    }

    /// Probe with the key extracted from `probe_tuple` at `probe_cols`
    /// (0-based columns of the *probing* tuple, matched positionally
    /// against this index's key columns).
    pub fn probe_tuple(&self, probe_tuple: &Tuple, probe_cols: &[usize]) -> &[usize] {
        debug_assert_eq!(probe_cols.len(), self.key_cols.len());
        let key: Vec<Value> = probe_cols.iter().map(|&c| probe_tuple[c].clone()).collect();
        self.buckets.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// The key columns this index was built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn build_and_probe() {
        let r = Relation::from_int_rows(&[&[1, 10], &[1, 20], &[2, 10], &[3, 30]]);
        let ix = HashIndex::build(&r, &[0]);
        assert_eq!(ix.probe(&[Value::int(1)]).len(), 2);
        assert_eq!(ix.probe(&[Value::int(2)]).len(), 1);
        assert_eq!(ix.probe(&[Value::int(9)]).len(), 0);
        assert_eq!(ix.distinct_keys(), 3);
        assert!(ix.contains_key(&[Value::int(3)]));
    }

    #[test]
    fn positions_point_into_canonical_order() {
        let r = Relation::from_int_rows(&[&[2, 1], &[1, 1]]);
        let ix = HashIndex::build(&r, &[1]);
        let pos = ix.probe(&[Value::int(1)]);
        assert_eq!(pos.len(), 2);
        // canonical order: (1,1) then (2,1)
        assert_eq!(r.tuples()[pos[0]], tuple![1, 1]);
        assert_eq!(r.tuples()[pos[1]], tuple![2, 1]);
    }

    #[test]
    fn composite_key() {
        let r = Relation::from_int_rows(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 3]]);
        let ix = HashIndex::build(&r, &[0, 1]);
        assert_eq!(ix.probe(&[Value::int(1), Value::int(2)]).len(), 2);
        assert_eq!(ix.probe(&[Value::int(1), Value::int(3)]).len(), 1);
    }

    #[test]
    fn empty_key_buckets_everything_together() {
        let r = Relation::from_int_rows(&[&[1], &[2]]);
        let ix = HashIndex::build(&r, &[]);
        assert_eq!(ix.probe(&[]).len(), 2);
    }

    #[test]
    fn probe_tuple_extracts_columns() {
        let r = Relation::from_int_rows(&[&[5, 6], &[7, 8]]);
        let ix = HashIndex::build(&r, &[0]);
        // probing tuple (9, 5): its column 1 should match key column 0 = 5
        let hits = ix.probe_tuple(&tuple![9, 5], &[1]);
        assert_eq!(hits.len(), 1);
        assert_eq!(r.tuples()[hits[0]], tuple![5, 6]);
    }
}
