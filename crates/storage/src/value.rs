//! Elements of the totally ordered universe `U`.
//!
//! The paper assumes "an infinite, totally ordered universe U of basic data
//! values" (Section 2). Two of the paper's figures use integers (Figs. 3–5)
//! and one uses lexicographically ordered strings (Fig. 6), so [`Value`] is a
//! two-variant sum. The order is total: all integers sort before all strings,
//! integers by numeric order, strings lexicographically. Experiments only
//! ever mix variants deliberately.

use std::borrow::Cow;
use std::fmt;

/// A basic data value: an element of the universe `U`.
///
/// `Value` is totally ordered, hashable, cheap to clone (strings are
/// reference-counted), and has a defined display form used by the ASCII
/// table renderer.
///
/// ```
/// use sj_storage::Value;
/// let a = Value::int(3);
/// let b = Value::str("headache");
/// assert!(a < b); // integers sort before strings
/// assert!(Value::str("flu") < Value::str("lyme"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer value. Used by the numeric figures (Figs. 3–5) and all
    /// synthetic workloads.
    Int(i64),
    /// A string value with lexicographic order. Used by Fig. 1
    /// (symptoms/diseases) and Fig. 6 (beer drinkers).
    Str(std::sync::Arc<str>),
}

impl Value {
    /// Construct an integer value.
    #[inline]
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Construct a string value.
    #[inline]
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(std::sync::Arc::from(s.as_ref()))
    }

    /// Return the integer payload, if this is an [`Value::Int`].
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this is a [`Value::Str`].
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// True iff the value is an integer.
    #[inline]
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// A display form without quotes, used in rendered tables.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_order_is_numeric() {
        assert!(Value::int(-5) < Value::int(0));
        assert!(Value::int(0) < Value::int(7));
        assert!(Value::int(7) == Value::int(7));
    }

    #[test]
    fn string_order_is_lexicographic() {
        assert!(Value::str("alex") < Value::str("bart"));
        assert!(Value::str("pareto bar") < Value::str("qwerty bar"));
        assert!(Value::str("westmalle") < Value::str("westvleteren"));
    }

    #[test]
    fn ints_sort_before_strings() {
        assert!(Value::int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
        assert!(Value::int(0).is_int());
        assert!(!Value::str("0").is_int());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from(3usize), Value::int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }

    #[test]
    fn display_and_render() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("flu").to_string(), "flu");
        assert_eq!(Value::int(42).render(), "42");
        assert_eq!(Value::str("flu").render(), "flu");
        assert_eq!(format!("{:?}", Value::int(1)), "1");
        assert_eq!(format!("{:?}", Value::str("a")), "\"a\"");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::str("a long-ish string value for sharing");
        let w = v.clone();
        assert_eq!(v, w);
    }
}
