//! Cost-model calibration: refit the [`CostModel`] unit constants from
//! measured runtimes — the feedback loop that keeps cost-based
//! algorithm selection honest.
//!
//! Every cost formula in the `sj-setjoin` registry (and the analytic
//! kernel formulas below) is **linear** in the seven unit constants:
//! `cost(m) = Σᵢ mᵢ · φᵢ` for a feature vector `φ` determined by the
//! workload (input sizes, worker counts). That makes refitting a
//! weighted linear least-squares problem:
//!
//! 1. Collect observations — a feature vector per run plus its
//!    measured runtime. Features come either from evaluating a cost
//!    closure at basis models ([`Calibrator::observe_cost`]: set one
//!    constant to 1, the rest to 0 — linearity makes this exact) or
//!    from recorded kernel spans ([`Calibrator::observe_trace`]).
//! 2. Solve the normal equations with weights `1/t²` — minimizing
//!    **relative** error, so microsecond cache-hit-scale runs and
//!    hundred-millisecond scans pull equally on the fit; this is the
//!    property that preserves cost *rankings* across scales.
//! 3. Clamp negative constants to zero and re-solve without them
//!    (costs are physical: no primitive has negative unit cost), then
//!    rescale so `tuple_pass` stays the 1.0 numéraire; constants the
//!    observations never exercised keep their fallback values.

use crate::cost::{CostModel, COST_PARAMS};

/// One calibration data point: the per-constant work counts of a run
/// and its measured runtime.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Work attributable to each unit constant, in
    /// [`CostModel::to_array`] order.
    pub features: [f64; COST_PARAMS],
    /// Measured runtime (any fixed unit; the fit is scale-invariant up
    /// to the final renormalization).
    pub measured: f64,
}

/// Accumulates [`Observation`]s and refits a [`CostModel`] by weighted
/// least squares. See the module docs for the method.
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    observations: Vec<Observation>,
}

impl Calibrator {
    /// An empty calibrator.
    pub fn new() -> Calibrator {
        Calibrator::default()
    }

    /// Number of observations collected.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Record one raw observation. Non-finite or non-positive
    /// measurements are dropped (a zero-time run carries no signal and
    /// would blow up the relative-error weights).
    pub fn observe(&mut self, features: [f64; COST_PARAMS], measured: f64) {
        if measured.is_finite() && measured > 0.0 && features.iter().all(|f| f.is_finite()) {
            self.observations.push(Observation { features, measured });
        }
    }

    /// Record an observation by **evaluating a cost formula at basis
    /// models**: the formulas are linear in the constants, so
    /// `cost(eᵢ)` (constant `i` = 1, the rest 0) *is* the `i`-th
    /// feature, exactly. This is how the shootout experiments feed the
    /// registry's own `division_cost` / `set_join_cost` closures in
    /// without re-deriving any formula.
    pub fn observe_cost(&mut self, cost: impl Fn(&CostModel) -> f64, measured: f64) {
        let mut features = [0.0; COST_PARAMS];
        for (i, f) in features.iter_mut().enumerate() {
            let mut basis = [0.0; COST_PARAMS];
            basis[i] = 1.0;
            *f = cost(&CostModel::from_array(basis));
        }
        self.observe(features, measured);
    }

    /// Refit the constants. Constants with no support in the
    /// observations (zero feature everywhere) keep their `fallback`
    /// values; with no usable observations at all the fallback is
    /// returned unchanged.
    pub fn fit(&self, fallback: &CostModel) -> CostModel {
        if self.observations.is_empty() {
            return fallback.clone();
        }
        let supported: Vec<usize> = (0..COST_PARAMS)
            .filter(|&i| self.observations.iter().any(|o| o.features[i] != 0.0))
            .collect();
        if supported.is_empty() {
            return fallback.clone();
        }
        // Iterative non-negativity: solve, pin negative constants to
        // zero, re-solve over the survivors.
        let mut active = supported.clone();
        let mut solution = [0.0; COST_PARAMS];
        loop {
            let Some(x) = self.solve_weighted(&active) else {
                return fallback.clone();
            };
            let negative: Vec<usize> = active
                .iter()
                .enumerate()
                .filter(|&(k, _)| x[k] < 0.0)
                .map(|(_, &p)| p)
                .collect();
            for (k, &p) in active.iter().enumerate() {
                solution[p] = x[k].max(0.0);
            }
            if negative.is_empty() {
                break;
            }
            active.retain(|p| !negative.contains(p));
            if active.is_empty() {
                return fallback.clone();
            }
        }
        let fb = fallback.to_array();
        let mut out = fb;
        // Keep tuple_pass as the numéraire so calibrated constants stay
        // comparable to the hand-calibrated ones (which sit in
        // tuple-operation units, while the fit is in measured-time
        // units). Pure rescaling of the *fitted* constants — the cost
        // ranking between any two algorithms is unchanged, and
        // constants kept from the fallback are already in tuple units.
        let scale = if supported.contains(&0) && solution[0] > 0.0 && fb[0] > 0.0 {
            fb[0] / solution[0]
        } else {
            1.0
        };
        for &p in &supported {
            out[p] = solution[p] * scale;
        }
        CostModel::from_array(out)
    }

    /// Weighted normal equations over the `active` parameter subset;
    /// `None` if the system is singular.
    fn solve_weighted(&self, active: &[usize]) -> Option<Vec<f64>> {
        let k = active.len();
        let mut a = vec![vec![0.0f64; k]; k];
        let mut b = vec![0.0f64; k];
        for o in &self.observations {
            let w = 1.0 / (o.measured * o.measured);
            for (r, &pr) in active.iter().enumerate() {
                let fr = o.features[pr];
                if fr == 0.0 {
                    continue;
                }
                b[r] += w * fr * o.measured;
                for (c, &pc) in active.iter().enumerate() {
                    a[r][c] += w * fr * o.features[pc];
                }
            }
        }
        // Jacobi equilibration: rescale so every diagonal entry is 1.
        // The raw normal equations mix feature magnitudes spanning many
        // orders (row counts vs fixed setup indicators), which wrecks
        // Gaussian elimination's accuracy; after equilibration the
        // ridge below is relative by construction.
        let d: Vec<f64> = (0..k).map(|i| a[i][i].sqrt()).collect();
        if !d.iter().all(|&x| x > 0.0) {
            return None;
        }
        for (r, row) in a.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v /= d[r] * d[c];
            }
            b[r] /= d[r];
        }
        // Tikhonov nudge keeps near-collinear feature sets (setup vs
        // partition_setup on same-shape workloads) solvable without
        // visibly moving well-conditioned fits.
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let y = gaussian_solve(a, b)?;
        Some(y.iter().zip(&d).map(|(yi, di)| yi / di).collect())
    }

    /// Feed recorded kernel spans from a trace. Each closed
    /// `kernel.join` / `kernel.semijoin` / `kernel.merge_join` /
    /// `kernel.merge_semijoin` / `kernel.multiway` span contributes one
    /// observation with analytic features derived from its recorded
    /// operand sizes, output rows, and worker count; runtimes are the
    /// span durations in microseconds.
    pub fn observe_trace(&mut self, log: &sj_obs::TraceLog) {
        for r in &log.records {
            let Some(duration) = r.duration() else {
                continue;
            };
            let measured = duration.as_nanos() as f64 / 1_000.0;
            let out = r.attr_u64("out_rows").unwrap_or(0) as f64;
            let workers = r.attr_u64("workers").unwrap_or(1).max(1) as f64;
            let l = r.attr_u64("left").unwrap_or(0) as f64;
            let rr = r.attr_u64("right").unwrap_or(0) as f64;
            let rows = r.attr_u64("rows").unwrap_or(0) as f64;
            // Per-constant work counts, in to_array order:
            // [tuple_pass, hash_op, setup, partition_setup, spawn,
            //  sig_test, verify].
            let mut f = [0.0; COST_PARAMS];
            match r.name {
                "kernel.join" | "kernel.semijoin" => {
                    f[2] = 1.0;
                    f[1] = (l + rr) / workers;
                    f[0] = (l + rr + out) / workers;
                }
                "kernel.merge_join" | "kernel.merge_semijoin" => {
                    f[2] = 1.0;
                    f[0] = (l + rr + out) / workers;
                }
                "kernel.multiway" => {
                    f[2] = 1.0;
                    f[1] = rows / workers;
                    f[0] = (rows + out) / workers;
                }
                _ => continue,
            }
            if workers > 1.0 {
                // Parallel runs pay partition bookkeeping, one
                // partitioning pass over both inputs, and the spawns.
                f[3] = 1.0;
                f[4] = workers;
                f[0] += l + rr + rows;
            }
            self.observe(f, measured);
        }
    }
}

/// Solve `a · x = b` by Gaussian elimination with partial pivoting.
fn gaussian_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col].clone();
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for (av, &pv) in a[row].iter_mut().zip(&pivot_row).skip(col) {
                *av -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in row + 1..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data_is_recovered() {
        // Synthesize runtimes from a known model; the fit must recover
        // it (up to the tuple_pass renormalization, which is identity
        // here because the ground truth already has tuple_pass = 1).
        let truth = CostModel {
            tuple_pass: 1.0,
            hash_op: 2.5,
            setup: 150.0,
            partition_setup: 300.0,
            spawn: 2000.0,
            sig_test: 0.4,
            verify: 0.9,
        };
        let mut cal = Calibrator::new();
        // Shapes chosen to decorrelate the constants: varying
        // tuple:hash ratios, varying worker counts, sig:verify ratios.
        let shapes: Vec<[f64; COST_PARAMS]> = vec![
            [1000.0, 300.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [5000.0, 4000.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [20000.0, 5000.0, 1.0, 1.0, 4.0, 0.0, 0.0],
            [80000.0, 60000.0, 1.0, 1.0, 8.0, 0.0, 0.0],
            [3000.0, 0.0, 1.0, 0.0, 0.0, 9000.0, 700.0],
            [12000.0, 0.0, 1.0, 0.0, 0.0, 20000.0, 9000.0],
            [500.0, 250.0, 1.0, 0.0, 0.0, 1000.0, 50.0],
            [60000.0, 100.0, 1.0, 1.0, 2.0, 0.0, 0.0],
            [40000.0, 10000.0, 1.0, 1.0, 16.0, 0.0, 0.0],
            [700.0, 100.0, 1.0, 0.0, 0.0, 500.0, 2000.0],
        ];
        let t = truth.to_array();
        for f in &shapes {
            let measured: f64 = f.iter().zip(&t).map(|(a, b)| a * b).sum();
            cal.observe(*f, measured);
        }
        let fitted = cal.fit(&CostModel::default()).to_array();
        for (i, (&got, &want)) in fitted.iter().zip(&t).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * want.max(1.0),
                "param {i}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn observe_cost_extracts_features_via_basis_models() {
        let mut cal = Calibrator::new();
        // A toy linear cost: 3 tuple passes + 2 hash ops + setup.
        cal.observe_cost(|m| 3.0 * m.tuple_pass + 2.0 * m.hash_op + m.setup, 42.0);
        assert_eq!(cal.len(), 1);
        let o = &cal.observations[0];
        assert_eq!(o.features[0], 3.0);
        assert_eq!(o.features[1], 2.0);
        assert_eq!(o.features[2], 1.0);
        assert_eq!(o.features[3..], [0.0; 4]);
    }

    #[test]
    fn unsupported_constants_keep_fallback_and_junk_is_dropped() {
        let mut cal = Calibrator::new();
        cal.observe([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], f64::NAN);
        cal.observe([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0.0);
        assert!(cal.is_empty());
        // Only tuple_pass is exercised.
        cal.observe([100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 200.0);
        cal.observe([400.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 800.0);
        let fallback = CostModel::default();
        let fitted = cal.fit(&fallback);
        // tuple_pass renormalized to the numéraire; everything else
        // untouched.
        assert_eq!(fitted.tuple_pass, fallback.tuple_pass);
        assert_eq!(fitted.spawn, fallback.spawn);
        assert_eq!(fitted.sig_test, fallback.sig_test);
    }

    #[test]
    fn negative_solutions_are_clamped() {
        let mut cal = Calibrator::new();
        // Data that would push hash_op negative in an unconstrained
        // fit: runtime *decreases* as the hash share grows.
        cal.observe([1000.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0], 1000.0);
        cal.observe([1000.0, 500.0, 1.0, 0.0, 0.0, 0.0, 0.0], 800.0);
        cal.observe([1000.0, 1000.0, 1.0, 0.0, 0.0, 0.0, 0.0], 600.0);
        let fitted = cal.fit(&CostModel::default());
        assert!(fitted.hash_op >= 0.0);
        assert!(fitted.tuple_pass > 0.0);
    }

    #[test]
    fn empty_calibrator_returns_fallback() {
        let fallback = CostModel::default();
        assert_eq!(Calibrator::new().fit(&fallback), fallback);
    }

    #[test]
    fn fit_is_invariant_to_the_measurement_unit() {
        // The same runs expressed in nanoseconds and in milliseconds
        // must calibrate to the same model: 1/t² weighting makes the
        // objective scale-free and the tuple_pass numéraire removes
        // the remaining global factor.
        let shapes: [[f64; COST_PARAMS]; 4] = [
            [1000.0, 300.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [5000.0, 4000.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [60000.0, 100.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [800.0, 700.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        ];
        let truth = [1.0, 2.2, 180.0];
        let measure = |f: &[f64; COST_PARAMS]| f[0] * truth[0] + f[1] * truth[1] + f[2] * truth[2];
        let mut ns = Calibrator::new();
        let mut ms = Calibrator::new();
        for f in &shapes {
            ns.observe(*f, measure(f) * 1e6);
            ms.observe(*f, measure(f) * 1e-3);
        }
        let a = ns.fit(&CostModel::default()).to_array();
        let b = ms.fit(&CostModel::default()).to_array();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}");
        }
        assert!(
            (a[1] - truth[1]).abs() < 1e-3,
            "hash_op recovered: {}",
            a[1]
        );
    }
}
