//! Partition-parallel division and set joins.
//!
//! The serial algorithms of [`crate::division`] and [`crate::setjoin`]
//! each run as one pass over monolithic inputs. This module re-expresses
//! them as **partitioned build/probe**: the build side becomes one
//! shared read-only index, the probe side is split into disjoint
//! partitions that fan out over `std::thread::scope` workers, and the
//! per-partition outputs merge back in canonical order. Partitions are
//! *views* (slices and index lists) — no tuple is ever cloned into a
//! partition, so the partitioned pass costs no more than the serial one
//! even at one worker. Two distinct wins follow:
//!
//! * **Concurrency.** Partitions are independent, so `w` workers give up
//!   to `w`-fold wall-clock scaling on multi-core hosts.
//! * **Pair pruning (set joins).** The containment join partitions the
//!   contained side by an **anchor element** — its globally least
//!   frequent element, the "most selective" trick of the
//!   partition-based set joins of Ramasamy et al. (VLDB 2000) and
//!   Helmer–Moerkotte. A group is only ever compared against the groups
//!   whose sets contain its anchor, shrinking the quadratic candidate
//!   pair space even at one worker.
//! * **Vectorized partition kernels (set joins).** When the element
//!   columns are dense (all-`i64` or dictionary strings), the
//!   per-partition signature tests and verification merges run over the
//!   columnar group ranges of [`crate::columnar`] — the parallelism and
//!   the vectorization compound instead of excluding each other, the
//!   same composition `sj-eval`'s kernel layer gives the planned query
//!   path.
//!
//! Determinism: partition placement is a pure function of the input,
//! workers only produce their own partition's output, and every merge
//! re-establishes the canonical order — so for any worker count the
//! output is byte-identical to the serial algorithms (property-tested in
//! `tests/parallel.rs`).

use crate::columnar::{dense_signature, group_ranges, joint_codes, predicate_on, remap};
use crate::division::{hash_division, DivisionSemantics};
use crate::setjoin::{group_sets, predicate_holds_public, signature, SetPredicate};
use sj_storage::hash::fx_hash_one;
use sj_storage::{ColumnData, Columns, FxHashMap, FxHashSet, Relation, Tuple, Value};

/// Hard ceiling on worker threads, whatever the caller asks for: the
/// operators spawn one OS thread per worker, so an absurd request
/// (`Threads(100_000)`) must degrade to a clamp, not a failed spawn.
pub const MAX_WORKERS: usize = 64;

/// Resolve a configured worker count — the single source of truth for
/// every layer (`sj-eval`'s `Parallelism` delegates here): `0` means
/// "one worker per available CPU" (capped at 8 — beyond that the merge
/// step dominates at this workspace's scales), explicit counts are
/// clamped to `1..=`[`MAX_WORKERS`].
pub fn resolve_workers(configured: usize) -> usize {
    let w = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        configured
    };
    w.clamp(1, MAX_WORKERS)
}

/// Run `f` over `parts` with at most `workers` scoped threads, returning
/// one output per partition **in partition order** (worker scheduling
/// never influences result order). A single worker runs inline — no
/// thread is ever spawned for the degenerate case. Shared by this
/// module's operators and `sj-eval`'s partition-parallel join/semijoin.
pub fn fan_out<T, I, F>(parts: Vec<I>, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    I: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = workers.max(1).min(parts.len().max(1));
    if workers <= 1 {
        return parts.into_iter().map(f).collect();
    }
    // Hand each worker every `workers`-th partition (round-robin), so a
    // skewed partition doesn't serialize the whole batch behind one
    // thread.
    let mut lanes: Vec<Vec<(usize, I)>> = Vec::new();
    lanes.resize_with(workers, Vec::new);
    for (i, p) in parts.into_iter().enumerate() {
        lanes[i % workers].push((i, p));
    }
    let f = &f;
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                s.spawn(move || {
                    lane.into_iter()
                        .map(|(i, p)| (i, f(p)))
                        .collect::<Vec<(usize, T)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("partition worker panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

/// Split canonically sorted tuples into at most `n` contiguous,
/// **group-aligned** ranges: a cut never separates two tuples sharing
/// the first column, so every A-group lives wholly in one partition.
/// Zero-copy — partitions are subslices.
fn group_aligned_chunks(tuples: &[Tuple], n: usize) -> Vec<&[Tuple]> {
    if tuples.is_empty() {
        return Vec::new();
    }
    let n = n.max(1).min(tuples.len());
    let mut chunks = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 1..=n {
        if start >= tuples.len() {
            break;
        }
        let mut end = (tuples.len() * i / n).max(start + 1);
        // Snap forward to the next group boundary.
        while end < tuples.len() && tuples[end][0] == tuples[end - 1][0] {
            end += 1;
        }
        chunks.push(&tuples[start..end]);
        start = end;
    }
    chunks
}

/// Partition-parallel hash-division. The divisor becomes one shared hash
/// index (the build side, built once); the canonically sorted dividend
/// is split into group-aligned contiguous partitions (zero-copy slices)
/// whose probe passes fan out over the workers. Each worker counts, per
/// A-run, the B-values hitting the divisor index — Graefe's
/// hash-division with the bitmap replaced by a per-run counter, which
/// the sorted run makes sufficient (set semantics: no B repeats within a
/// group). Per-partition quotients are already in A-order and A-ranges
/// are disjoint and increasing, so the merge is a concatenation.
pub fn parallel_hash_division(
    r: &Relation,
    s: &Relation,
    sem: DivisionSemantics,
    workers: usize,
) -> Relation {
    assert_eq!(r.arity(), 2, "dividend must be binary R(A,B)");
    assert_eq!(s.arity(), 1, "divisor must be unary S(B)");
    let workers = resolve_workers(workers);
    if workers <= 1 {
        return hash_division(r, s, sem);
    }
    let divisor: FxHashSet<&Value> = s.iter().map(|t| &t[0]).collect();
    let need = divisor.len();
    let chunks = group_aligned_chunks(r.tuples(), workers);
    let outputs = fan_out(chunks, workers, |chunk| {
        let mut out: Vec<Tuple> = Vec::new();
        let mut i = 0usize;
        while i < chunk.len() {
            let a = &chunk[i][0];
            let mut matched = 0usize;
            let mut j = i;
            while j < chunk.len() && &chunk[j][0] == a {
                if divisor.contains(&chunk[j][1]) {
                    matched += 1;
                }
                j += 1;
            }
            let qualifies = match sem {
                DivisionSemantics::Containment => matched == need,
                DivisionSemantics::Equality => matched == need && j - i == need,
            };
            if qualifies {
                out.push(Tuple::new(vec![a.clone()]));
            }
            i = j;
        }
        out
    });
    Relation::from_sorted_tuples(1, outputs.into_iter().flatten().collect())
}

/// How many probe partitions the partition-based set join fans a worker
/// count out to. More partitions smooth out anchor skew across the
/// round-robin worker lanes; 16 per worker keeps the per-partition merge
/// negligible.
const PSJ_FANOUT: usize = 16;

/// Partition-based signature set join (`⊇`, `⊆`, `=`).
///
/// The hash-partitioning that makes equi-joins parallel does not apply
/// directly to set predicates — a qualifying pair shares *set contents*,
/// not a key. The classical fix (partition-based set joins): every
/// group of the **containing** side enters a shared postings index
/// (element → groups holding it, the build side); every group of the
/// **contained** side picks one **anchor element** — its globally least
/// frequent element, i.e. the shortest postings list — and is
/// partitioned by the anchor's hash. If `D ⊆ B` then every element of
/// `D`, in particular its anchor, lies in `B`: probing just the
/// anchor's postings list finds every qualifying pair exactly once,
/// and candidates are signature-filtered before the exact merge test.
/// For `=` both sides partition by a hash of their full value list
/// (equal sets collide by construction) and nothing is replicated.
///
/// `∩ ≠ ∅` has no anchor element (any shared element qualifies) and is
/// already an ordinary equijoin; use
/// [`crate::intersect_join_via_equijoin`].
///
/// Like the serial [`crate::signature_set_join`], the per-partition work
/// is **vectorized when the element columns are dense**: both all-`i64`
/// or both dictionary-encoded strings run on zero-copy columnar group
/// ranges ([`group_ranges`]) with dense signature folds and
/// `i64`/joint-code verification merges ([`joint_codes`]) — no `Value`
/// is cloned or hash-dispatched in the partition loops. Mixed-variant
/// element columns fall back to the row-wise
/// [`parallel_signature_set_join_rowwise`]. Output is byte-identical
/// either way, at every worker count.
///
/// # Panics
///
/// On [`SetPredicate::IntersectsNonempty`] — callers go through
/// [`crate::registry::SetJoinAlgorithm::supports`].
pub fn parallel_signature_set_join(
    r: &Relation,
    s: &Relation,
    pred: SetPredicate,
    workers: usize,
) -> Relation {
    assert!(
        pred != SetPredicate::IntersectsNonempty,
        "partition-based set join: ∩≠∅ has no anchor element; use the equijoin reduction"
    );
    assert_eq!(r.arity(), 2, "set-join operands must be binary");
    assert_eq!(s.arity(), 2, "set-join operands must be binary");
    let workers = resolve_workers(workers);
    let (rc, sc) = (r.columns(), s.columns());
    match (rc.col(1), sc.col(1)) {
        (ColumnData::Int(b), ColumnData::Int(d)) => {
            parallel_columnar_set_join(rc, sc, b, d, pred, workers)
        }
        (ColumnData::Str(b), ColumnData::Str(d)) => {
            let (mb, md) = joint_codes(rc.dict(), sc.dict());
            parallel_columnar_set_join(rc, sc, &remap(b, &mb), &remap(d, &md), pred, workers)
        }
        // Mixed-variant (or cross-variant) element columns: row path.
        _ => parallel_signature_set_join_rowwise(r, s, pred, workers),
    }
}

/// One set-join operand in columnar form: the group ranges of its key
/// column, one dense signature per group, and the (dense) element
/// column the ranges slice into.
struct ColumnarSide<'a, T> {
    ranges: Vec<(u32, u32)>,
    sigs: Vec<u64>,
    elems: &'a [T],
    cols: &'a Columns,
}

impl<'a, T: Copy + Ord + Into<i64>> ColumnarSide<'a, T> {
    fn new(cols: &'a Columns, elems: &'a [T]) -> Self {
        let ranges = group_ranges(cols);
        let sigs = ranges
            .iter()
            .map(|&(a, b)| dense_signature(&elems[a as usize..b as usize]))
            .collect();
        ColumnarSide {
            ranges,
            sigs,
            elems,
            cols,
        }
    }

    /// Group `g`'s element set: a zero-copy, strictly increasing slice
    /// of the element column.
    fn set(&self, g: usize) -> &'a [T] {
        let (a, b) = self.ranges[g];
        &self.elems[a as usize..b as usize]
    }

    /// Group `g`'s key value (only materialized for output tuples).
    fn key(&self, g: usize) -> Value {
        self.cols.value_at(0, self.ranges[g].0 as usize)
    }
}

/// The partition-based set join over dense columnar operands: the same
/// anchor-element partitioning as the row path, with every per-partition
/// signature test and verification merge running on dense `i64`s or
/// joint dictionary codes.
fn parallel_columnar_set_join<T>(
    rc: &Columns,
    sc: &Columns,
    relems: &[T],
    selems: &[T],
    pred: SetPredicate,
    workers: usize,
) -> Relation
where
    T: Copy + Ord + std::hash::Hash + Into<i64> + Sync,
{
    let rside = ColumnarSide::new(rc, relems);
    let sside = ColumnarSide::new(sc, selems);
    let parts = (workers * PSJ_FANOUT).min(rside.ranges.len().max(sside.ranges.len()).max(1));
    // As in the row path: `probe_left` says whether the partitioned
    // probe side is R (⊆) or S (⊇ and =); output column order is fixed.
    let run = |probe: &ColumnarSide<T>,
               build: &ColumnarSide<T>,
               probe_parts: Vec<Vec<u32>>,
               candidates: &(dyn Fn(usize) -> Vec<u32> + Sync),
               probe_left: bool| {
        let outputs = fan_out(probe_parts, workers, |ids| {
            let mut out: Vec<Tuple> = Vec::new();
            for pi in ids {
                let pset = probe.set(pi as usize);
                let psig = probe.sigs[pi as usize];
                for bi in candidates(pi as usize) {
                    let bset = build.set(bi as usize);
                    let bsig = build.sigs[bi as usize];
                    let may = match pred {
                        SetPredicate::Equals => psig == bsig,
                        _ => psig & !bsig == 0,
                    };
                    let holds = may
                        && if probe_left {
                            predicate_on(pred, pset, bset)
                        } else {
                            predicate_on(pred, bset, pset)
                        };
                    if holds {
                        let (a, c) = if probe_left {
                            (probe.key(pi as usize), build.key(bi as usize))
                        } else {
                            (build.key(bi as usize), probe.key(pi as usize))
                        };
                        out.push(Tuple::new(vec![a, c]));
                    }
                }
            }
            out
        });
        Relation::from_tuples(2, outputs.into_iter().flatten()).expect("binary output")
    };
    match pred {
        SetPredicate::Equals => {
            let part_of = |set: &[T]| (fx_hash_one(&set) % parts as u64) as usize;
            let mut s_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for g in 0..sside.ranges.len() {
                s_parts[part_of(sside.set(g))].push(g as u32);
            }
            let mut r_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for g in 0..rside.ranges.len() {
                r_parts[part_of(rside.set(g))].push(g as u32);
            }
            let candidates = |si: usize| r_parts[part_of(sside.set(si))].clone();
            run(&sside, &rside, s_parts, &candidates, false)
        }
        SetPredicate::Contains | SetPredicate::ContainedIn => {
            let (contained, containing, probe_left) = if pred == SetPredicate::Contains {
                (&sside, &rside, false)
            } else {
                (&rside, &sside, true)
            };
            // Postings over the containing side's dense elements; each
            // group's slice is strictly increasing, so no dedup needed.
            let mut postings: FxHashMap<T, Vec<u32>> = FxHashMap::default();
            for g in 0..containing.ranges.len() {
                for &v in containing.set(g) {
                    postings.entry(v).or_default().push(g as u32);
                }
            }
            let freq = |v: T| postings.get(&v).map_or(0, |p| p.len());
            let anchors: Vec<T> = (0..contained.ranges.len())
                .map(|g| {
                    contained
                        .set(g)
                        .iter()
                        .copied()
                        .min_by_key(|&v| (freq(v), v))
                        .expect("groups are nonempty")
                })
                .collect();
            let mut probe_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for (ix, &anchor) in anchors.iter().enumerate() {
                let p = (fx_hash_one(&anchor) % parts as u64) as usize;
                probe_parts[p].push(ix as u32);
            }
            let candidates = |pi: usize| postings.get(&anchors[pi]).cloned().unwrap_or_default();
            run(contained, containing, probe_parts, &candidates, probe_left)
        }
        SetPredicate::IntersectsNonempty => unreachable!("rejected by the dispatcher"),
    }
}

/// The row-wise partition-based set join: groups materialized as
/// `(key, Vec<Value>)`, signatures hashed per `Value` — the fallback
/// for mixed-variant element columns and the differential baseline for
/// the columnar path.
///
/// # Panics
///
/// On [`SetPredicate::IntersectsNonempty`], like the dispatching
/// [`parallel_signature_set_join`].
pub fn parallel_signature_set_join_rowwise(
    r: &Relation,
    s: &Relation,
    pred: SetPredicate,
    workers: usize,
) -> Relation {
    assert!(
        pred != SetPredicate::IntersectsNonempty,
        "partition-based set join: ∩≠∅ has no anchor element; use the equijoin reduction"
    );
    let workers = resolve_workers(workers);
    let rg = group_sets(r);
    let sg = group_sets(s);
    let rsig: Vec<u64> = rg.iter().map(|(_, vs)| signature(vs)).collect();
    let ssig: Vec<u64> = sg.iter().map(|(_, vs)| signature(vs)).collect();
    let parts = (workers * PSJ_FANOUT).min(rg.len().max(sg.len()).max(1));
    // Emit one output relation per partition; `(a, c)` column order is
    // fixed, so `probe_left` distinguishes whether the partitioned probe
    // side is R (⊆: R anchors into S's postings) or S (⊇ and =).
    let run = |probe: &[(Value, Vec<Value>)],
               probe_sigs: &[u64],
               probe_parts: Vec<Vec<u32>>,
               candidates: &(dyn Fn(usize) -> Vec<u32> + Sync),
               build: &[(Value, Vec<Value>)],
               build_sigs: &[u64],
               probe_left: bool| {
        let outputs = fan_out(probe_parts, workers, |ids| {
            let mut out: Vec<Tuple> = Vec::new();
            for pi in ids {
                let (pkey, pset) = &probe[pi as usize];
                let psig = probe_sigs[pi as usize];
                for bi in candidates(pi as usize) {
                    let (bkey, bset) = &build[bi as usize];
                    let bsig = build_sigs[bi as usize];
                    // The probe side is always the *contained* side for
                    // ⊇/⊆; for `=` the signatures must coincide.
                    let may = match pred {
                        SetPredicate::Equals => psig == bsig,
                        _ => psig & !bsig == 0,
                    };
                    let holds = may
                        && if probe_left {
                            predicate_holds_public(pred, pset, bset)
                        } else {
                            predicate_holds_public(pred, bset, pset)
                        };
                    if holds {
                        let (a, c) = if probe_left {
                            (pkey, bkey)
                        } else {
                            (bkey, pkey)
                        };
                        out.push(Tuple::new(vec![a.clone(), c.clone()]));
                    }
                }
            }
            out
        });
        // Each qualifying pair is found exactly once (a probe group
        // lives in one partition and probes one postings list), so the
        // merge is a flatten plus one canonicalization pass.
        Relation::from_tuples(2, outputs.into_iter().flatten()).expect("binary output")
    };
    match pred {
        SetPredicate::Equals => {
            // Partition both sides by a hash of the full (canonical)
            // value list: equal sets collide by construction.
            let part_of = |set: &[Value]| (fx_hash_one(&set) % parts as u64) as usize;
            let mut s_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for (ix, (_, set)) in sg.iter().enumerate() {
                s_parts[part_of(set)].push(ix as u32);
            }
            let mut r_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for (ix, (_, set)) in rg.iter().enumerate() {
                r_parts[part_of(set)].push(ix as u32);
            }
            let candidates = |si: usize| r_parts[part_of(&sg[si].1)].clone();
            run(&sg, &ssig, s_parts, &candidates, &rg, &rsig, false)
        }
        SetPredicate::Contains | SetPredicate::ContainedIn => {
            // Postings over the containing side; the contained side
            // probes with its least-frequent element as anchor.
            let (contained, contained_sigs, containing, containing_sigs, probe_left) =
                if pred == SetPredicate::Contains {
                    (&sg, &ssig, &rg, &rsig, false)
                } else {
                    (&rg, &rsig, &sg, &ssig, true)
                };
            let mut postings: FxHashMap<&Value, Vec<u32>> = FxHashMap::default();
            for (ix, (_, set)) in containing.iter().enumerate() {
                for v in set {
                    postings.entry(v).or_default().push(ix as u32);
                }
            }
            let freq = |v: &Value| postings.get(v).map_or(0, |p| p.len());
            // Anchor per probe group: its least frequent element; ties
            // break on the value itself (sets are sorted), keeping the
            // choice deterministic.
            let anchors: Vec<&Value> = contained
                .iter()
                .map(|(_, set)| {
                    set.iter()
                        .min_by_key(|v| (freq(v), *v))
                        .expect("groups are nonempty")
                })
                .collect();
            let mut probe_parts: Vec<Vec<u32>> = vec![Vec::new(); parts];
            for (ix, anchor) in anchors.iter().enumerate() {
                let p = (fx_hash_one(anchor) % parts as u64) as usize;
                probe_parts[p].push(ix as u32);
            }
            let candidates = |pi: usize| postings.get(anchors[pi]).cloned().unwrap_or_default();
            run(
                contained,
                contained_sigs,
                probe_parts,
                &candidates,
                containing,
                containing_sigs,
                probe_left,
            )
        }
        SetPredicate::IntersectsNonempty => unreachable!("rejected above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::division::{divide, nested_loop_division};
    use crate::setjoin::nested_loop_set_join;
    use sj_storage::Relation;

    fn workload() -> (Relation, Relation) {
        // 40 groups of 1–5 elements over a small domain: plenty of
        // containments, every partition populated.
        let rows: Vec<Vec<i64>> = (0..40)
            .flat_map(|g| (0..=(g % 5)).map(move |v| vec![g, (g * 7 + v * 3) % 11]))
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let r = Relation::from_int_rows(&refs);
        let srows: Vec<Vec<i64>> = (0..30)
            .flat_map(|g| (0..=(g % 3)).map(move |v| vec![100 + g, (g * 5 + v) % 11]))
            .collect();
        let srefs: Vec<&[i64]> = srows.iter().map(|r| r.as_slice()).collect();
        (r, Relation::from_int_rows(&srefs))
    }

    #[test]
    fn parallel_division_matches_serial_at_every_worker_count() {
        let (r, _) = workload();
        let s = Relation::from_int_rows(&[&[0], &[3], &[7]]);
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let want = divide(&r, &s, sem);
            assert_eq!(want, nested_loop_division(&r, &s, sem), "oracle {sem:?}");
            for workers in [1, 2, 3, 4, 8] {
                assert_eq!(
                    parallel_hash_division(&r, &s, sem, workers),
                    want,
                    "{sem:?} at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_set_join_matches_nested_loop_at_every_worker_count() {
        let (r, s) = workload();
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
        ] {
            let want = nested_loop_set_join(&r, &s, pred);
            for workers in [1, 2, 3, 4, 8] {
                assert_eq!(
                    parallel_signature_set_join(&r, &s, pred, workers),
                    want,
                    "{pred:?} at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn columnar_parallel_matches_rowwise_on_every_column_shape() {
        // Int elements (columnar), string elements (joint-code
        // columnar), and mixed-variant elements (row fallback) — the
        // dispatcher must agree with the row-wise implementation and
        // the serial oracle on all of them, at every worker count.
        let (ints_r, ints_s) = workload();
        let strs_r = Relation::from_str_rows(&[
            &["An", "headache"],
            &["An", "sore throat"],
            &["Bob", "headache"],
            &["Bob", "memory loss"],
            &["Bob", "sore throat"],
            &["Carol", "headache"],
        ]);
        let strs_s = Relation::from_str_rows(&[
            &["flu", "headache"],
            &["flu", "sore throat"],
            &["Lyme", "headache"],
            &["Lyme", "memory loss"],
            &["Lyme", "sore throat"],
        ]);
        let mixed_r = Relation::from_tuples(
            2,
            vec![
                sj_storage::tuple![1, 7],
                sj_storage::tuple![1, "x"],
                sj_storage::tuple![2, 7],
                sj_storage::tuple![3, "x"],
            ],
        )
        .unwrap();
        let mixed_s = Relation::from_tuples(
            2,
            vec![
                sj_storage::tuple![10, 7],
                sj_storage::tuple![10, "x"],
                sj_storage::tuple![11, 7],
            ],
        )
        .unwrap();
        for (name, r, s) in [
            ("ints", &ints_r, &ints_s),
            ("strings", &strs_r, &strs_s),
            ("mixed", &mixed_r, &mixed_s),
        ] {
            for pred in [
                SetPredicate::Contains,
                SetPredicate::ContainedIn,
                SetPredicate::Equals,
            ] {
                let want = nested_loop_set_join(r, s, pred);
                for workers in [1, 2, 4, 8] {
                    assert_eq!(
                        parallel_signature_set_join(r, s, pred, workers),
                        want,
                        "{name} {pred:?} at {workers} workers"
                    );
                    assert_eq!(
                        parallel_signature_set_join_rowwise(r, s, pred, workers),
                        want,
                        "rowwise {name} {pred:?} at {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_operators_handle_empty_inputs() {
        let e = Relation::empty(2);
        let s1 = Relation::empty(1);
        assert!(parallel_hash_division(&e, &s1, DivisionSemantics::Containment, 4).is_empty());
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
        ] {
            assert!(parallel_signature_set_join(&e, &e, pred, 4).is_empty());
            let (r, s) = workload();
            assert_eq!(
                parallel_signature_set_join(&r, &e, pred, 4),
                nested_loop_set_join(&r, &e, pred)
            );
            assert_eq!(
                parallel_signature_set_join(&e, &s, pred, 4),
                nested_loop_set_join(&e, &s, pred)
            );
        }
        // Empty divisor: R ÷ ∅ = π_A(R) under containment.
        let r = Relation::from_int_rows(&[&[1, 7], &[2, 8]]);
        assert_eq!(
            parallel_hash_division(&r, &s1, DivisionSemantics::Containment, 4),
            divide(&r, &s1, DivisionSemantics::Containment)
        );
    }

    #[test]
    #[should_panic(expected = "no anchor element")]
    fn parallel_set_join_rejects_intersection() {
        let (r, s) = workload();
        parallel_signature_set_join(&r, &s, SetPredicate::IntersectsNonempty, 2);
    }

    #[test]
    fn group_aligned_chunks_never_split_a_group() {
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i % 9, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let r = Relation::from_int_rows(&refs);
        for n in [1usize, 2, 3, 4, 8, 200] {
            let chunks = group_aligned_chunks(r.tuples(), n);
            assert!(chunks.len() <= n.max(1));
            let total: usize = chunks.iter().map(|c| c.len()).sum();
            assert_eq!(total, r.len(), "chunks cover the input at n = {n}");
            for w in chunks.windows(2) {
                assert_ne!(
                    w[0].last().unwrap()[0],
                    w[1].first().unwrap()[0],
                    "group split across chunks at n = {n}"
                );
            }
        }
        assert!(group_aligned_chunks(&[], 4).is_empty());
    }

    #[test]
    fn fan_out_preserves_partition_order() {
        let parts: Vec<usize> = (0..37).collect();
        for workers in [1, 2, 5, 8] {
            let out = fan_out(parts.clone(), workers, |i| i * 10);
            assert_eq!(out, (0..37).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn resolve_workers_zero_means_host_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
        // Absurd explicit counts clamp instead of exploding into an
        // equal number of OS threads.
        assert_eq!(resolve_workers(100_000), MAX_WORKERS);
    }
}
