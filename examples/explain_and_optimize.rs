//! EXPLAIN ANALYZE + the semijoin-reduction optimizer: watch the paper's
//! theory fix a real plan.
//!
//! ```bash
//! cargo run --example explain_and_optimize
//! ```

use setjoins::prelude::*;
use sj_eval::explain;
use sj_workload::DivisionWorkload;

fn main() {
    let db = DivisionWorkload {
        groups: 200,
        divisor_size: 8,
        containment_fraction: 0.3,
        extra_per_group: 4,
        noise_domain: 256,
        seed: 7,
    }
    .database();
    let schema = db.schema();

    // A join plan a naive planner might emit for "A-values related to
    // some divisor value": join then project the left columns.
    let naive = Expr::rel("R")
        .join(Condition::eq(2, 1), Expr::rel("S"))
        .project([1]);
    println!("== naive plan ==\n{naive}\n");
    println!("{}", explain(&naive, &db).unwrap());

    // The optimizer recognizes the projection only keeps left columns and
    // rewrites the join into a semijoin (the paper's linear core).
    let optimized = sj_algebra::optimize(&naive, &schema).unwrap();
    println!("== optimized plan ==\n{optimized}\n");
    println!("{}", explain(&optimized, &db).unwrap());

    assert_eq!(
        evaluate(&naive, &db).unwrap(),
        evaluate(&optimized, &db).unwrap()
    );

    // Division, though, cannot be fixed this way: Proposition 26 says the
    // quadratic node is unavoidable in plain RA.
    let division = sj_algebra::division::division_double_difference("R", "S");
    println!("== division plan (quadratic by Proposition 26) ==\n{division}\n");
    println!("{}", explain(&division, &db).unwrap());
    let optimized_division = sj_algebra::optimize(&division, &schema).unwrap();
    println!(
        "after optimization the largest intermediate remains (the product \
         feeds a difference, not a projection):"
    );
    println!("{}", explain(&optimized_division, &db).unwrap());
    println!(
        "the only escape is leaving RA: grouping+counting (Section 5) or a \
         direct division operator."
    );
}
