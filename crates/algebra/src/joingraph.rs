//! Join-graph extraction: flattening nested θ-join trees into a
//! (leaves, cross-leaf predicate edges) hypergraph-lite view, plus the
//! inverse — rebuilding an equivalent join tree for any association
//! order.
//!
//! This is the substrate of the cost-based join-order search in
//! `sj-eval`: the planner extracts the graph of a join chain, an
//! enumerator picks an [`OrderTree`], and [`JoinGraph::join_expr`]
//! rebuilds a semantically identical expression (a final projection
//! restores the as-written column order, so results stay byte-identical
//! to the unordered expression). [`JoinGraph::hamiltonian_cycle`]
//! recognizes the cyclic shapes (triangles, 4-cycles, …) for which
//! *every* pairwise order materializes an intermediate above the AGM
//! output bound — the trigger for the worst-case-optimal multiway join
//! operator.
//!
//! Extraction is purely structural: it stops at every non-join node, so
//! a selection, projection or semijoin below a join chain simply
//! becomes an opaque leaf of the graph.

use crate::condition::{Atom, CompOp, Condition};
use crate::expr::Expr;
use sj_storage::Schema;

/// One predicate atom between two distinct leaves of a [`JoinGraph`]:
/// `leaf a, column a_col  op  leaf b, column b_col` (columns 1-based
/// within the leaf's own output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Left endpoint leaf index.
    pub a: usize,
    /// 1-based column within leaf `a`.
    pub a_col: usize,
    /// Comparison operator, oriented `a op b`.
    pub op: CompOp,
    /// Right endpoint leaf index.
    pub b: usize,
    /// 1-based column within leaf `b`.
    pub b_col: usize,
}

/// An association order over the leaves of a [`JoinGraph`]: a binary
/// tree whose leaves are graph leaf indices. The in-order leaf sequence
/// determines the column layout of the rebuilt expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderTree {
    /// A single graph leaf.
    Leaf(usize),
    /// Join the results of two subtrees (left columns first).
    Join(Box<OrderTree>, Box<OrderTree>),
}

impl OrderTree {
    /// Convenience constructor for a join node.
    pub fn join(l: OrderTree, r: OrderTree) -> OrderTree {
        OrderTree::Join(Box::new(l), Box::new(r))
    }

    /// The in-order leaf sequence (column-layout order).
    pub fn leaf_sequence(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            OrderTree::Leaf(i) => out.push(*i),
            OrderTree::Join(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }
}

/// One position of a Hamiltonian cycle found by
/// [`JoinGraph::hamiltonian_cycle`]: at cycle position `p`, leaf
/// `leaf`'s column `var_col` carries the cycle variable `v_p` and
/// column `next_col` carries `v_{p+1 (mod k)}` (columns 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclePos {
    /// Graph leaf index at this cycle position.
    pub leaf: usize,
    /// 1-based column bound to this position's variable.
    pub var_col: usize,
    /// 1-based column bound to the next position's variable.
    pub next_col: usize,
}

/// A flattened join chain: the maximal tree of nested [`Expr::Join`]
/// nodes rooted at one expression, as opaque leaves plus cross-leaf
/// predicate edges.
#[derive(Debug, Clone)]
pub struct JoinGraph<'a> {
    /// The non-join operand subexpressions, in as-written (left-to-right)
    /// order.
    pub leaves: Vec<&'a Expr>,
    /// Output arity of each leaf (parallel to `leaves`).
    pub arities: Vec<usize>,
    /// Every predicate atom of every join node of the chain, re-anchored
    /// to (leaf, column) endpoints.
    pub edges: Vec<JoinEdge>,
    /// The association order the expression was written in.
    pub as_written: OrderTree,
}

impl<'a> JoinGraph<'a> {
    /// Flatten the join chain rooted at `expr`. Returns `None` when
    /// `expr` is not a join or some operand's arity cannot be resolved
    /// against `schema`.
    pub fn extract(expr: &'a Expr, schema: &Schema) -> Option<JoinGraph<'a>> {
        if !matches!(expr, Expr::Join(..)) {
            return None;
        }
        let mut g = JoinGraph {
            leaves: Vec::new(),
            arities: Vec::new(),
            edges: Vec::new(),
            as_written: OrderTree::Leaf(0), // replaced below
        };
        let (tree, _layout) = g.flatten(expr, schema)?;
        g.as_written = tree;
        Some(g)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the graph has no leaves (never true for an extracted
    /// graph — a join has at least two operands).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Recursive flattening worker: returns the subtree's as-written
    /// [`OrderTree`] and its column layout as `(leaf, 1-based col)`
    /// pairs.
    fn flatten(
        &mut self,
        e: &'a Expr,
        schema: &Schema,
    ) -> Option<(OrderTree, Vec<(usize, usize)>)> {
        match e {
            Expr::Join(theta, a, b) => {
                let (ta, la) = self.flatten(a, schema)?;
                let (tb, lb) = self.flatten(b, schema)?;
                for atom in theta.atoms() {
                    let &(al, ac) = la.get(atom.left - 1)?;
                    let &(bl, bc) = lb.get(atom.right - 1)?;
                    self.edges.push(JoinEdge {
                        a: al,
                        a_col: ac,
                        op: atom.op,
                        b: bl,
                        b_col: bc,
                    });
                }
                let layout = la.into_iter().chain(lb).collect();
                Some((OrderTree::join(ta, tb), layout))
            }
            _ => {
                let arity = e.arity(schema).ok()?;
                let idx = self.leaves.len();
                self.leaves.push(e);
                self.arities.push(arity);
                let layout = (1..=arity).map(|c| (idx, c)).collect();
                Some((OrderTree::Leaf(idx), layout))
            }
        }
    }

    /// Rebuild a join expression realizing `tree`, semantically equal to
    /// the extracted chain: every edge becomes a condition atom on the
    /// join node where its two leaves first meet, and a final projection
    /// restores the as-written column order whenever `tree`'s leaf
    /// sequence differs from `0..n`.
    pub fn join_expr(&self, tree: &OrderTree) -> Expr {
        let owned: Vec<Expr> = self.leaves.iter().map(|&l| l.clone()).collect();
        self.join_expr_with(tree, &owned)
    }

    /// [`JoinGraph::join_expr`] with replacement leaf expressions
    /// (parallel to `leaves`) — the hook for rewrites that recurse into
    /// the leaves before reassociating the chain. Each replacement must
    /// keep its leaf's arity.
    pub fn join_expr_with(&self, tree: &OrderTree, leaves: &[Expr]) -> Expr {
        let (expr, layout) = self.build(tree, leaves);
        let seq = tree.leaf_sequence();
        if seq.iter().copied().eq(0..self.len()) {
            return expr;
        }
        // Column `(leaf, col)` of the as-written output sits at position
        // `layout.index_of((leaf, col)) + 1` of the rebuilt output.
        let cols: Vec<usize> = (0..self.len())
            .flat_map(|leaf| (1..=self.arities[leaf]).map(move |c| (leaf, c)))
            .map(|lc| layout.iter().position(|&x| x == lc).expect("total layout") + 1)
            .collect();
        expr.project(cols)
    }

    fn build(&self, tree: &OrderTree, leaves: &[Expr]) -> (Expr, Vec<(usize, usize)>) {
        match tree {
            OrderTree::Leaf(i) => (
                leaves[*i].clone(),
                (1..=self.arities[*i]).map(|c| (*i, c)).collect(),
            ),
            OrderTree::Join(l, r) => {
                let (el, ll) = self.build(l, leaves);
                let (er, lr) = self.build(r, leaves);
                let theta = self.span_condition(&ll, &lr);
                let layout = ll.into_iter().chain(lr).collect();
                (el.join(theta, er), layout)
            }
        }
    }

    /// The join condition between two column layouts: every edge with
    /// one endpoint on each side, re-anchored to layout positions (the
    /// operator flips when the edge's `a` endpoint lands on the right).
    pub fn span_condition(&self, left: &[(usize, usize)], right: &[(usize, usize)]) -> Condition {
        let pos = |layout: &[(usize, usize)], leaf: usize, col: usize| {
            layout.iter().position(|&x| x == (leaf, col)).map(|p| p + 1)
        };
        let mut atoms = Vec::new();
        for e in &self.edges {
            if let (Some(l), Some(r)) = (pos(left, e.a, e.a_col), pos(right, e.b, e.b_col)) {
                atoms.push(Atom {
                    left: l,
                    op: e.op,
                    right: r,
                });
            } else if let (Some(l), Some(r)) = (pos(left, e.b, e.b_col), pos(right, e.a, e.a_col)) {
                atoms.push(Atom {
                    left: l,
                    op: e.op.flipped(),
                    right: r,
                });
            }
        }
        Condition::new(atoms)
    }

    /// Recognize the graph as one simple cycle of binary relations:
    /// `n ≥ 3` binary leaves, all edges equalities, every leaf column an
    /// endpoint of exactly one edge, and the edges forming a single
    /// cycle through all leaves. Returns the cycle positions starting at
    /// leaf 0 (deterministic orientation: leaf 0's lower-indexed edge
    /// partner comes second), or `None` for any other shape — chains,
    /// stars, parallel edges, residual non-equality atoms all fall back
    /// to pairwise plans.
    pub fn hamiltonian_cycle(&self) -> Option<Vec<CyclePos>> {
        let n = self.len();
        if n < 3 || self.edges.len() != n {
            return None;
        }
        if self.arities.iter().any(|&a| a != 2) {
            return None;
        }
        if self.edges.iter().any(|e| e.op != CompOp::Eq) {
            return None;
        }
        // Each (leaf, col) endpoint must appear in exactly one edge.
        let mut endpoint_edges: Vec<[Option<usize>; 2]> = vec![[None, None]; n];
        for (i, e) in self.edges.iter().enumerate() {
            for (leaf, col) in [(e.a, e.a_col), (e.b, e.b_col)] {
                let slot = &mut endpoint_edges[leaf][col - 1];
                if slot.is_some() {
                    return None; // column shared by two edges
                }
                *slot = Some(i);
            }
        }
        if endpoint_edges
            .iter()
            .any(|slots| slots.iter().any(|s| s.is_none()))
        {
            return None;
        }
        // Walk the cycle from leaf 0. Both orientations are valid; pick
        // the edge on column 1 first so the result is deterministic.
        let mut cycle = Vec::with_capacity(n);
        let mut leaf = 0usize;
        let mut var_col = 1usize; // v_0 enters leaf 0 on column 1
        loop {
            let next_col = 3 - var_col; // the other binary column
            cycle.push(CyclePos {
                leaf,
                var_col,
                next_col,
            });
            // Follow the edge attached to (leaf, next_col).
            let edge = &self.edges[endpoint_edges[leaf][next_col - 1].expect("checked total")];
            let (nleaf, ncol) = if (edge.a, edge.a_col) == (leaf, next_col) {
                (edge.b, edge.b_col)
            } else {
                (edge.a, edge.a_col)
            };
            if nleaf == 0 {
                // Closed: a Hamiltonian cycle visits every leaf exactly
                // once and re-enters leaf 0 on the column we started on.
                return (cycle.len() == n && ncol == 1).then_some(cycle);
            }
            if cycle.len() == n || cycle.iter().any(|p| p.leaf == nleaf) {
                return None; // shorter sub-cycle: not Hamiltonian
            }
            leaf = nleaf;
            var_col = ncol;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::Schema;

    fn schema() -> Schema {
        Schema::new([("R", 2), ("S", 2), ("T", 2), ("U", 2), ("W", 3)])
    }

    fn triangle() -> Expr {
        // R(x,y) ⋈ S(y,z) ⋈ T(z,x)
        Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq_pairs([(4, 1), (1, 2)]), Expr::rel("T"))
    }

    #[test]
    fn extracts_leaves_and_edges_of_a_chain() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq(4, 1), Expr::rel("T"));
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.arities, vec![2, 2, 2]);
        assert_eq!(
            g.edges,
            vec![
                JoinEdge {
                    a: 0,
                    a_col: 2,
                    op: CompOp::Eq,
                    b: 1,
                    b_col: 1
                },
                JoinEdge {
                    a: 1,
                    a_col: 2,
                    op: CompOp::Eq,
                    b: 2,
                    b_col: 1
                },
            ]
        );
        assert_eq!(
            g.as_written,
            OrderTree::join(
                OrderTree::join(OrderTree::Leaf(0), OrderTree::Leaf(1)),
                OrderTree::Leaf(2)
            )
        );
    }

    #[test]
    fn non_joins_and_unknown_relations_do_not_extract() {
        assert!(JoinGraph::extract(&Expr::rel("R"), &schema()).is_none());
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("NoSuch"));
        assert!(JoinGraph::extract(&e, &schema()).is_none());
    }

    #[test]
    fn leaves_stop_at_non_join_operators() {
        let e = Expr::rel("R")
            .select_eq(1, 2)
            .join(Condition::eq(2, 1), Expr::rel("S").project([2, 1]));
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        assert_eq!(g.len(), 2);
        assert!(matches!(g.leaves[0], Expr::Select(..)));
        assert!(matches!(g.leaves[1], Expr::Project(..)));
    }

    #[test]
    fn rebuild_as_written_is_the_identity_modulo_condition_form() {
        let e = triangle();
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        let rebuilt = g.join_expr(&g.as_written);
        // Same leaf order ⇒ no projection wrapper; condition content is
        // preserved atom-for-atom on this expression.
        assert_eq!(rebuilt, e);
    }

    #[test]
    fn rebuild_reordered_wraps_a_restoring_projection() {
        let g_expr = triangle();
        let g = JoinGraph::extract(&g_expr, &schema()).unwrap();
        // (T ⋈ R) ⋈ S — leaf sequence [2, 0, 1] needs the projection.
        let tree = OrderTree::join(
            OrderTree::join(OrderTree::Leaf(2), OrderTree::Leaf(0)),
            OrderTree::Leaf(1),
        );
        let rebuilt = g.join_expr(&tree);
        let Expr::Project(cols, inner) = &rebuilt else {
            panic!("expected projection wrapper, got {rebuilt:?}");
        };
        // T's columns sit first in the rebuilt layout (positions 1..=2),
        // so as-written order [R, S, T] maps to [3, 4, 5, 6, 1, 2].
        assert_eq!(cols, &vec![3, 4, 5, 6, 1, 2]);
        assert!(matches!(inner.as_ref(), Expr::Join(..)));
    }

    #[test]
    fn hamiltonian_cycle_detects_triangles_and_rejects_chains() {
        let tri = triangle();
        let g = JoinGraph::extract(&tri, &schema()).unwrap();
        let cycle = g.hamiltonian_cycle().expect("triangle is a 3-cycle");
        assert_eq!(cycle.len(), 3);
        assert_eq!(cycle[0].leaf, 0);
        // Every leaf appears exactly once.
        let mut leaves: Vec<usize> = cycle.iter().map(|p| p.leaf).collect();
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2]);

        let chain = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq(4, 1), Expr::rel("T"));
        let g = JoinGraph::extract(&chain, &schema()).unwrap();
        assert!(g.hamiltonian_cycle().is_none(), "open chain is not cyclic");
    }

    #[test]
    fn hamiltonian_cycle_rejects_non_eq_wide_and_star_shapes() {
        // Triangle with one `<` edge.
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq(4, 1).and(1, CompOp::Lt, 2), Expr::rel("T"));
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        assert!(g.hamiltonian_cycle().is_none());
        // A ternary leaf.
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("W"))
            .join(Condition::eq_pairs([(5, 1), (1, 2)]), Expr::rel("T"));
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        assert!(g.hamiltonian_cycle().is_none());
        // Star: S and T both join column 1 of R — R's column 1 is an
        // endpoint of two edges.
        let e = Expr::rel("R")
            .join(Condition::eq(1, 1), Expr::rel("S"))
            .join(Condition::eq_pairs([(1, 1), (2, 2)]), Expr::rel("T"));
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        assert!(g.hamiltonian_cycle().is_none());
    }

    #[test]
    fn four_cycle_detected() {
        // R(a,b) ⋈ S(b,c) ⋈ T(c,d) ⋈ U(d,a)
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq(4, 1), Expr::rel("T"))
            .join(Condition::eq_pairs([(6, 1), (1, 2)]), Expr::rel("U"));
        let g = JoinGraph::extract(&e, &schema()).unwrap();
        let cycle = g.hamiltonian_cycle().expect("4-cycle");
        assert_eq!(cycle.len(), 4);
    }
}
