//! Free values — Definition 22 of the paper.
//!
//! For `E = E₁ ⋈θ E₂` with constants `C = {c₁ < ⋯ < c_k}` and a tuple
//! `d̄ ∈ E₁(D)`, the free values are
//!
//! ```text
//! F₁ᴱ(d̄) = set(d̄) − { dᵢ | i ∈ constrained₁(E) } − C − ⋃ finite [cᵢ, cᵢ₊₁]
//! ```
//!
//! and symmetrically for the right side. Free values are the ones the
//! Lemma 24 pump construction may replace by fresh domain elements without
//! disturbing the join: they are not pinned by an equality atom, are not
//! constants, and do not sit inside a finite constant interval (where a
//! fresh order-equivalent element might not exist).
//!
//! Over the integer universe every interval `[cᵢ, cᵢ₊₁]` is finite; over
//! strings every nondegenerate interval is infinite. [`interval_contains`]
//! encodes exactly this.

use sj_algebra::Condition;
use sj_storage::{Tuple, Value};

/// Is `v` inside the **finite** interval `[lo, hi]`? Returns `false` when
/// the interval is infinite (non-integer endpoints: between two strings,
/// or between an integer and a string, infinitely many values exist).
pub fn interval_contains(lo: &Value, hi: &Value, v: &Value) -> bool {
    match (lo, hi) {
        (Value::Int(_), Value::Int(_)) => lo <= v && v <= hi,
        _ => false,
    }
}

/// The generic free-value computation shared by both sides: values of the
/// tuple, minus the values at `constrained` positions (1-based), minus the
/// constants, minus every finite interval between consecutive constants.
/// `constants` must be sorted.
fn free_values(tuple: &Tuple, constrained: &[usize], constants: &[Value]) -> Vec<Value> {
    debug_assert!(
        constants.windows(2).all(|w| w[0] <= w[1]),
        "constants sorted"
    );
    let pinned: Vec<&Value> = constrained
        .iter()
        .filter_map(|&i| tuple.get(i - 1))
        .collect();
    tuple
        .value_set()
        .into_iter()
        .filter(|v| !pinned.contains(&v))
        .filter(|v| !constants.contains(v))
        .filter(|v| {
            !constants
                .windows(2)
                .any(|w| interval_contains(&w[0], &w[1], v))
        })
        .collect()
}

/// `F₁ᴱ(d̄)` for `d̄ ∈ E₁(D)` under the join condition `theta`.
pub fn free_values_left(theta: &Condition, tuple: &Tuple, constants: &[Value]) -> Vec<Value> {
    free_values(tuple, &theta.constrained_left(), constants)
}

/// `F₂ᴱ(d̄)` for `d̄ ∈ E₂(D)` under the join condition `theta`.
pub fn free_values_right(theta: &Condition, tuple: &Tuple, constants: &[Value]) -> Vec<Value> {
    free_values(tuple, &theta.constrained_right(), constants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::tuple;

    #[test]
    fn example_23_from_the_paper() {
        // E = σ₂₌'2' R ⋈₃₌₁ σ₃₌'5' S over U = Z, C = {2, 5}.
        let theta = Condition::eq(3, 1);
        let c = [Value::int(2), Value::int(5)];
        // r1 = (1,2,3): remove d₃ = 3 (constrained), 2 ∈ C, and [2,5] ∋ 3
        // (already gone): F = {1}.
        assert_eq!(
            free_values_left(&theta, &tuple![1, 2, 3], &c),
            vec![Value::int(1)]
        );
        // r2 = (4,6,3): remove d₃ = 3; 4 ∈ [2,5]: F = {6}.
        assert_eq!(
            free_values_left(&theta, &tuple![4, 6, 3], &c),
            vec![Value::int(6)]
        );
        // s1 = (3,5,6): remove d₁ = 3; 5 ∈ C: F = {6}.
        assert_eq!(
            free_values_right(&theta, &tuple![3, 5, 6], &c),
            vec![Value::int(6)]
        );
        // s2 = (1,1,1): remove d₁ = 1 — removes the value 1 everywhere: ∅.
        assert!(free_values_right(&theta, &tuple![1, 1, 1], &c).is_empty());
    }

    #[test]
    fn fig4_free_values() {
        // E = (R ⋉₁₌₂ T) ⋈₃₌₁ (S ⋉₂₌₁ T), C = ∅:
        // ā = (1,2,3): constrained₁ = {3} → F₁ = {1, 2};
        // b̄ = (3,4,5): constrained₂ = {1} → F₂ = {4, 5}.
        let theta = Condition::eq(3, 1);
        assert_eq!(
            free_values_left(&theta, &tuple![1, 2, 3], &[]),
            vec![Value::int(1), Value::int(2)]
        );
        assert_eq!(
            free_values_right(&theta, &tuple![3, 4, 5], &[]),
            vec![Value::int(4), Value::int(5)]
        );
    }

    #[test]
    fn constrained_value_removed_even_if_repeated() {
        // (3, 3) with column 2 constrained: the value 3 disappears
        // entirely (Definition 22 subtracts the value, not the position).
        let theta = Condition::eq(2, 1);
        assert!(free_values_left(&theta, &tuple![3, 3], &[]).is_empty());
    }

    #[test]
    fn string_intervals_are_infinite() {
        let theta = Condition::always();
        let c = [Value::str("a"), Value::str("z")];
        // "m" lies between "a" and "z" but the interval is infinite, so
        // "m" stays free.
        assert_eq!(
            free_values_left(&theta, &tuple!["m"], &c),
            vec![Value::str("m")]
        );
        // The constants themselves are removed.
        assert!(free_values_left(&theta, &tuple!["a"], &c).is_empty());
    }

    #[test]
    fn interval_contains_cases() {
        assert!(interval_contains(
            &Value::int(2),
            &Value::int(5),
            &Value::int(3)
        ));
        assert!(interval_contains(
            &Value::int(2),
            &Value::int(5),
            &Value::int(2)
        ));
        assert!(!interval_contains(
            &Value::int(2),
            &Value::int(5),
            &Value::int(6)
        ));
        assert!(!interval_contains(
            &Value::str("a"),
            &Value::str("z"),
            &Value::str("m")
        ));
        assert!(!interval_contains(
            &Value::int(1),
            &Value::str("z"),
            &Value::int(5)
        ));
    }

    #[test]
    fn cartesian_product_frees_everything() {
        let theta = Condition::always();
        assert_eq!(
            free_values_left(&theta, &tuple![1, 2], &[]),
            vec![Value::int(1), Value::int(2)]
        );
    }
}
