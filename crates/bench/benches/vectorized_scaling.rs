//! Vectorized vs row-at-a-time operator micro-benchmarks: each batched
//! operator of `sj_eval::ops_vec` head-to-head against its row-wise
//! `sj_eval::ops` counterpart, plus the columnar vs row-wise signature
//! set join, across scales. The outputs are byte-identical (proved by
//! `tests/vectorized.rs`); this harness measures what the columnar
//! layout buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::{Condition, Selection};
use sj_eval::{ops, ops_vec};
use sj_setjoin::{signature_set_join, signature_set_join_rowwise, SetPredicate};
use sj_storage::{Relation, Tuple};
use sj_workload::{ElementDist, SetJoinWorkload, SetSizeDist, SplitMix64};
use std::time::Duration;

fn random_relation(n: usize, domain: i64, seed: u64) -> Relation {
    let mut rng = SplitMix64::new(seed);
    Relation::from_tuples(
        2,
        (0..n).map(|_| Tuple::from_ints(&[rng.range_i64(1, domain), rng.range_i64(1, domain)])),
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("vectorized_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [4096usize, 32768] {
        let r = random_relation(n, n as i64 / 4, 1);
        let s = random_relation(n, n as i64 / 4, 2);
        // Column caches built up front: the comparison measures the
        // operators, not the one-time column materialization.
        let _ = (r.columns(), s.columns());
        let lt = Selection::Lt(1, 2);
        group.bench_with_input(BenchmarkId::new("select_lt/row", n), &r, |b, r| {
            b.iter(|| ops::select(r, &lt))
        });
        group.bench_with_input(BenchmarkId::new("select_lt/vectorized", n), &r, |b, r| {
            b.iter(|| ops_vec::select(r, &lt))
        });
        let eq = Condition::eq(2, 1);
        group.bench_with_input(
            BenchmarkId::new("hash_join/row", n),
            &(&r, &s),
            |b, (r, s)| b.iter(|| ops::join(r, s, &eq)),
        );
        group.bench_with_input(
            BenchmarkId::new("hash_join/vectorized", n),
            &(&r, &s),
            |b, (r, s)| b.iter(|| ops_vec::join(r, s, &eq)),
        );
        group.bench_with_input(
            BenchmarkId::new("hash_semijoin/row", n),
            &(&r, &s),
            |b, (r, s)| b.iter(|| ops::semijoin(r, s, &eq)),
        );
        group.bench_with_input(
            BenchmarkId::new("hash_semijoin/vectorized", n),
            &(&r, &s),
            |b, (r, s)| b.iter(|| ops_vec::semijoin(r, s, &eq)),
        );
        let none = Condition::always();
        group.bench_with_input(
            BenchmarkId::new("merge_semijoin/row", n),
            &(&r, &s),
            |b, (r, s)| b.iter(|| ops::merge_semijoin(r, s, 1, &none)),
        );
        group.bench_with_input(
            BenchmarkId::new("merge_semijoin/vectorized", n),
            &(&r, &s),
            |b, (r, s)| b.iter(|| ops_vec::merge_semijoin(r, s, 1, &none)),
        );
    }
    for groups in [256usize, 512] {
        // Overlap-heavy sets: most signature filters pass, so the exact
        // verification merges dominate — the case the columnar element
        // slices accelerate.
        let (r, s) = SetJoinWorkload {
            r_groups: groups,
            s_groups: groups,
            set_size: SetSizeDist::Uniform(32, 128),
            domain: 128,
            elements: ElementDist::Zipf(0.8),
            seed: 0x5E7C01,
        }
        .generate();
        let _ = (r.columns(), s.columns());
        group.bench_with_input(
            BenchmarkId::new("signature_setjoin/row", groups),
            &(&r, &s),
            |b, (r, s)| b.iter(|| signature_set_join_rowwise(r, s, SetPredicate::Contains)),
        );
        group.bench_with_input(
            BenchmarkId::new("signature_setjoin/columnar", groups),
            &(&r, &s),
            |b, (r, s)| b.iter(|| signature_set_join(r, s, SetPredicate::Contains)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
