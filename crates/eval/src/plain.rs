//! The plain (un-instrumented) recursive evaluator.

use crate::error::EvalError;
use crate::ops;
use sj_algebra::Expr;
use sj_storage::{Database, Relation};

/// Evaluate `expr` on `db`.
///
/// The expression is validated against the database's induced schema first,
/// so evaluation itself cannot encounter malformed column references.
///
/// ```
/// use sj_algebra::{Condition, Expr};
/// use sj_eval::evaluate;
/// use sj_storage::{Database, Relation};
///
/// let mut db = Database::new();
/// db.set("R", Relation::from_int_rows(&[&[1, 7], &[2, 8]]));
/// db.set("S", Relation::from_int_rows(&[&[7]]));
/// let e = Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S"));
/// let out = evaluate(&e, &db).unwrap();
/// assert_eq!(out, Relation::from_int_rows(&[&[1, 7]]));
/// ```
pub fn evaluate(expr: &Expr, db: &Database) -> Result<Relation, EvalError> {
    expr.arity(&db.schema())?;
    Ok(eval_unchecked(expr, db))
}

/// Recursive evaluation without re-validation. `pub(crate)` so the
/// instrumented evaluator shares the operator implementations.
pub(crate) fn eval_unchecked(expr: &Expr, db: &Database) -> Relation {
    match expr {
        Expr::Rel(name) => db.get(name).expect("validated: relation exists").clone(),
        Expr::Union(a, b) => {
            let ra = eval_unchecked(a, db);
            let rb = eval_unchecked(b, db);
            ra.union(&rb).expect("validated: arities agree")
        }
        Expr::Diff(a, b) => {
            let ra = eval_unchecked(a, db);
            let rb = eval_unchecked(b, db);
            ra.difference(&rb).expect("validated: arities agree")
        }
        Expr::Project(cols, a) => ops::project(&eval_unchecked(a, db), cols),
        Expr::Select(sel, a) => ops::select(&eval_unchecked(a, db), sel),
        Expr::ConstTag(c, a) => ops::const_tag(&eval_unchecked(a, db), c),
        Expr::Join(theta, a, b) => {
            let ra = eval_unchecked(a, db);
            let rb = eval_unchecked(b, db);
            ops::join(&ra, &rb, theta)
        }
        Expr::Semijoin(theta, a, b) => {
            let ra = eval_unchecked(a, db);
            let rb = eval_unchecked(b, db);
            ops::semijoin(&ra, &rb, theta)
        }
        Expr::GroupCount(cols, a) => ops::group_count(&eval_unchecked(a, db), cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::division;
    use sj_storage::Relation;

    /// The beer-drinkers database used in Examples 3 and 7 discussions —
    /// small hand data with one lousy bar.
    fn beer_db() -> Database {
        let mut db = Database::new();
        db.set(
            "Visits",
            Relation::from_str_rows(&[
                &["an", "bad bar"],
                &["bob", "good bar"],
                &["carl", "empty bar"],
            ]),
        );
        db.set(
            "Serves",
            Relation::from_str_rows(&[&["bad bar", "swill"], &["good bar", "nectar"]]),
        );
        db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
        db
    }

    #[test]
    fn example3_lousy_bar_query() {
        // "bad bar" serves only unliked beers → an visits a lousy bar.
        // "empty bar" serves nothing → not lousy (serves no unliked beer,
        // but the expression asks for bars serving only unliked beers via
        // π₁(Serves) − …, so bars serving nothing are not in π₁(Serves)).
        let out = evaluate(&division::example3_lousy_bar_sa(), &beer_db()).unwrap();
        assert_eq!(out, Relation::from_str_rows(&[&["an"]]));
    }

    #[test]
    fn example3_ra_and_sa_agree() {
        let db = beer_db();
        let sa = evaluate(&division::example3_lousy_bar_sa(), &db).unwrap();
        let ra = evaluate(&division::example3_lousy_bar_ra(), &db).unwrap();
        assert_eq!(sa, ra);
    }

    #[test]
    fn cyclic_query() {
        let out = evaluate(&division::cyclic_beer_query_ra(), &beer_db()).unwrap();
        assert_eq!(out, Relation::from_str_rows(&[&["bob"]]));
    }

    #[test]
    fn division_double_difference_small() {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 8]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        let out = evaluate(&division::division_double_difference("R", "S"), &db).unwrap();
        assert_eq!(out, Relation::from_int_rows(&[&[1]]));
    }

    #[test]
    fn division_by_empty_divisor_returns_all_candidates() {
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1, 7], &[2, 8]]));
        db.set("S", Relation::empty(1));
        let out = evaluate(&division::division_double_difference("R", "S"), &db).unwrap();
        // Every A trivially contains the empty set.
        assert_eq!(out, Relation::from_int_rows(&[&[1], &[2]]));
    }

    #[test]
    fn counting_division_agrees_with_double_difference() {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[1, 9], &[2, 7], &[2, 8], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        let dd = evaluate(&division::division_double_difference("R", "S"), &db).unwrap();
        let cnt = evaluate(&division::division_counting("R", "S"), &db).unwrap();
        assert_eq!(dd, cnt);
        assert_eq!(dd, Relation::from_int_rows(&[&[1], &[2]]));
    }

    #[test]
    fn equality_division_variants_agree() {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[
                &[1, 7],
                &[1, 8],
                &[1, 9], // superset of S
                &[2, 7],
                &[2, 8], // exactly S
                &[3, 7], // proper subset
            ]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        let eq_ra = evaluate(&division::division_equality("R", "S"), &db).unwrap();
        let eq_cnt = evaluate(&division::division_equality_counting("R", "S"), &db).unwrap();
        assert_eq!(eq_ra, Relation::from_int_rows(&[&[2]]));
        assert_eq!(eq_ra, eq_cnt);
    }

    #[test]
    fn validation_errors_surface() {
        let db = Database::new();
        assert!(matches!(
            evaluate(&Expr::rel("R"), &db),
            Err(EvalError::Algebra(_))
        ));
        let mut db2 = Database::new();
        db2.set("R", Relation::empty(1));
        assert!(evaluate(&Expr::rel("R").project([2]), &db2).is_err());
    }

    #[test]
    fn union_and_tag_evaluate() {
        let mut db = Database::new();
        db.set("A", Relation::from_int_rows(&[&[1]]));
        db.set("B", Relation::from_int_rows(&[&[2]]));
        let e = Expr::rel("A").union(Expr::rel("B")).tag(9);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out, Relation::from_int_rows(&[&[1, 9], &[2, 9]]));
    }

    #[test]
    fn select_const_sugar_equals_desugared() {
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1, 5], &[2, 6]]));
        let e = Expr::rel("R").select_const(2, 5);
        let d = e.desugared(&db.schema()).unwrap();
        assert_eq!(evaluate(&e, &db).unwrap(), evaluate(&d, &db).unwrap());
        assert_eq!(
            evaluate(&e, &db).unwrap(),
            Relation::from_int_rows(&[&[1, 5]])
        );
    }

    #[test]
    fn semijoin_lowering_preserves_semantics() {
        let db = beer_db();
        let sa = division::example3_lousy_bar_sa();
        let lowered = sj_algebra::semijoins_to_joins_checked(&sa, &db.schema()).unwrap();
        assert_eq!(
            evaluate(&sa, &db).unwrap(),
            evaluate(&lowered, &db).unwrap()
        );
    }

    #[test]
    fn set_containment_join_plan_on_fig1_shape() {
        // Minimal version of Fig. 1: the full figure is tested in the
        // workload crate; here a 2-person variant.
        let mut db = Database::new();
        db.set(
            "R", // person-symptom
            Relation::from_str_rows(&[&["an", "headache"], &["an", "fever"], &["bob", "headache"]]),
        );
        db.set(
            "S", // disease-symptom
            Relation::from_str_rows(&[&["flu", "headache"], &["flu", "fever"]]),
        );
        let out = evaluate(&division::set_containment_join_plan("R", "S"), &db).unwrap();
        assert_eq!(out, Relation::from_str_rows(&[&["an", "flu"]]));
    }
}
