//! The physical planner: logical `Expr` trees lowered to a memoized
//! operator DAG.
//!
//! The paper's dichotomy (Theorem 17) is about intermediate *sizes*, but a
//! tree-walking evaluator also wastes *constants* wherever the same
//! subexpression occurs more than once: `division_double_difference`
//! mentions `R` three times and `π₁(R)` twice, and the naive evaluator
//! re-evaluates (and deep-clones) every occurrence. This module removes
//! that waste in three steps:
//!
//! 1. **Hash-consing.** Lowering walks the expression bottom-up and keys
//!    each node by [`Expr::structural_hash`] (confirmed with `==`), so
//!    structurally identical subtrees collapse into one [`PlanNode`]. The
//!    result is a DAG in which every distinct subexpression is evaluated
//!    exactly once per query.
//! 2. **Shared leaves.** Scans take an [`Arc`] handle from
//!    [`Database::get_shared`] instead of cloning the relation; all
//!    intermediate results flow through the DAG as `Arc<Relation>`, so a
//!    node consumed by several parents is never copied.
//! 3. **Physical operator choice.** Relations are stored in canonical
//!    (lexicographic) order, so when a join/semijoin's equality atoms pair
//!    an aligned column prefix (`1=1, …, k=k` — see
//!    [`ops::merge_prefix_len`]) both operands are *already sorted by the
//!    key* and the planner picks a sort-free merge join/semijoin; other
//!    equality conditions get the hash variants, and equality-free
//!    conditions fall back to filtered nested loops. Non-equality atoms
//!    ride along as residual filters, reusing the `ops` machinery.
//!
//! Entry points: [`evaluate_planned`] (drop-in replacement for
//! [`crate::evaluate`]), [`evaluate_planned_instrumented`] (returns a
//! [`PlannedReport`] with per-node operator choice, cardinality and
//! timing), and [`PhysicalPlan::explain`] (an `EXPLAIN`-style rendering of
//! the DAG with sharing annotations).

use crate::error::EvalError;
use crate::exec::Execution;
use crate::instrumented::NodeStat;
use crate::joinorder::{self, JoinOrder};
use crate::kernel;
use crate::ops;
use crate::ops::PartitionStat;
use crate::ops_vec;
use crate::par::Parallelism;
use sj_algebra::{AlgebraError, Condition, Expr, JoinGraph, Selection};
use sj_stats::{CardEst, CostModel, Estimator, StatsSource};
use sj_storage::{Database, FxHashMap, Relation, Schema, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Index of a node within a [`PhysicalPlan`] (topological: children come
/// before parents, the root is the last node).
pub type NodeId = usize;

/// Combined input size (tuples, both children) below which a binary
/// operator node runs serially even under `Parallelism::Threads` —
/// mirrors the registry's input-size gates for the direct set
/// operators.
const PAR_MIN_NODE_INPUT: usize = 4096;

/// Estimation-accuracy budget for instrumented reports: a node whose
/// q-error ([`PlannedReport::q_error`]) exceeds this factor is flagged
/// in [`PlannedReport::render`] output. The value is deliberately loose
/// — the estimator assumes independence and uniformity, so factor-of-two
/// errors are routine and harmless; an order-of-magnitude miss is what
/// changes operator choices (hash-build demotion, parallel gating) and
/// deserves a visible marker.
pub const Q_ERROR_BUDGET: f64 = 16.0;

/// The physical operator executing one DAG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysOp {
    /// Leaf scan: a shared handle to a stored relation (no copy).
    Scan(String),
    /// Set union as a linear merge of the two canonical runs.
    MergeUnion,
    /// Set difference as a linear merge.
    MergeDiff,
    /// Projection (1-based columns), with re-canonicalization.
    Project(Vec<usize>),
    /// Selection filter.
    Filter(Selection),
    /// Constant tagging.
    Tag(Value),
    /// Hash equi-join (+ residual filter) — build right, probe left.
    HashJoin(Condition),
    /// Sort-free merge join: the equality atoms pair the first `prefix`
    /// columns of both operands in order, which both canonical inputs are
    /// already sorted by.
    MergeJoin { theta: Condition, prefix: usize },
    /// Filtered nested-loop join (no equality atom to index on).
    NestedLoopJoin(Condition),
    /// Hash equi-semijoin (+ residual filter).
    HashSemijoin(Condition),
    /// Sort-free merge semijoin on an aligned key prefix.
    MergeSemijoin { theta: Condition, prefix: usize },
    /// Nested-loop semijoin (no equality atom).
    NestedLoopSemijoin(Condition),
    /// Hash grouping with a count aggregate.
    HashGroupCount(Vec<usize>),
    /// Worst-case-optimal multiway join of a cyclic join chain
    /// ([`kernel::multiway_join`]): the children are the chain's leaves
    /// in written order, and the spec names the Hamiltonian variable
    /// cycle over them. Chosen under [`JoinOrder::Dp`] when every
    /// pairwise order's estimated intermediate exceeds the cycle's AGM
    /// output bound ([`joinorder::multiway_plan`]).
    MultiwayJoin(kernel::MultiwaySpec),
}

impl PhysOp {
    /// Short operator name for reports and `explain` output.
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::Scan(_) => "scan",
            PhysOp::MergeUnion => "merge-union",
            PhysOp::MergeDiff => "merge-diff",
            PhysOp::Project(_) => "project",
            PhysOp::Filter(_) => "filter",
            PhysOp::Tag(_) => "tag",
            PhysOp::HashJoin(_) => "hash-join",
            PhysOp::MergeJoin { .. } => "merge-join",
            PhysOp::NestedLoopJoin(_) => "nested-loop-join",
            PhysOp::HashSemijoin(_) => "hash-semijoin",
            PhysOp::MergeSemijoin { .. } => "merge-semijoin",
            PhysOp::NestedLoopSemijoin(_) => "nested-loop-semijoin",
            PhysOp::HashGroupCount(_) => "hash-group",
            PhysOp::MultiwayJoin(_) => "multiway-join",
        }
    }
}

/// One node of the physical DAG.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The physical operator.
    pub op: PhysOp,
    /// Child node ids (left to right).
    pub children: Vec<NodeId>,
    /// Logical label of the subexpression this node computes
    /// ([`Expr::label`]).
    pub label: String,
    /// Output arity.
    pub arity: usize,
    /// How many times the subexpression occurs in the original tree —
    /// `> 1` means the naive evaluator would have re-evaluated it.
    pub occurrences: usize,
    /// Estimated output cardinality, present when the plan was built
    /// with statistics ([`PhysicalPlan::of_costed`]). Purely advisory:
    /// it drives operator choice and appears in `explain` output, never
    /// in results.
    pub est_rows: Option<f64>,
}

/// A lowered, hash-consed physical plan.
///
/// Nodes are stored in topological order (children before parents), so
/// execution is a single forward pass with every node evaluated exactly
/// once.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    nodes: Vec<PlanNode>,
    root: NodeId,
    expr_nodes: usize,
    /// Present when the plan was built with statistics: gates
    /// partition-parallelism per node from actual operand sizes at
    /// execution time (replacing the fixed [`PAR_MIN_NODE_INPUT`]).
    cost_model: Option<CostModel>,
}

impl PhysicalPlan {
    /// Validate `expr` against `schema` and lower it to a physical DAG.
    pub fn of(expr: &Expr, schema: &Schema) -> Result<PhysicalPlan, EvalError> {
        Self::build(expr, schema, None, JoinOrder::AsWritten)
    }

    /// [`PhysicalPlan::of`] with statistics: every node carries an
    /// estimated output cardinality ([`PlanNode::est_rows`], shown by
    /// [`PhysicalPlan::explain`] and compared against actuals in
    /// instrumented reports), binary operator choice consults the
    /// estimates (a join whose operands are provably tiny skips the
    /// hash build), and partition-parallel execution is gated by the
    /// [`CostModel`] instead of a fixed input-size threshold. Results
    /// are identical to the stats-free plan — only constants change.
    pub fn of_costed(
        expr: &Expr,
        schema: &Schema,
        source: &dyn StatsSource,
        model: &CostModel,
    ) -> Result<PhysicalPlan, EvalError> {
        Self::build(expr, schema, Some((source, model)), JoinOrder::default())
    }

    /// [`PhysicalPlan::of_costed`] with an explicit join-order mode:
    /// before lowering, every join chain is reassociated into the
    /// cheapest order the mode's search finds
    /// ([`joinorder::reorder`] — results stay byte-identical; a
    /// restoring projection keeps the written column order), and under
    /// [`JoinOrder::Dp`] cyclic chains whose every pairwise order is
    /// estimated past the AGM bound collapse into one
    /// [`PhysOp::MultiwayJoin`].
    pub fn of_costed_with_order(
        expr: &Expr,
        schema: &Schema,
        source: &dyn StatsSource,
        model: &CostModel,
        order: JoinOrder,
    ) -> Result<PhysicalPlan, EvalError> {
        Self::build(expr, schema, Some((source, model)), order)
    }

    fn build(
        expr: &Expr,
        schema: &Schema,
        stats: Option<(&dyn StatsSource, &CostModel)>,
        order: JoinOrder,
    ) -> Result<PhysicalPlan, EvalError> {
        expr.arity(schema)?;
        // Join-order search happens on the logical tree, before
        // lowering, so hash-consing and operator choice see the chosen
        // shape. Chains ear-marked for the multiway collapse are left
        // as written — `lower` recognizes and collapses them whole.
        let reordered = match stats {
            Some((src, _)) => joinorder::reorder(expr, schema, src, order),
            None => None,
        };
        let planned_expr: &Expr = reordered.as_ref().unwrap_or(expr);
        let mut planner = Planner {
            schema,
            stats,
            order,
            nodes: Vec::new(),
            memo: FxHashMap::default(),
        };
        let root = planner.lower(planned_expr);
        // Occurrence counts need a full tree walk: lowering stops at the
        // first memo hit, so descendants of a shared subtree would be
        // undercounted (R under a second π₁(R) occurrence, say).
        planner.count_occurrences(planned_expr);
        planner.annotate_estimates();
        Ok(PhysicalPlan {
            nodes: planner.nodes,
            root,
            expr_nodes: planned_expr.node_count(),
            cost_model: stats.map(|(_, m)| m.clone()),
        })
    }

    /// The DAG nodes in topological order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The root node id (always the last node).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of DAG nodes — distinct subexpressions of the query.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes of the *logical* expression tree; the difference
    /// to [`PhysicalPlan::node_count`] is work the memoization saves.
    pub fn expr_node_count(&self) -> usize {
        self.expr_nodes
    }

    /// Nodes whose subexpression occurs more than once in the tree.
    pub fn shared_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.occurrences > 1).count()
    }

    /// Execute the plan serially. The database must conform to the schema
    /// the plan was built against; scans re-check name and arity (the
    /// cheap part) and error out on mismatch, everything else was
    /// validated at plan time.
    pub fn execute(&self, db: &Database) -> Result<Relation, EvalError> {
        self.execute_with(db, Parallelism::Serial)
    }

    /// Execute the plan under the given [`Parallelism`]. With more than
    /// one worker, independent DAG nodes (same dependency depth) run on
    /// concurrent scoped threads and join/semijoin nodes additionally run
    /// partition-parallel ([`kernel::join`] and friends). Output is
    /// byte-identical to [`PhysicalPlan::execute`] for every worker
    /// count. Serial per-node work uses the process-default
    /// [`Execution`] mode ([`Execution::from_env`]); use
    /// [`PhysicalPlan::execute_with_execution`] to pin it.
    pub fn execute_with(&self, db: &Database, par: Parallelism) -> Result<Relation, EvalError> {
        self.execute_with_execution(db, par, Execution::from_env())
    }

    /// Execute under explicit [`Parallelism`] **and** [`Execution`]
    /// knobs. Output is byte-identical across all four combinations —
    /// the knobs choose implementations, never semantics.
    pub fn execute_with_execution(
        &self,
        db: &Database,
        par: Parallelism,
        exec: Execution,
    ) -> Result<Relation, EvalError> {
        let root = self.run(db, par.workers(), exec, |_, _, _, _, _| {})?;
        Ok(Arc::try_unwrap(root).unwrap_or_else(|arc| arc.as_ref().clone()))
    }

    /// Execute with per-node instrumentation (serial).
    pub fn execute_instrumented(&self, db: &Database) -> Result<PlannedReport, EvalError> {
        self.execute_instrumented_with(db, Parallelism::Serial)
    }

    /// Execute under the given [`Parallelism`] with per-node
    /// instrumentation; parallel operator nodes additionally report their
    /// per-partition build/probe timings ([`NodeStat::partitions`]), and
    /// the report records the worker count.
    pub fn execute_instrumented_with(
        &self,
        db: &Database,
        par: Parallelism,
    ) -> Result<PlannedReport, EvalError> {
        self.execute_instrumented_with_execution(db, par, Execution::from_env())
    }

    /// [`PhysicalPlan::execute_instrumented_with`] under an explicit
    /// [`Execution`] mode.
    pub fn execute_instrumented_with_execution(
        &self,
        db: &Database,
        par: Parallelism,
        exec: Execution,
    ) -> Result<PlannedReport, EvalError> {
        let workers = par.workers();
        let mut slots: Vec<Option<NodeStat>> = vec![None; self.nodes.len()];
        let root = self.run(
            db,
            workers,
            exec,
            |id, node: &PlanNode, rel: &Relation, elapsed, partitions: &[PartitionStat]| {
                slots[id] = Some(NodeStat {
                    id,
                    label: node.label.clone(),
                    operator: node.op.name().to_string(),
                    arity: rel.arity(),
                    cardinality: rel.len(),
                    elapsed,
                    partitions: partitions.to_vec(),
                });
            },
        )?;
        Ok(PlannedReport {
            result: Arc::try_unwrap(root).unwrap_or_else(|arc| arc.as_ref().clone()),
            occurrences: self.nodes.iter().map(|n| n.occurrences).collect(),
            estimates: self.nodes.iter().map(|n| n.est_rows).collect(),
            nodes: slots
                .into_iter()
                .map(|n| n.expect("every node observed"))
                .collect(),
            db_size: db.size(),
            expr_nodes: self.expr_nodes,
            workers,
        })
    }

    /// Execute one node against its already-computed children. Binary
    /// join/semijoin operators go partition-parallel when `workers > 1`
    /// **and** the operand sizes justify it: plans built with
    /// statistics ask the [`CostModel`] (spawn + partitioning overhead
    /// vs the work the extra workers take over), stats-free plans use
    /// the fixed [`PAR_MIN_NODE_INPUT`] cutoff — below either bar,
    /// partitioning costs more than the operator itself, as the
    /// `planned` rows of `results/parallel_scaling.csv` document. The
    /// cheap linear operators (scan, merge set ops, projection, filter,
    /// tag, grouping) always run serially — their cost is one pass over
    /// input the partitioning itself would have to make.
    ///
    /// Join/semijoin work routes through the unified kernel layer
    /// ([`crate::kernel`]), which dispatches on **both** knobs at once:
    /// serial nodes run the row or chunked-columnar serial operator,
    /// partitioned nodes run the row index-view or vectorized
    /// gather-view kernel per partition. `Threads(n)` therefore
    /// compounds with [`Execution::Vectorized`] instead of silently
    /// degrading parallel nodes to row execution, and every
    /// `(Execution, Parallelism)` quadrant stays byte-identical.
    fn exec_op(
        &self,
        node: &PlanNode,
        kids: &[&Relation],
        db: &Database,
        workers: usize,
        exec: Execution,
    ) -> Result<(Arc<Relation>, Vec<PartitionStat>), EvalError> {
        let serial = |r: Relation| (Arc::new(r), Vec::new());
        let workers = if kids.len() == 2 {
            let (l, r) = (kids[0].len(), kids[1].len());
            let worthwhile = match &self.cost_model {
                Some(m) => m.parallel_node_worthwhile(l, r, workers),
                None => l + r >= PAR_MIN_NODE_INPUT,
            };
            if worthwhile {
                workers
            } else {
                1
            }
        } else {
            workers
        };
        Ok(match &node.op {
            PhysOp::Scan(name) => {
                let r = db.get_shared(name).ok_or_else(|| {
                    EvalError::Algebra(AlgebraError::UnknownRelation(name.clone()))
                })?;
                if r.arity() != node.arity {
                    return Err(EvalError::Algebra(AlgebraError::ArityMismatch {
                        left: node.arity,
                        right: r.arity(),
                    }));
                }
                (r, Vec::new())
            }
            PhysOp::MergeUnion => serial(kids[0].union(kids[1]).expect("validated: arities agree")),
            PhysOp::MergeDiff => serial(
                kids[0]
                    .difference(kids[1])
                    .expect("validated: arities agree"),
            ),
            PhysOp::Project(cols) => serial(ops::project(kids[0], cols)),
            PhysOp::Filter(sel) => serial(if exec.is_vectorized() {
                ops_vec::select(kids[0], sel)
            } else {
                ops::select(kids[0], sel)
            }),
            PhysOp::Tag(c) => serial(ops::const_tag(kids[0], c)),
            PhysOp::HashJoin(theta) | PhysOp::NestedLoopJoin(theta) => {
                let (rel, parts) = kernel::join(kids[0], kids[1], theta, exec, workers);
                (Arc::new(rel), parts)
            }
            PhysOp::MergeJoin { theta, prefix } => {
                let (_, residual) = ops::split_condition(theta);
                let (rel, parts) =
                    kernel::merge_join(kids[0], kids[1], *prefix, &residual, exec, workers);
                (Arc::new(rel), parts)
            }
            PhysOp::HashSemijoin(theta) | PhysOp::NestedLoopSemijoin(theta) => {
                let (rel, parts) = kernel::semijoin(kids[0], kids[1], theta, exec, workers);
                (Arc::new(rel), parts)
            }
            PhysOp::MergeSemijoin { theta, prefix } => {
                let (_, residual) = ops::split_condition(theta);
                let (rel, parts) =
                    kernel::merge_semijoin(kids[0], kids[1], *prefix, &residual, exec, workers);
                (Arc::new(rel), parts)
            }
            PhysOp::HashGroupCount(cols) => serial(ops::group_count(kids[0], cols)),
            PhysOp::MultiwayJoin(spec) => {
                // The n-ary node bypasses the binary gate above; gate
                // it here on the total input size (there is no probe
                // side — the second operand count is 0).
                let total: usize = kids.iter().map(|k| k.len()).sum();
                let worthwhile = match &self.cost_model {
                    Some(m) => m.parallel_node_worthwhile(total, 0, workers),
                    None => total >= PAR_MIN_NODE_INPUT,
                };
                let w = if worthwhile { workers } else { 1 };
                let (rel, parts) = kernel::multiway_join(kids, spec, exec, w);
                (Arc::new(rel), parts)
            }
        })
    }

    /// One pass over the DAG; `observe` sees every node's output. With
    /// `workers > 1` the pass proceeds level by level (a node's level is
    /// its dependency depth): nodes on the same level have no path
    /// between them, so each level fans out over scoped threads.
    ///
    /// Each intermediate is dropped as soon as its last consumer has run,
    /// so peak memory tracks the live frontier of the DAG rather than the
    /// sum of all intermediates.
    fn run(
        &self,
        db: &Database,
        workers: usize,
        exec: Execution,
        mut observe: impl FnMut(NodeId, &PlanNode, &Relation, Duration, &[PartitionStat]),
    ) -> Result<Arc<Relation>, EvalError> {
        let mut pending_consumers = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &c in &node.children {
                pending_consumers[c] += 1;
            }
        }
        pending_consumers[self.root] += 1; // the caller consumes the root
        let mut results: Vec<Option<Arc<Relation>>> = vec![None; self.nodes.len()];
        let evict =
            |id: NodeId, results: &mut Vec<Option<Arc<Relation>>>, pending: &mut Vec<usize>| {
                for &c in &self.nodes[id].children {
                    pending[c] -= 1;
                    if pending[c] == 0 {
                        results[c] = None;
                    }
                }
            };
        if workers <= 1 {
            for (id, node) in self.nodes.iter().enumerate() {
                let kids: Vec<&Relation> = node
                    .children
                    .iter()
                    .map(|&c| {
                        results[c]
                            .as_deref()
                            .expect("topological order: children computed first")
                    })
                    .collect();
                let mut span = sj_obs::span!(
                    "plan.node",
                    node = id,
                    op = node.op.name(),
                    input = kids.iter().map(|k| k.len()).sum::<usize>()
                );
                let start = Instant::now();
                let (rel, parts) = self.exec_op(node, &kids, db, 1, exec)?;
                span.attr("rows", rel.len());
                drop(span);
                observe(id, node, &rel, start.elapsed(), &parts);
                results[id] = Some(rel);
                evict(id, &mut results, &mut pending_consumers);
            }
        } else {
            for level in self.levels() {
                // One node: run inline, skip the thread machinery (but
                // keep intra-operator partition parallelism).
                let outputs: Vec<(NodeId, Result<_, EvalError>, Duration)> = if level.len() == 1 {
                    let id = level[0];
                    let node = &self.nodes[id];
                    let kids: Vec<&Relation> = node
                        .children
                        .iter()
                        .map(|&c| results[c].as_deref().expect("children on lower levels"))
                        .collect();
                    let mut span = sj_obs::span!(
                        "plan.node",
                        node = id,
                        op = node.op.name(),
                        input = kids.iter().map(|k| k.len()).sum::<usize>()
                    );
                    let start = Instant::now();
                    let out = self.exec_op(node, &kids, db, workers, exec);
                    if let Ok((rel, _)) = &out {
                        span.attr("rows", rel.len());
                    }
                    vec![(id, out, start.elapsed())]
                } else {
                    // The worker budget is split across the level's
                    // concurrent nodes so intra-operator partitioning
                    // never oversubscribes the budget quadratically.
                    let node_workers = (workers / level.len()).max(1);
                    let results = &results;
                    let parent = sj_obs::current_span();
                    std::thread::scope(|s| {
                        let handles: Vec<_> = level
                            .iter()
                            .map(|&id| {
                                let node = &self.nodes[id];
                                s.spawn(move || {
                                    sj_obs::with_parent(parent, || {
                                        let kids: Vec<&Relation> = node
                                            .children
                                            .iter()
                                            .map(|&c| {
                                                results[c]
                                                    .as_deref()
                                                    .expect("children on lower levels")
                                            })
                                            .collect();
                                        let mut span = sj_obs::span!(
                                            "plan.node",
                                            node = id,
                                            op = node.op.name(),
                                            input = kids.iter().map(|k| k.len()).sum::<usize>()
                                        );
                                        let start = Instant::now();
                                        let out = self.exec_op(node, &kids, db, node_workers, exec);
                                        if let Ok((rel, _)) = &out {
                                            span.attr("rows", rel.len());
                                        }
                                        (id, out, start.elapsed())
                                    })
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("plan worker panicked"))
                            .collect()
                    })
                };
                for (id, out, elapsed) in outputs {
                    let (rel, parts) = out?;
                    observe(id, &self.nodes[id], &rel, elapsed, &parts);
                    results[id] = Some(rel);
                }
                for &id in &level {
                    evict(id, &mut results, &mut pending_consumers);
                }
            }
        }
        Ok(results[self.root].take().expect("root computed"))
    }

    /// Group node ids by dependency depth (level 0 = leaves), each level
    /// in ascending id order. Children always sit on strictly lower
    /// levels, so the nodes of one level are pairwise independent.
    fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut level = vec![0usize; self.nodes.len()];
        let mut out: Vec<Vec<NodeId>> = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            level[id] = node
                .children
                .iter()
                .map(|&c| level[c] + 1)
                .max()
                .unwrap_or(0);
            if out.len() <= level[id] {
                out.resize_with(level[id] + 1, Vec::new);
            }
            out[level[id]].push(id);
        }
        out
    }

    /// Render the DAG as an `EXPLAIN`-style tree. The first occurrence of
    /// a shared node is expanded and tagged `×n`; later occurrences are
    /// printed as back-references (`… see #id`), making the memoization
    /// visible:
    ///
    /// ```text
    /// #6 merge-diff            diff
    /// ├─ #1 project            project[1]  ×2
    /// │  └─ #0 scan            R  ×3
    /// └─ #5 project            project[1]
    ///    └─ ...
    /// ```
    pub fn explain(&self) -> String {
        let mut out = format!(
            "physical plan: {} nodes for {} logical nodes ({} shared)\n",
            self.node_count(),
            self.expr_nodes,
            self.shared_node_count()
        );
        let mut seen = vec![false; self.nodes.len()];
        self.render(self.root, "", true, true, &mut seen, &mut out);
        out
    }

    #[allow(clippy::only_used_in_recursion)]
    fn render(
        &self,
        id: NodeId,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        seen: &mut [bool],
        out: &mut String,
    ) {
        let (branch, child_prefix) = if is_root {
            (String::new(), String::new())
        } else if is_last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let node = &self.nodes[id];
        if seen[id] {
            out.push_str(&format!("{branch}#{id} … see above\n"));
            return;
        }
        seen[id] = true;
        let shared = if node.occurrences > 1 {
            format!("  ×{}", node.occurrences)
        } else {
            String::new()
        };
        let est = match node.est_rows {
            Some(e) => format!("  ~{e:.0} rows"),
            None => String::new(),
        };
        let head = format!("{branch}#{id} {}", node.op.name());
        out.push_str(&format!("{head:<40} {}{est}{shared}\n", node.label));
        let n = node.children.len();
        for (i, &c) in node.children.iter().enumerate() {
            self.render(c, &child_prefix, i + 1 == n, false, seen, out);
        }
    }
}

/// Bottom-up lowering state: hash-consing memo keyed by structural hash,
/// confirmed by full equality (hash collisions must not merge distinct
/// subtrees).
///
/// Each memo lookup hashes the probed subtree, so lowering costs
/// `O(n · depth)` hashing overall — microseconds at the expression sizes
/// of this reproduction (tens of nodes). Should machine-generated
/// expressions ever make this the bottleneck, the memo can be re-keyed by
/// `(operator, child NodeIds)` after lowering children for `O(n)` total.
struct Planner<'a> {
    schema: &'a Schema,
    /// Statistics context when planning cost-based
    /// ([`PhysicalPlan::of_costed`]): a stats source for the leaves and
    /// the cost model that turns estimates into operator choices.
    stats: Option<(&'a dyn StatsSource, &'a CostModel)>,
    /// Join-order mode the plan was built under; gates the multiway
    /// collapse (which fires only under [`JoinOrder::Dp`]).
    order: JoinOrder,
    nodes: Vec<PlanNode>,
    memo: FxHashMap<u64, Vec<(&'a Expr, NodeId)>>,
}

impl<'a> Planner<'a> {
    /// The plan node a (sub)expression with structural hash `h` lowered
    /// to, if already planned.
    fn find_hashed(&self, e: &Expr, h: u64) -> Option<NodeId> {
        self.memo
            .get(&h)?
            .iter()
            .find(|(cand, _)| *cand == e)
            .map(|&(_, id)| id)
    }

    /// Count every occurrence of every subexpression in the tree into
    /// the corresponding plan node. Subexpressions without a plan node
    /// are skipped: the interior joins of a chain collapsed into a
    /// [`PhysOp::MultiwayJoin`] were never lowered (only the chain root
    /// and its leaves have nodes).
    fn count_occurrences(&mut self, e: &Expr) {
        if let Some(id) = self.find_hashed(e, e.structural_hash()) {
            self.nodes[id].occurrences += 1;
        }
        for c in e.children() {
            self.count_occurrences(c);
        }
    }

    fn lower(&mut self, e: &'a Expr) -> NodeId {
        let h = e.structural_hash();
        if let Some(id) = self.find_hashed(e, h) {
            return id;
        }
        let (op, children) = match e {
            Expr::Rel(name) => (PhysOp::Scan(name.clone()), vec![]),
            Expr::Union(a, b) => (PhysOp::MergeUnion, vec![self.lower(a), self.lower(b)]),
            Expr::Diff(a, b) => (PhysOp::MergeDiff, vec![self.lower(a), self.lower(b)]),
            Expr::Project(cols, a) => (PhysOp::Project(cols.clone()), vec![self.lower(a)]),
            Expr::Select(sel, a) => (PhysOp::Filter(sel.clone()), vec![self.lower(a)]),
            Expr::ConstTag(c, a) => (PhysOp::Tag(c.clone()), vec![self.lower(a)]),
            Expr::Join(theta, a, b) => {
                if let Some((spec, leaves)) = self.try_multiway(e) {
                    let children = leaves.into_iter().map(|l| self.lower(l)).collect();
                    (PhysOp::MultiwayJoin(spec), children)
                } else {
                    (
                        self.choose_join_for(theta, a, b),
                        vec![self.lower(a), self.lower(b)],
                    )
                }
            }
            Expr::Semijoin(theta, a, b) => (
                self.choose_semijoin_for(theta, a, b),
                vec![self.lower(a), self.lower(b)],
            ),
            Expr::GroupCount(cols, a) => {
                (PhysOp::HashGroupCount(cols.clone()), vec![self.lower(a)])
            }
        };
        let arity = match (&op, children.as_slice()) {
            (PhysOp::Scan(name), _) => self
                .schema
                .arity_of(name)
                .expect("validated: relation exists"),
            (PhysOp::Project(cols), _) => cols.len(),
            (PhysOp::Tag(_), &[c]) => self.nodes[c].arity + 1,
            (PhysOp::HashGroupCount(cols), _) => cols.len() + 1,
            (
                PhysOp::HashJoin(_) | PhysOp::MergeJoin { .. } | PhysOp::NestedLoopJoin(_),
                &[l, r],
            ) => self.nodes[l].arity + self.nodes[r].arity,
            (PhysOp::MultiwayJoin(_), kids) => {
                kids.iter().map(|&c| self.nodes[c].arity).sum::<usize>()
            }
            (_, &[c, ..]) => self.nodes[c].arity,
            _ => unreachable!("every non-scan operator has children"),
        };
        let id = self.nodes.len();
        self.nodes.push(PlanNode {
            op,
            children,
            label: e.label(),
            arity,
            occurrences: 0, // filled by `count_occurrences`
            est_rows: None, // filled by `annotate_estimates`
        });
        self.memo.entry(h).or_default().push((e, id));
        id
    }

    /// Record an estimated output cardinality on every plan node
    /// (cost-based plans only). One estimator pass per distinct
    /// subexpression — quadratic in the expression size, microseconds
    /// at this workspace's scales.
    fn annotate_estimates(&mut self) {
        let Some((src, _)) = self.stats else { return };
        let estimator = Estimator::new(src);
        let ids: Vec<(&Expr, NodeId)> =
            self.memo.values().flat_map(|v| v.iter().copied()).collect();
        for (e, id) in ids {
            self.nodes[id].est_rows = estimator.estimate(e).map(|c| c.rows);
        }
    }

    /// Should this join chain collapse into one worst-case-optimal
    /// multiway operator? Delegates the decision to
    /// [`joinorder::multiway_plan`] — the same function the reorder
    /// pass consulted when it left the chain's shape alone — so the two
    /// passes cannot disagree. Requires [`JoinOrder::Dp`], statistics,
    /// and estimates for every leaf.
    fn try_multiway(&self, e: &'a Expr) -> Option<(kernel::MultiwaySpec, Vec<&'a Expr>)> {
        if self.order != JoinOrder::Dp {
            return None;
        }
        let (src, _) = self.stats?;
        let g = JoinGraph::extract(e, self.schema)?;
        let estimator = Estimator::new(src);
        let ests: Option<Vec<CardEst>> = g.leaves.iter().map(|l| estimator.estimate(l)).collect();
        let spec = joinorder::multiway_plan(&g, &ests?)?;
        Some((spec, g.leaves))
    }

    /// Are both join operands **provably** small enough that a
    /// filtered nested loop beats paying for the hash build? The
    /// decision uses the estimator's guaranteed upper bounds
    /// (`CardEst::upper`), never the selectivity-scaled row estimates:
    /// an optimistic estimate on correlated data must not be able to
    /// demote an `O(n)` hash join into an `Ω(n²)` nested loop. Missing
    /// statistics keep the default.
    fn hash_build_pays_off(&self, a: &Expr, b: &Expr) -> bool {
        let Some((src, model)) = self.stats else {
            return true;
        };
        let estimator = Estimator::new(src);
        match (estimator.estimate(a), estimator.estimate(b)) {
            (Some(ea), Some(eb)) => model.hash_worthwhile(ea.upper, eb.upper),
            _ => true,
        }
    }

    fn choose_join_for(&self, theta: &Condition, a: &Expr, b: &Expr) -> PhysOp {
        if let Some(prefix) = ops::merge_prefix_len(theta) {
            // Merge on an aligned prefix is sort-free either way —
            // statistics cannot improve on it.
            PhysOp::MergeJoin {
                theta: theta.clone(),
                prefix,
            }
        } else if !ops::split_condition(theta).0.is_empty() && self.hash_build_pays_off(a, b) {
            PhysOp::HashJoin(theta.clone())
        } else {
            PhysOp::NestedLoopJoin(theta.clone())
        }
    }

    fn choose_semijoin_for(&self, theta: &Condition, a: &Expr, b: &Expr) -> PhysOp {
        if let Some(prefix) = ops::merge_prefix_len(theta) {
            PhysOp::MergeSemijoin {
                theta: theta.clone(),
                prefix,
            }
        } else if !ops::split_condition(theta).0.is_empty() && self.hash_build_pays_off(a, b) {
            PhysOp::HashSemijoin(theta.clone())
        } else {
            PhysOp::NestedLoopSemijoin(theta.clone())
        }
    }
}

/// The result of an instrumented planned evaluation: one [`NodeStat`] per
/// **DAG node** (not per tree node — that is the point), in topological
/// order with the root last.
#[derive(Debug, Clone)]
pub struct PlannedReport {
    /// The query result (the root node's output).
    pub result: Relation,
    /// Per-node statistics, indexed by [`NodeId`]. Each node appears
    /// exactly once: the planned evaluator computes every distinct
    /// subexpression once.
    pub nodes: Vec<NodeStat>,
    /// Per-node occurrence counts in the logical tree (parallel to
    /// `nodes`).
    pub occurrences: Vec<usize>,
    /// Per-node estimated cardinalities (parallel to `nodes`), present
    /// for plans built with statistics — `render` prints them next to
    /// the actual cardinalities, making estimator error visible per
    /// node.
    pub estimates: Vec<Option<f64>>,
    /// The input database size `|D|`.
    pub db_size: usize,
    /// Size of the logical expression tree.
    pub expr_nodes: usize,
    /// Worker threads the executor ran with (1 for serial runs).
    pub workers: usize,
}

impl PlannedReport {
    /// The largest intermediate (or final) cardinality.
    pub fn max_intermediate(&self) -> usize {
        self.nodes.iter().map(|n| n.cardinality).max().unwrap_or(0)
    }

    /// Total time across all plan nodes.
    pub fn total_elapsed(&self) -> Duration {
        self.nodes.iter().map(|n| n.elapsed).sum()
    }

    /// Tree-node evaluations the memoization avoided
    /// (`expr_nodes − plan nodes`).
    pub fn evaluations_saved(&self) -> usize {
        self.expr_nodes - self.nodes.len()
    }

    /// The q-error of node `id`: `max(est/actual, actual/est)`, the
    /// standard symmetric multiplicative measure of estimation accuracy
    /// (1.0 = exact, ≥ budget = flagged by [`PlannedReport::render`]).
    /// Both sides are clamped to ≥ 1 row first, so empty outputs and
    /// sub-row estimates compare as "one row" instead of dividing by
    /// zero. `None` for plans built without statistics.
    pub fn q_error(&self, id: NodeId) -> Option<f64> {
        let est = self.estimates[id]?.max(1.0);
        let actual = (self.nodes[id].cardinality as f64).max(1.0);
        Some((est / actual).max(actual / est))
    }

    /// The worst per-node q-error of the run — the headline estimator
    /// accuracy number. `None` for plans built without statistics.
    pub fn max_q_error(&self) -> Option<f64> {
        (0..self.nodes.len())
            .filter_map(|id| self.q_error(id))
            .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
    }

    /// Render a per-node table (id, operator, label, cardinality, ×occ,
    /// partition count). Nodes whose estimate misses the actual
    /// cardinality by more than [`Q_ERROR_BUDGET`]× carry a
    /// `q-error … over budget` marker. Every node carries its sharing
    /// count (`×1` for unshared nodes — the count doubles as cache
    /// provenance: how many logical tree nodes this memoized DAG node
    /// served) and its partition marker (`[serial]` for unpartitioned
    /// nodes), so lines stay column-comparable and diff-stable across
    /// node kinds. Deliberately **stable across runs** of the same
    /// configuration: cardinalities, operator choices, estimates,
    /// worker and partition counts are deterministic; wall-clock times
    /// are omitted (see `QueryProfile` for the timed variant).
    pub fn render(&self) -> String {
        let workers = if self.workers > 1 {
            format!(", {} workers", self.workers)
        } else {
            String::new()
        };
        let mut out = format!(
            "|D| = {}, output = {}, max intermediate = {}, {} plan nodes for {} tree nodes{workers}\n",
            self.db_size,
            self.result.len(),
            self.max_intermediate(),
            self.nodes.len(),
            self.expr_nodes,
        );
        for ((n, &occ), est) in self
            .nodes
            .iter()
            .zip(&self.occurrences)
            .zip(&self.estimates)
        {
            let shared = format!("  ×{occ}");
            let parts = if n.partitions.is_empty() {
                "  [serial]".to_string()
            } else {
                format!("  [{} partitions]", n.partitions.len())
            };
            let est = match est {
                Some(e) => match self.q_error(n.id) {
                    Some(q) if q > Q_ERROR_BUDGET => {
                        format!("  est≈{e:.0} (q-error {q:.0} over budget)")
                    }
                    _ => format!("  est≈{e:.0}"),
                },
                None => String::new(),
            };
            out.push_str(&format!(
                "  [{:>3}] {:<20} {:<28} arity {}  card {}{est}{shared}{parts}\n",
                n.id, n.operator, n.label, n.arity, n.cardinality
            ));
        }
        out
    }
}

/// Evaluate `expr` on `db` through the physical planner: plan against the
/// database's induced schema, then execute the DAG. Agrees with
/// [`crate::evaluate`] on every valid expression, but evaluates each
/// distinct subexpression once and never deep-clones a stored relation.
///
/// ```
/// use sj_algebra::division;
/// use sj_eval::{evaluate, evaluate_planned};
/// use sj_storage::{Database, Relation};
///
/// let mut db = Database::new();
/// db.set("R", Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7]]));
/// db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
/// let e = division::division_double_difference("R", "S");
/// assert_eq!(
///     evaluate_planned(&e, &db).unwrap(),
///     evaluate(&e, &db).unwrap()
/// );
/// ```
pub fn evaluate_planned(expr: &Expr, db: &Database) -> Result<Relation, EvalError> {
    PhysicalPlan::of(expr, &db.schema())?.execute(db)
}

/// Planned evaluation with per-DAG-node instrumentation.
pub fn evaluate_planned_instrumented(
    expr: &Expr,
    db: &Database,
) -> Result<PlannedReport, EvalError> {
    PhysicalPlan::of(expr, &db.schema())?.execute_instrumented(db)
}

/// Plan and render the physical DAG without executing it.
pub fn explain_plan(expr: &Expr, schema: &Schema) -> Result<String, EvalError> {
    Ok(PhysicalPlan::of(expr, schema)?.explain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::evaluate;
    use sj_algebra::division;

    fn division_db() -> Database {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 8], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        db
    }

    #[test]
    fn division_dag_shares_r_and_its_projection() {
        let e = division::division_double_difference("R", "S");
        let plan = PhysicalPlan::of(&e, &division_db().schema()).unwrap();
        // 10 tree nodes collapse to 7 distinct subexpressions.
        assert_eq!(plan.expr_node_count(), 10);
        assert_eq!(plan.node_count(), 7);
        let scan_r = plan
            .nodes()
            .iter()
            .find(|n| n.op == PhysOp::Scan("R".into()))
            .unwrap();
        assert_eq!(scan_r.occurrences, 3);
        let proj = plan
            .nodes()
            .iter()
            .find(|n| n.label == "project[1]" && n.occurrences > 1)
            .unwrap();
        assert_eq!(proj.occurrences, 2);
    }

    #[test]
    fn division_each_distinct_subtree_evaluated_exactly_once() {
        // The acceptance check of the planner issue: instrumentation shows
        // one evaluation per distinct subtree — R once (the tree has it
        // three times), π₁(R) once (twice in the tree).
        let e = division::division_double_difference("R", "S");
        let db = division_db();
        let report = evaluate_planned_instrumented(&e, &db).unwrap();
        assert_eq!(report.expr_nodes, 10);
        assert_eq!(report.nodes.len(), 7);
        assert_eq!(report.evaluations_saved(), 3);
        assert_eq!(report.nodes.iter().filter(|n| n.label == "R").count(), 1);
        assert_eq!(
            report
                .nodes
                .iter()
                .filter(|n| n.label == "project[1]")
                .count(),
            2, // π₁(R) and π₁(diff) are distinct subexpressions
        );
        // Ids are assigned in topological order and are exactly 0..n.
        for (i, n) in report.nodes.iter().enumerate() {
            assert_eq!(n.id, i);
        }
        assert_eq!(report.result, evaluate(&e, &db).unwrap());
    }

    #[test]
    fn planned_agrees_with_naive_on_running_examples() {
        let mut db = Database::new();
        db.set(
            "Visits",
            Relation::from_str_rows(&[
                &["an", "bad bar"],
                &["bob", "good bar"],
                &["carl", "empty bar"],
            ]),
        );
        db.set(
            "Serves",
            Relation::from_str_rows(&[&["bad bar", "swill"], &["good bar", "nectar"]]),
        );
        db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
        for e in [
            division::example3_lousy_bar_sa(),
            division::example3_lousy_bar_ra(),
            division::cyclic_beer_query_ra(),
        ] {
            assert_eq!(
                evaluate_planned(&e, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "{e}"
            );
        }
        let ddb = division_db();
        for e in [
            division::division_double_difference("R", "S"),
            division::division_via_join("R", "S"),
            division::division_equality("R", "S"),
            division::division_counting("R", "S"),
            division::division_equality_counting("R", "S"),
        ] {
            assert_eq!(
                evaluate_planned(&e, &ddb).unwrap(),
                evaluate(&e, &ddb).unwrap(),
                "{e}"
            );
        }
    }

    #[test]
    fn operator_choice_prefers_merge_on_aligned_prefix() {
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let cases = [
            (
                Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")),
                "merge-semijoin",
            ),
            (
                Expr::rel("R").join(Condition::eq_pairs([(1, 1), (2, 2)]), Expr::rel("S")),
                "merge-join",
            ),
            (
                Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
                "hash-semijoin",
            ),
            (
                Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
                "hash-join",
            ),
            (
                Expr::rel("R").join(Condition::lt(1, 1), Expr::rel("S")),
                "nested-loop-join",
            ),
            (
                Expr::rel("R").semijoin(Condition::always(), Expr::rel("S")),
                "nested-loop-semijoin",
            ),
            (
                // Merge with a residual: 1=1 aligned, 2<2 rides along.
                Expr::rel("R").join(
                    Condition::eq(1, 1).and(2, sj_algebra::CompOp::Lt, 2),
                    Expr::rel("S"),
                ),
                "merge-join",
            ),
        ];
        for (e, expect) in cases {
            let plan = PhysicalPlan::of(&e, &schema).unwrap();
            let root = &plan.nodes()[plan.root()];
            assert_eq!(root.op.name(), expect, "{e}");
        }
    }

    #[test]
    fn merge_operators_agree_with_naive_evaluation() {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 10], &[1, 20], &[2, 5], &[3, 1], &[3, 2]]),
        );
        db.set(
            "S",
            Relation::from_int_rows(&[&[1, 15], &[1, 30], &[3, 0], &[4, 9]]),
        );
        let exprs = [
            Expr::rel("R").join(Condition::eq(1, 1), Expr::rel("S")),
            Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")),
            Expr::rel("R").join(
                Condition::eq(1, 1).and(2, sj_algebra::CompOp::Lt, 2),
                Expr::rel("S"),
            ),
            Expr::rel("R").semijoin(
                Condition::eq(1, 1).and(2, sj_algebra::CompOp::Gt, 2),
                Expr::rel("S"),
            ),
        ];
        for e in exprs {
            assert_eq!(
                evaluate_planned(&e, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "{e}"
            );
        }
    }

    #[test]
    fn explain_shows_operators_and_sharing() {
        let e = division::division_double_difference("R", "S");
        let s = explain_plan(&e, &division_db().schema()).unwrap();
        assert!(s.contains("physical plan: 7 nodes for 10 logical nodes"));
        assert!(s.contains("scan"));
        assert!(s.contains("nested-loop-join"));
        assert!(s.contains("×3"), "R is shared three times:\n{s}");
        assert!(s.contains("… see above"), "{s}");
    }

    #[test]
    fn execute_rejects_mismatched_database() {
        let e = Expr::rel("R").project([1]);
        let plan = PhysicalPlan::of(&e, &Schema::new([("R", 2)])).unwrap();
        // Missing relation.
        let empty = Database::new();
        assert!(matches!(
            plan.execute(&empty),
            Err(EvalError::Algebra(AlgebraError::UnknownRelation(_)))
        ));
        // Wrong arity.
        let mut wrong = Database::new();
        wrong.set("R", Relation::from_int_rows(&[&[1, 2, 3]]));
        assert!(matches!(
            plan.execute(&wrong),
            Err(EvalError::Algebra(AlgebraError::ArityMismatch { .. }))
        ));
    }

    #[test]
    fn planned_validation_errors_surface_like_plain() {
        let db = Database::new();
        assert!(evaluate_planned(&Expr::rel("R"), &db).is_err());
        let mut db2 = Database::new();
        db2.set("R", Relation::empty(1));
        assert!(evaluate_planned(&Expr::rel("R").project([2]), &db2).is_err());
    }

    #[test]
    fn scan_is_zero_copy() {
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1], &[2]]));
        let plan = PhysicalPlan::of(&Expr::rel("R"), &db.schema()).unwrap();
        // A bare scan's result must be the stored allocation itself.
        let shared = plan
            .run(&db, 1, Execution::default(), |_, _, _, _, _| {})
            .unwrap();
        assert!(std::ptr::eq(shared.as_ref(), db.get("R").unwrap()));
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        let mut db = Database::new();
        let rows: Vec<Vec<i64>> = (0..400).map(|i| vec![i % 29, i % 7]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", Relation::unary((0..7).map(Value::int)));
        let exprs = [
            division::division_double_difference("R", "S"),
            division::division_counting("R", "S"),
            Expr::rel("R").join(Condition::eq(1, 1), Expr::rel("R")),
            Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
        ];
        for e in exprs {
            let plan = PhysicalPlan::of(&e, &db.schema()).unwrap();
            let want = plan.execute(&db).unwrap();
            for par in [
                Parallelism::Threads(1),
                Parallelism::Threads(2),
                Parallelism::Threads(4),
                Parallelism::Threads(8),
            ] {
                assert_eq!(
                    plan.execute_with(&db, par).unwrap(),
                    want,
                    "{e} under {par}"
                );
            }
        }
    }

    #[test]
    fn parallel_instrumented_report_is_ordered_and_records_workers() {
        let e = division::division_double_difference("R", "S");
        // Large enough that the join nodes clear PAR_MIN_NODE_INPUT and
        // actually run partitioned (tiny inputs are gated to serial).
        let mut db = Database::new();
        let rows: Vec<Vec<i64>> = (0..PAR_MIN_NODE_INPUT as i64 * 2)
            .map(|i| vec![i % 5000, i % 3])
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", Relation::from_int_rows(&[&[0], &[1], &[2]]));
        let plan = PhysicalPlan::of(&e, &db.schema()).unwrap();
        let serial = plan.execute_instrumented(&db).unwrap();
        assert_eq!(serial.workers, 1);
        let par = plan
            .execute_instrumented_with(&db, Parallelism::Threads(4))
            .unwrap();
        assert_eq!(par.workers, 4);
        assert_eq!(par.result, serial.result);
        // Same shape as the serial report: one stat per DAG node, ids in
        // topological order, identical cardinalities.
        assert_eq!(par.nodes.len(), serial.nodes.len());
        for (p, s) in par.nodes.iter().zip(&serial.nodes) {
            assert_eq!(p.id, s.id);
            assert_eq!(p.label, s.label);
            assert_eq!(p.operator, s.operator);
            assert_eq!(p.cardinality, s.cardinality);
        }
        // Parallel join/semijoin nodes report their partitions; serial
        // runs never do.
        assert!(serial.nodes.iter().all(|n| n.partitions.is_empty()));
        let join_node = par
            .nodes
            .iter()
            .find(|n| n.operator.contains("join"))
            .expect("division plan joins");
        // Chunk partitioning never makes more partitions than input rows.
        assert!(
            (2..=4).contains(&join_node.partitions.len()),
            "{join_node:?}"
        );
        assert_eq!(
            join_node
                .partitions
                .iter()
                .map(|p| p.out_rows)
                .sum::<usize>(),
            join_node.cardinality,
            "partition outputs are disjoint and cover the node output"
        );
        assert!(par.render().contains("4 workers"), "{}", par.render());
        assert!(par.render().contains("partitions]"), "{}", par.render());
    }

    #[test]
    fn levels_respect_dependencies() {
        let e = division::division_double_difference("R", "S");
        let plan = PhysicalPlan::of(&e, &division_db().schema()).unwrap();
        let levels = plan.levels();
        assert_eq!(
            levels.iter().map(|l| l.len()).sum::<usize>(),
            plan.node_count()
        );
        let mut level_of = vec![0usize; plan.node_count()];
        for (d, level) in levels.iter().enumerate() {
            for &id in level {
                level_of[id] = d;
            }
        }
        for (id, node) in plan.nodes().iter().enumerate() {
            for &c in &node.children {
                assert!(level_of[c] < level_of[id], "child {c} not below {id}");
            }
        }
        // The division DAG starts from two independent leaves: level 0
        // holds both scans — the executor runs them concurrently.
        assert_eq!(levels[0].len(), 2);
    }

    #[test]
    fn costed_plan_annotates_estimates_and_preserves_results() {
        use sj_stats::{AnalyzeSource, CostModel};
        let db = division_db();
        let e = division::division_double_difference("R", "S");
        let plain = PhysicalPlan::of(&e, &db.schema()).unwrap();
        assert!(plain.nodes().iter().all(|n| n.est_rows.is_none()));
        let src = AnalyzeSource::new(&db);
        let model = CostModel::default();
        let costed = PhysicalPlan::of_costed(&e, &db.schema(), &src, &model).unwrap();
        assert_eq!(costed.node_count(), plain.node_count());
        assert!(
            costed.nodes().iter().all(|n| n.est_rows.is_some()),
            "every node gets an estimate"
        );
        // Leaf scans are estimated exactly.
        let scan_r = costed
            .nodes()
            .iter()
            .find(|n| n.op == PhysOp::Scan("R".into()))
            .unwrap();
        assert_eq!(scan_r.est_rows, Some(5.0));
        // Same results as the plain plan; explain carries the estimates.
        assert_eq!(costed.execute(&db).unwrap(), plain.execute(&db).unwrap());
        assert!(costed.explain().contains("~"), "{}", costed.explain());
        assert!(!plain.explain().contains("~5 rows"));
        // Instrumented report pairs estimates with actuals.
        let report = costed.execute_instrumented(&db).unwrap();
        assert_eq!(report.estimates.len(), report.nodes.len());
        assert!(report.estimates.iter().all(|e| e.is_some()));
        assert!(report.render().contains("est≈"), "{}", report.render());
    }

    #[test]
    fn costed_plan_demotes_hash_on_provably_tiny_inputs() {
        use sj_stats::{AnalyzeSource, CostModel};
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1, 10], &[2, 20]]));
        db.set("S", Relation::from_int_rows(&[&[10, 1], &[20, 2]]));
        // Off-prefix equality: the static planner always hashes…
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
        let plain = PhysicalPlan::of(&e, &db.schema()).unwrap();
        assert_eq!(plain.nodes()[plain.root()].op.name(), "hash-join");
        // …the costed planner sees 2×2 rows and skips the build.
        let src = AnalyzeSource::new(&db);
        let model = CostModel::default();
        let costed = PhysicalPlan::of_costed(&e, &db.schema(), &src, &model).unwrap();
        assert_eq!(costed.nodes()[costed.root()].op.name(), "nested-loop-join");
        assert_eq!(costed.execute(&db).unwrap(), plain.execute(&db).unwrap());
        // At scale the hash join stays.
        let rows: Vec<Vec<i64>> = (0..500).map(|i| vec![i, i % 50]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut big = Database::new();
        big.set("R", Relation::from_int_rows(&refs));
        big.set("S", Relation::from_int_rows(&refs));
        let src = AnalyzeSource::new(&big);
        let costed = PhysicalPlan::of_costed(&e, &big.schema(), &src, &model).unwrap();
        assert_eq!(costed.nodes()[costed.root()].op.name(), "hash-join");
        // Merge on aligned prefixes is never demoted.
        let aligned = Expr::rel("R").join(Condition::eq(1, 1), Expr::rel("S"));
        let src = AnalyzeSource::new(&db);
        let costed = PhysicalPlan::of_costed(&aligned, &db.schema(), &src, &model).unwrap();
        assert_eq!(costed.nodes()[costed.root()].op.name(), "merge-join");
    }

    #[test]
    fn correlated_selection_estimates_never_demote_hash_joins() {
        use sj_stats::{AnalyzeSource, CostModel};
        // Every tuple satisfies σ₁₌₂, but the independence assumption
        // estimates the selection at |R|/distinct ≈ 1 row. The demotion
        // gate must use the guaranteed upper bound (|R|), not that
        // optimistic estimate — otherwise stats would turn an O(n)
        // hash join into an Ω(n²) nested loop here.
        let rows: Vec<Vec<i64>> = (0..2000).map(|i| vec![i, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", Relation::from_int_rows(&refs));
        let e = Expr::rel("R")
            .select_eq(1, 2)
            .join(Condition::eq(2, 1), Expr::rel("S").select_eq(1, 2));
        let src = AnalyzeSource::new(&db);
        let costed =
            PhysicalPlan::of_costed(&e, &db.schema(), &src, &CostModel::default()).unwrap();
        assert_eq!(costed.nodes()[costed.root()].op.name(), "hash-join");
        // The (deliberately optimistic) row estimate on the selection
        // nodes really is tiny — the point is that it must not matter.
        let sel_node = costed
            .nodes()
            .iter()
            .find(|n| n.op.name() == "filter")
            .unwrap();
        assert!(sel_node.est_rows.unwrap() < 100.0);
    }

    #[test]
    fn q_error_flags_estimates_over_budget() {
        use sj_stats::{AnalyzeSource, CostModel};
        // Correlated columns: σ₁₌₂ keeps every tuple, but the
        // independence assumption estimates ~1 row — a q-error in the
        // thousands, well past the render budget.
        let rows: Vec<Vec<i64>> = (0..2000).map(|i| vec![i, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&refs));
        let e = Expr::rel("R").select_eq(1, 2);
        let src = AnalyzeSource::new(&db);
        let costed =
            PhysicalPlan::of_costed(&e, &db.schema(), &src, &CostModel::default()).unwrap();
        let report = costed.execute_instrumented(&db).unwrap();
        // The leaf scan is estimated exactly; the filter misses by >16×.
        let scan_id = report
            .nodes
            .iter()
            .find(|n| n.operator == "scan")
            .unwrap()
            .id;
        assert_eq!(report.q_error(scan_id), Some(1.0));
        assert!(report.max_q_error().unwrap() > Q_ERROR_BUDGET);
        assert!(
            report.render().contains("over budget"),
            "{}",
            report.render()
        );
        // Stats-free plans have no estimates, hence no q-errors and no
        // markers.
        let plain = PhysicalPlan::of(&e, &db.schema()).unwrap();
        let plain_report = plain.execute_instrumented(&db).unwrap();
        assert!(plain_report.max_q_error().is_none());
        assert!(!plain_report.render().contains("q-error"));
        // An exact estimator stays unflagged.
        let exact = costed
            .execute_instrumented(&db)
            .unwrap()
            .render()
            .matches("over budget")
            .count();
        assert_eq!(exact, 1, "only the correlated filter is flagged");
    }

    #[test]
    fn report_render_mentions_sharing_and_plan_size() {
        let e = division::division_double_difference("R", "S");
        let report = evaluate_planned_instrumented(&e, &division_db()).unwrap();
        let s = report.render();
        assert!(s.contains("7 plan nodes for 10 tree nodes"), "{s}");
        assert!(s.contains("×3"), "{s}");
        assert!(s.contains("scan"), "{s}");
    }
}
