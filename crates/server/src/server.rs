//! The serving core: master database, worker pool, sessions, and the
//! two cache tiers.
//!
//! # Concurrency model
//!
//! One `RwLock<Master>` guards the **master** database plus its
//! invalidation bookkeeping. Nobody executes queries under that lock:
//! a reader takes the lock only long enough to capture a
//! [`Snapshot`] (one `Arc` clone per relation — microseconds), then
//! executes against the snapshot outside it. Writers take the write
//! lock, mutate copy-on-write (never disturbing live snapshots), bump
//! the per-relation epochs, and leave. Readers therefore never block
//! on query execution and writers never block on readers beyond the
//! capture window — the paper-engine's `Arc<Relation>` copy-on-write
//! storage is what makes this cheap.
//!
//! # Cache tiers
//!
//! * **Result cache** — keyed by the submitted expression, stamped
//!   with the epoch of every relation the expression reads. A hit
//!   skips *everything* (optimize, plan, execute) and returns the
//!   shared result `Arc`. Any write to a referenced relation
//!   invalidates the entry (eagerly swept on write, re-validated by
//!   stamp comparison on hit — so the sweep/insert race with an
//!   in-flight query can never serve a stale result).
//! * **Plan cache** — keyed the same way, stamped with the statistics
//!   epoch and the operand arities. A hit skips optimize+plan and
//!   re-executes the cached physical plan against the current
//!   snapshot (plans resolve scans by *name* at execution, so this is
//!   sound). Data writes leave plans valid — a plan is correct for
//!   any contents, only its operator choices age — but ANALYZE bumps
//!   the stats epoch and retires them, and schema changes
//!   (replace/remove) sweep affected plans eagerly.
//!
//! Both tiers key by [`Expr::structural_hash`] **plus a full
//! expression equality check** ([`crate::cache::ExprCache`]): hash
//! collisions degrade to misses, never wrong results.

use crate::cache::ExprCache;
use crate::metrics::{ServerStats, StatsSnapshot};
use sj_algebra::{Expr, OptimizeLevel};
use sj_eval::{
    Engine, EvalError, Execution, Instrument, Parallelism, PhysicalPlan, QueryProfile, Report,
    StatsMode, Strategy,
};
use sj_obs::{Histogram, Metrics};
use sj_storage::{Database, FxHashMap, Relation, Snapshot, StorageError, Tuple};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The query-class label one expression gets in the per-class metric
/// series (`sj_server_queries_by_class_total{class="..."}`): the root
/// operator of the submitted expression.
fn query_class(expr: &Expr) -> &'static str {
    match expr {
        Expr::Rel(_) => "scan",
        Expr::Union(..) => "union",
        Expr::Diff(..) => "difference",
        Expr::Project(..) => "projection",
        Expr::Select(..) => "selection",
        Expr::ConstTag(..) => "const-tag",
        Expr::Join(..) => "join",
        Expr::Semijoin(..) => "semijoin",
        Expr::GroupCount(..) => "group-count",
    }
}

/// Which cache tiers a server runs with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// No caching: every query optimizes, plans, and executes.
    Off,
    /// Plan tier only: hot queries skip optimize+plan but always
    /// execute against the current snapshot.
    Plan,
    /// Both tiers (the default): hot queries skip execution entirely
    /// until a write invalidates their result.
    #[default]
    PlanAndResult,
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheMode::Off => write!(f, "off"),
            CacheMode::Plan => write!(f, "plan"),
            CacheMode::PlanAndResult => write!(f, "plan+result"),
        }
    }
}

/// Server configuration. `Default` is a production-shaped setup:
/// auto-sized worker pool, both cache tiers, cached statistics, full
/// optimization, instrumented q-error tracking.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Server worker threads (inter-query concurrency). `0` = one per
    /// available core (capped at 8).
    pub workers: usize,
    /// Core budget divided between inter-query concurrency and
    /// intra-query partition parallelism: each query runs with
    /// `max(1, cores / workers)` partition workers. `0` = available
    /// cores (capped at 8). This is the scheduler decision that turns
    /// the engine's [`Parallelism`] knob into policy.
    pub cores: usize,
    /// Bounded submission-queue capacity ([`Session::query`] blocks
    /// when full, [`Session::try_query`] rejects).
    pub queue_capacity: usize,
    /// Which cache tiers run.
    pub cache: CacheMode,
    /// Plan-tier capacity (entries).
    pub plan_cache_capacity: usize,
    /// Result-tier capacity (entries).
    pub result_cache_capacity: usize,
    /// Statistics mode for planning and algorithm selection.
    pub stats: StatsMode,
    /// Optimizer level queries are compiled with.
    pub optimize: OptimizeLevel,
    /// Execution mode (vectorized / row-at-a-time) for every query.
    pub execution: Execution,
    /// Run cold queries instrumented so their
    /// [`sj_eval::PlannedReport::max_q_error`] feeds
    /// [`StatsSnapshot::max_q_error_seen`]. Costs one result-relation
    /// copy per cold query.
    pub instrument: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            cores: 0,
            queue_capacity: 64,
            cache: CacheMode::default(),
            plan_cache_capacity: 1024,
            result_cache_capacity: 1024,
            stats: StatsMode::Cached,
            optimize: OptimizeLevel::Full,
            execution: Execution::from_env(),
            instrument: true,
        }
    }
}

/// A mutation applied through [`Server::write`] / [`Session::write`].
/// Typed (rather than a closure) so the server knows exactly which
/// relations changed and can invalidate per relation.
#[derive(Clone, Debug)]
pub enum WriteOp {
    /// Insert one tuple into an existing relation.
    Insert {
        /// Target relation name.
        relation: String,
        /// The tuple to insert.
        tuple: Tuple,
    },
    /// Assign (create or replace) a whole relation.
    Set {
        /// Target relation name.
        relation: String,
        /// The new contents.
        rows: Relation,
    },
    /// Remove a relation.
    Remove {
        /// Target relation name.
        relation: String,
    },
    /// Re-ANALYZE: refresh cached statistics for every relation and
    /// bump the statistics epoch, retiring all cached plans (results
    /// stay valid — statistics never change query answers, only plans).
    Analyze,
}

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Query compilation or execution failed.
    Eval(EvalError),
    /// A write failed in storage (e.g. unknown relation, arity
    /// mismatch).
    Storage(StorageError),
    /// [`Session::try_query`] found the bounded submission queue full.
    QueueFull,
    /// The server has shut down (or its workers are gone).
    Stopped,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Eval(e) => write!(f, "query failed: {e}"),
            ServerError::Storage(e) => write!(f, "write failed: {e}"),
            ServerError::QueueFull => write!(f, "submission queue full"),
            ServerError::Stopped => write!(f, "server stopped"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<EvalError> for ServerError {
    fn from(e: EvalError) -> ServerError {
        ServerError::Eval(e)
    }
}

impl From<StorageError> for ServerError {
    fn from(e: StorageError) -> ServerError {
        ServerError::Storage(e)
    }
}

/// Which tier answered a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Planned from scratch and executed.
    Cold,
    /// Plan-cache hit: skipped optimize+plan, executed.
    PlanCache,
    /// Result-cache hit: skipped execution entirely.
    ResultCache,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Cold => write!(f, "cold"),
            Provenance::PlanCache => write!(f, "plan-cache"),
            Provenance::ResultCache => write!(f, "result-cache"),
        }
    }
}

/// A served query result.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The query result, shared — result-cache hits hand out the same
    /// allocation.
    pub relation: Arc<Relation>,
    /// Which tier produced it.
    pub provenance: Provenance,
    /// The database epoch of the snapshot it was computed against.
    pub epoch: u64,
    /// Wall-clock serving time (capture → answer) on the worker.
    pub elapsed: Duration,
    /// Rendered `EXPLAIN ANALYZE`-style profile
    /// ([`sj_eval::QueryProfile::render`] with the serving tier
    /// attached), present when the query was submitted via
    /// [`Session::query_profiled`]. A result-cache hit profiles as just
    /// the tier line — no plan ran.
    pub profile: Option<String>,
}

/// Per-relation epoch stamps for the relations one expression reads,
/// in sorted name order — the result-cache validity token.
type DepStamps = Vec<(String, u64)>;

/// The master state guarded by the server's `RwLock`.
struct Master {
    db: Database,
    /// `relation name → db.epoch() after its last write`. Relations
    /// never written since startup are implicitly at epoch 0.
    rel_epochs: FxHashMap<String, u64>,
    /// Bumped by [`WriteOp::Analyze`]; plan-cache entries carry the
    /// value they were built under.
    stats_epoch: u64,
}

/// A plan-tier entry: the compiled physical plan plus everything
/// needed to prove it still applies.
#[derive(Clone)]
struct PlanEntry {
    plan: PhysicalPlan,
    /// `(relation, arity)` per referenced relation — a plan is only
    /// reusable while its operands keep their shape.
    deps: Vec<(String, usize)>,
    stats_epoch: u64,
}

/// A result-tier entry: the shared result plus the epoch stamps it was
/// computed under.
#[derive(Clone)]
struct ResultEntry {
    relation: Arc<Relation>,
    deps: DepStamps,
}

/// Everything workers share.
struct Shared {
    master: RwLock<Master>,
    /// Configuration template; forked per query onto a snapshot. Its
    /// own database is empty — the catalog, registry, and cost model
    /// are the shared parts.
    template: Engine,
    plan_cache: ExprCache<PlanEntry>,
    result_cache: ExprCache<ResultEntry>,
    stats: ServerStats,
    /// The registry behind [`ServerStats`], shared with every labeled
    /// series the workers update ([`Server::metrics_text`] exposes it).
    metrics: Arc<Metrics>,
    /// Serving latency per tier (`sj_server_query_seconds{tier=...}`).
    latency_cold: Arc<Histogram>,
    latency_plan: Arc<Histogram>,
    latency_result: Arc<Histogram>,
    /// Time jobs spend in the bounded queue before a worker dequeues
    /// them (`sj_server_queue_wait_seconds`).
    queue_wait: Arc<Histogram>,
    /// Session-id allocator for the per-session query counters.
    next_session: AtomicU64,
    cache_mode: CacheMode,
    per_query: Parallelism,
    execution: Execution,
    instrument: bool,
    /// Set by [`Server::shutdown`]/`Drop`: workers exit on their next
    /// poll tick even while session handles (and their queue senders)
    /// are still alive, and new submissions fail fast with
    /// [`ServerError::Stopped`].
    closed: AtomicBool,
}

/// The capture a query executes against: an immutable snapshot plus
/// the validity stamps taken under the same lock hold.
struct QueryCtx {
    snap: Snapshot,
    dep_stamps: DepStamps,
    stats_epoch: u64,
}

/// Snapshot context a [`ReadTxn`] pins at `begin` and reuses for every
/// query it runs.
#[derive(Clone)]
pub(crate) struct TxnCtx {
    snap: Snapshot,
    rel_epochs: FxHashMap<String, u64>,
    stats_epoch: u64,
}

impl Shared {
    /// An inert, already-closed `Shared` — the placeholder
    /// [`Server::shutdown`] swaps in so the real one can be unwrapped.
    fn closed_stub() -> Shared {
        let metrics = Arc::new(Metrics::new());
        Shared {
            master: RwLock::new(Master {
                db: Database::new(),
                rel_epochs: FxHashMap::default(),
                stats_epoch: 0,
            }),
            template: Engine::new(Database::new()),
            plan_cache: ExprCache::new(1),
            result_cache: ExprCache::new(1),
            stats: ServerStats::new(metrics.clone()),
            latency_cold: metrics.histogram_with("sj_server_query_seconds", &[("tier", "cold")]),
            latency_plan: metrics
                .histogram_with("sj_server_query_seconds", &[("tier", "plan-cache")]),
            latency_result: metrics
                .histogram_with("sj_server_query_seconds", &[("tier", "result-cache")]),
            queue_wait: metrics.histogram("sj_server_queue_wait_seconds"),
            metrics,
            next_session: AtomicU64::new(0),
            cache_mode: CacheMode::Off,
            per_query: Parallelism::Serial,
            execution: Execution::RowAtATime,
            instrument: false,
            closed: AtomicBool::new(true),
        }
    }

    /// Sorted, deduplicated relation names an expression reads.
    fn dep_names(expr: &Expr) -> Vec<String> {
        let mut names: Vec<String> = expr
            .relation_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    fn stamps_from(names: &[String], rel_epochs: &FxHashMap<String, u64>) -> DepStamps {
        names
            .iter()
            .map(|n| (n.clone(), rel_epochs.get(n).copied().unwrap_or(0)))
            .collect()
    }

    /// Capture a consistent (snapshot, stamps) pair for a one-shot
    /// query: one read-lock hold, no execution inside it.
    fn capture(&self, expr: &Expr) -> QueryCtx {
        let names = Shared::dep_names(expr);
        let master = self.master.read().expect("master poisoned");
        QueryCtx {
            snap: master.db.snapshot(),
            dep_stamps: Shared::stamps_from(&names, &master.rel_epochs),
            stats_epoch: master.stats_epoch,
        }
    }

    /// Capture the full context a transaction pins.
    fn capture_txn(&self) -> TxnCtx {
        let master = self.master.read().expect("master poisoned");
        TxnCtx {
            snap: master.db.snapshot(),
            rel_epochs: master.rel_epochs.clone(),
            stats_epoch: master.stats_epoch,
        }
    }

    fn ctx_for(&self, expr: &Expr, pinned: Option<&TxnCtx>) -> QueryCtx {
        match pinned {
            Some(txn) => {
                let names = Shared::dep_names(expr);
                QueryCtx {
                    snap: txn.snap.clone(),
                    dep_stamps: Shared::stamps_from(&names, &txn.rel_epochs),
                    stats_epoch: txn.stats_epoch,
                }
            }
            None => self.capture(expr),
        }
    }

    /// Serve one query against its captured context. This is the
    /// worker hot path; it holds no locks beyond the cache mutexes.
    /// With `want_profile`, the response carries a rendered
    /// [`QueryProfile`] for whichever tier answered.
    fn run_query(
        &self,
        expr: &Expr,
        ctx: &QueryCtx,
        want_profile: bool,
    ) -> Result<QueryResponse, ServerError> {
        let started = Instant::now();
        self.stats.bump_queries();
        let class = query_class(expr);
        self.metrics
            .counter_with("sj_server_queries_by_class_total", &[("class", class)])
            .inc();
        let mut span = sj_obs::span!("server.query", class = class);

        // Tier 1: result cache — skip execution entirely.
        if self.cache_mode == CacheMode::PlanAndResult {
            if let Some(entry) = self.result_cache.get(expr) {
                if entry.deps == ctx.dep_stamps {
                    self.stats.bump_result_hits();
                    let elapsed = started.elapsed();
                    self.latency_result.observe_duration(elapsed);
                    span.attr("tier", "result-cache");
                    span.attr("out_rows", entry.relation.len());
                    let profile = want_profile.then(|| {
                        QueryProfile::cache_hit("result-cache", entry.relation.len(), elapsed)
                            .render()
                    });
                    return Ok(QueryResponse {
                        relation: entry.relation,
                        provenance: Provenance::ResultCache,
                        epoch: ctx.snap.epoch(),
                        elapsed,
                        profile,
                    });
                }
            }
        }

        // Tier 2: plan cache — skip optimize+plan, execute the cached
        // physical plan against this snapshot.
        if self.cache_mode != CacheMode::Off {
            if let Some(entry) = self.plan_cache.get(expr) {
                let schema = ctx.snap.schema();
                let applicable = entry.stats_epoch == ctx.stats_epoch
                    && entry
                        .deps
                        .iter()
                        .all(|(n, a)| schema.arity_of(n) == Some(*a));
                if applicable {
                    self.stats.bump_plan_hits();
                    let (relation, profile) = if want_profile {
                        let report =
                            Report::Planned(entry.plan.execute_instrumented_with_execution(
                                ctx.snap.db(),
                                self.per_query,
                                self.execution,
                            )?);
                        let relation = Arc::new(report.result().clone());
                        let profile = QueryProfile::from_report(&report, Some(started.elapsed()))
                            .with_cache_tier("plan-cache");
                        (relation, Some(profile.render()))
                    } else {
                        (
                            Arc::new(entry.plan.execute_with_execution(
                                ctx.snap.db(),
                                self.per_query,
                                self.execution,
                            )?),
                            None,
                        )
                    };
                    self.store_result(expr, &relation, ctx);
                    let elapsed = started.elapsed();
                    self.latency_plan.observe_duration(elapsed);
                    span.attr("tier", "plan-cache");
                    span.attr("out_rows", relation.len());
                    return Ok(QueryResponse {
                        relation,
                        provenance: Provenance::PlanCache,
                        epoch: ctx.snap.epoch(),
                        elapsed,
                        profile,
                    });
                }
            }
        }

        // Cold: fork the template engine onto the snapshot, compile,
        // execute, and populate both tiers.
        let mut engine = self.template.fork(ctx.snap.db().clone());
        if want_profile {
            engine = engine.instrument(Instrument::Profile);
        }
        let out = engine.query(expr.clone()).run()?;
        if self.instrument || want_profile {
            if let Some(q) = out
                .report
                .as_ref()
                .and_then(|r| r.as_planned())
                .and_then(|p| p.max_q_error())
            {
                self.stats.record_q_error(q);
            }
        }
        let profile = want_profile
            .then(|| out.profile().map(|p| p.with_cache_tier("cold").render()))
            .flatten();
        let relation = Arc::new(out.relation);
        if self.cache_mode != CacheMode::Off {
            if let Some(plan) = out.plan {
                let schema = ctx.snap.schema();
                let deps = Shared::dep_names(expr)
                    .into_iter()
                    .filter_map(|n| schema.arity_of(&n).map(|a| (n, a)))
                    .collect();
                self.plan_cache.insert(
                    expr.clone(),
                    PlanEntry {
                        plan,
                        deps,
                        stats_epoch: ctx.stats_epoch,
                    },
                );
            }
        }
        self.store_result(expr, &relation, ctx);
        let elapsed = started.elapsed();
        self.latency_cold.observe_duration(elapsed);
        span.attr("tier", "cold");
        span.attr("out_rows", relation.len());
        Ok(QueryResponse {
            relation,
            provenance: Provenance::Cold,
            epoch: ctx.snap.epoch(),
            elapsed,
            profile,
        })
    }

    /// Populate the result tier. The entry carries the stamps captured
    /// *before* execution: if a writer touched a dependency in the
    /// meantime, the stamps are already stale and every future hit
    /// attempt fails the comparison — the insert/sweep race is benign.
    fn store_result(&self, expr: &Expr, relation: &Arc<Relation>, ctx: &QueryCtx) {
        if self.cache_mode == CacheMode::PlanAndResult {
            self.result_cache.insert(
                expr.clone(),
                ResultEntry {
                    relation: relation.clone(),
                    deps: ctx.dep_stamps.clone(),
                },
            );
        }
    }

    /// Apply one write: mutate the master copy-on-write, stamp the
    /// touched relation, then sweep the caches eagerly (outside the
    /// write lock — stamp validation backstops the race).
    fn apply_write(&self, op: WriteOp) -> Result<u64, ServerError> {
        match op {
            WriteOp::Insert { relation, tuple } => {
                let epoch = {
                    let mut master = self.master.write().expect("master poisoned");
                    master.db.insert(&relation, tuple)?;
                    let epoch = master.db.epoch();
                    master.rel_epochs.insert(relation.clone(), epoch);
                    epoch
                };
                self.stats.bump_writes();
                // Inserts can't change arity: results referencing the
                // relation die, plans survive.
                self.sweep_results(&relation);
                Ok(epoch)
            }
            WriteOp::Set { relation, rows } => {
                let epoch = {
                    let mut master = self.master.write().expect("master poisoned");
                    master.db.set(relation.clone(), rows);
                    let epoch = master.db.epoch();
                    master.rel_epochs.insert(relation.clone(), epoch);
                    epoch
                };
                self.stats.bump_writes();
                // Replacement may change the schema: sweep both tiers.
                self.sweep_results(&relation);
                self.sweep_plans(&relation);
                Ok(epoch)
            }
            WriteOp::Remove { relation } => {
                let epoch = {
                    let mut master = self.master.write().expect("master poisoned");
                    if master.db.remove(&relation).is_none() {
                        return Err(ServerError::Storage(StorageError::UnknownRelation(
                            relation.clone(),
                        )));
                    }
                    let epoch = master.db.epoch();
                    master.rel_epochs.insert(relation.clone(), epoch);
                    epoch
                };
                self.stats.bump_writes();
                self.sweep_results(&relation);
                self.sweep_plans(&relation);
                Ok(epoch)
            }
            WriteOp::Analyze => {
                let snap = {
                    let mut master = self.master.write().expect("master poisoned");
                    master.stats_epoch += 1;
                    master.db.snapshot()
                };
                self.stats.bump_analyzes();
                // Refresh the shared catalog outside any lock; the
                // catalog's own Arc-identity check skips relations
                // whose analysis is already current.
                for name in snap.names().map(str::to_string).collect::<Vec<_>>() {
                    self.template.catalog().stats_for(snap.db(), &name);
                }
                // Plans were chosen under the old statistics; retire
                // them (lazily — the stats_epoch check on hit) and
                // eagerly so the capacity isn't wasted on dead entries.
                self.plan_cache.retain(|_, _| false);
                Ok(snap.epoch())
            }
        }
    }

    fn sweep_results(&self, relation: &str) {
        self.result_cache
            .retain(|_, e| !e.deps.iter().any(|(n, _)| n == relation));
    }

    fn sweep_plans(&self, relation: &str) {
        self.plan_cache
            .retain(|_, e| !e.deps.iter().any(|(n, _)| n == relation));
    }
}

/// One unit of queued work: a query plus its reply channel (and, for
/// transactional reads, the pinned snapshot context).
struct Job {
    expr: Expr,
    pinned: Option<TxnCtx>,
    /// Submitting session's id (per-session metric label).
    session: u64,
    /// Attach a rendered [`QueryProfile`] to the response.
    profile: bool,
    /// When the job entered the queue (queue-wait histogram).
    submitted: Instant,
    reply: SyncSender<Result<QueryResponse, ServerError>>,
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only while dequeuing, and poll with a
        // timeout so workers notice shutdown (sender dropped) promptly
        // even if a session handle still exists somewhere.
        let job = {
            let rx = rx.lock().expect("job queue poisoned");
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => job,
                Err(RecvTimeoutError::Timeout) => {
                    if shared.closed.load(Ordering::Relaxed) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let queue_wait = job.submitted.elapsed();
        shared.queue_wait.observe_duration(queue_wait);
        let session_label = job.session.to_string();
        shared
            .metrics
            .counter_with(
                "sj_server_session_queries_total",
                &[("session", &session_label)],
            )
            .inc();
        // The dispatch span parents both the snapshot capture
        // (`storage.snapshot`, opened inside `Database::snapshot`) and
        // the serving span (`server.query` and everything below it).
        let span = sj_obs::span!(
            "server.dispatch",
            session = job.session,
            queue_wait_us = queue_wait.as_micros() as u64
        );
        let ctx = shared.ctx_for(&job.expr, job.pinned.as_ref());
        let result = shared.run_query(&job.expr, &ctx, job.profile);
        drop(span);
        // A client that gave up (dropped its reply receiver) is fine.
        let _ = job.reply.send(result);
    }
}

/// The serving subsystem: a master database, a worker pool consuming a
/// bounded submission queue, and the two cache tiers. See the
/// [crate docs](crate) for the architecture.
pub struct Server {
    shared: Arc<Shared>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server over `db` with `config`: spawns the worker pool
    /// and returns immediately.
    pub fn start(db: Database, config: ServerConfig) -> Server {
        let cores = if config.cores == 0 {
            sj_setjoin::parallel::resolve_workers(0)
        } else {
            config.cores
        };
        let workers = if config.workers == 0 {
            cores
        } else {
            config.workers
        };
        // The scheduler decision: divide the core budget between
        // inter-query concurrency (`workers` pool threads) and
        // intra-query partition parallelism (each query's engine gets
        // the remaining share).
        let per = (cores / workers).max(1);
        let per_query = if per == 1 {
            Parallelism::Serial
        } else {
            Parallelism::Threads(per)
        };
        let template = Engine::new(Database::new())
            .optimize(config.optimize)
            .strategy(Strategy::Planned)
            .instrument(if config.instrument {
                Instrument::Cardinalities
            } else {
                Instrument::Off
            })
            .stats(config.stats)
            .parallelism(per_query)
            .execution(config.execution);
        let metrics = Arc::new(Metrics::new());
        let shared = Arc::new(Shared {
            master: RwLock::new(Master {
                db,
                rel_epochs: FxHashMap::default(),
                stats_epoch: 0,
            }),
            template,
            plan_cache: ExprCache::new(config.plan_cache_capacity),
            result_cache: ExprCache::new(config.result_cache_capacity),
            stats: ServerStats::new(metrics.clone()),
            latency_cold: metrics.histogram_with("sj_server_query_seconds", &[("tier", "cold")]),
            latency_plan: metrics
                .histogram_with("sj_server_query_seconds", &[("tier", "plan-cache")]),
            latency_result: metrics
                .histogram_with("sj_server_query_seconds", &[("tier", "result-cache")]),
            queue_wait: metrics.histogram("sj_server_queue_wait_seconds"),
            metrics,
            next_session: AtomicU64::new(0),
            cache_mode: config.cache,
            per_query,
            execution: config.execution,
            instrument: config.instrument,
            closed: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("sj-server-worker-{i}"))
                    .spawn(move || worker_loop(shared, rx))
                    .expect("spawn server worker")
            })
            .collect();
        Server {
            shared,
            tx: Some(tx),
            workers: handles,
        }
    }

    /// A new client session. Sessions are cheap handles (clone freely,
    /// move across threads); every session submits into the same
    /// bounded queue.
    pub fn session(&self) -> Session {
        Session {
            id: self.shared.next_session.fetch_add(1, Ordering::Relaxed) + 1,
            shared: self.shared.clone(),
            tx: self.tx.as_ref().expect("server running").clone(),
        }
    }

    /// Apply a write directly (equivalent to [`Session::write`]).
    pub fn write(&self, op: WriteOp) -> Result<u64, ServerError> {
        self.shared.apply_write(op)
    }

    /// A point-in-time snapshot of the master database.
    pub fn snapshot(&self) -> Snapshot {
        self.shared
            .master
            .read()
            .expect("master poisoned")
            .db
            .snapshot()
    }

    /// Aggregate serving metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Prometheus-style text exposition of every serving series:
    /// the [`ServerStats`] counters (`sj_server_*_total`), the
    /// per-tier latency histograms (`sj_server_query_seconds{tier=…}`),
    /// queue wait (`sj_server_queue_wait_seconds`), per-class and
    /// per-session query counters, and the running
    /// `sj_server_max_q_error` maximum.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.expose()
    }

    /// The shared metrics registry (e.g. to register extra series or
    /// read quantiles from the latency histograms directly).
    pub fn metrics(&self) -> Arc<Metrics> {
        self.shared.metrics.clone()
    }

    /// The intra-query parallelism every query runs with (the
    /// `cores / workers` scheduler split).
    pub fn per_query_parallelism(&self) -> Parallelism {
        self.shared.per_query
    }

    /// Worker-pool size.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Plan-tier entry count (introspection for tests/monitoring).
    pub fn plan_cache_len(&self) -> usize {
        self.shared.plan_cache.len()
    }

    /// Result-tier entry count.
    pub fn result_cache_len(&self) -> usize {
        self.shared.result_cache.len()
    }

    /// Stop accepting work, drain the workers, and return the final
    /// master database.
    pub fn shutdown(mut self) -> Database {
        self.stop();
        let shared = std::mem::replace(
            &mut self.shared,
            // `self`'s Drop runs after this; give it a dummy Shared so
            // the real one can be unwrapped below.
            Arc::new(Shared::closed_stub()),
        );
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.master.into_inner().expect("master poisoned").db,
            // A session handle still holds the Arc: fall back to a
            // snapshot of the final state.
            Err(shared) => shared
                .master
                .read()
                .expect("master poisoned")
                .db
                .snapshot()
                .into_db(),
        }
    }

    fn stop(&mut self) {
        // Dropping our sender disconnects the queue once every session
        // handle is gone; the closed flag covers the case where
        // sessions outlive the server — workers then exit on their
        // next poll tick instead of waiting for disconnection.
        self.shared.closed.store(true, Ordering::Relaxed);
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A client handle: submit queries (and writes) to the server. Cheap
/// to clone; safe to move to other threads. Each `Server::session`
/// call gets a fresh session id for the per-session metric series
/// (clones share their original's identity).
#[derive(Clone)]
pub struct Session {
    id: u64,
    shared: Arc<Shared>,
    tx: SyncSender<Job>,
}

impl Session {
    /// Run `expr` against a fresh snapshot, blocking while the bounded
    /// queue is full (backpressure) and until the answer arrives.
    pub fn query(&self, expr: Expr) -> Result<QueryResponse, ServerError> {
        self.submit(expr, None, true, false)
    }

    /// Like [`Session::query`], additionally attaching a rendered
    /// `EXPLAIN ANALYZE`-style profile ([`QueryResponse::profile`]):
    /// the per-node estimated-vs-actual breakdown for cold runs and
    /// plan-cache hits, the tier line alone for result-cache hits.
    pub fn query_profiled(&self, expr: Expr) -> Result<QueryResponse, ServerError> {
        self.submit(expr, None, true, true)
    }

    /// Like [`Session::query`] but **rejecting** instead of blocking
    /// when the queue is full — bounded admission for latency-critical
    /// callers.
    pub fn try_query(&self, expr: Expr) -> Result<QueryResponse, ServerError> {
        self.submit(expr, None, false, false)
    }

    /// Begin a snapshot-pinned read transaction: every query through
    /// the returned [`ReadTxn`] sees exactly the database state at this
    /// call, regardless of concurrent writers.
    pub fn begin(&self) -> ReadTxn {
        ReadTxn {
            session: self.clone(),
            ctx: self.shared.capture_txn(),
        }
    }

    /// Apply a write to the master database. Writes bypass the query
    /// queue: they serialize on the master lock and return as soon as
    /// the mutation (and cache sweep) is done. Returns the new
    /// database epoch.
    pub fn write(&self, op: WriteOp) -> Result<u64, ServerError> {
        self.shared.apply_write(op)
    }

    /// Aggregate serving metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    fn submit(
        &self,
        expr: Expr,
        pinned: Option<TxnCtx>,
        block: bool,
        profile: bool,
    ) -> Result<QueryResponse, ServerError> {
        if self.shared.closed.load(Ordering::Relaxed) {
            return Err(ServerError::Stopped);
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            expr,
            pinned,
            session: self.id,
            profile,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        if block {
            self.tx.send(job).map_err(|_| ServerError::Stopped)?;
        } else {
            match self.tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.shared.stats.bump_rejected();
                    return Err(ServerError::QueueFull);
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServerError::Stopped),
            }
        }
        reply_rx.recv().map_err(|_| ServerError::Stopped)?
    }
}

/// A snapshot-pinned read transaction (see [`Session::begin`]).
///
/// All queries run against the one [`Snapshot`] captured at `begin`:
/// concurrent writers keep mutating the master copy-on-write without
/// ever disturbing it. Cache tiers stay fully usable — entries are
/// only served when their stamps match the *pinned* state, so a hit
/// is always byte-identical to executing against the pinned snapshot
/// directly.
pub struct ReadTxn {
    session: Session,
    ctx: TxnCtx,
}

impl ReadTxn {
    /// Run `expr` against the pinned snapshot.
    pub fn query(&self, expr: Expr) -> Result<QueryResponse, ServerError> {
        self.session
            .submit(expr, Some(self.ctx.clone()), true, false)
    }

    /// The pinned snapshot (e.g. for differential checks against a
    /// direct [`Engine`] run).
    pub fn snapshot(&self) -> &Snapshot {
        &self.ctx.snap
    }

    /// The pinned snapshot's database epoch.
    pub fn epoch(&self) -> u64 {
        self.ctx.snap.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::division;
    use sj_storage::tuple;

    fn division_db() -> Database {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 8], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        db
    }

    fn config(workers: usize, cache: CacheMode) -> ServerConfig {
        ServerConfig {
            workers,
            cores: workers,
            cache,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn tiers_progress_cold_then_plan_then_result() {
        let server = Server::start(division_db(), config(2, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");
        let expected = Relation::from_int_rows(&[&[1]]);

        let first = session.query(e.clone()).unwrap();
        assert_eq!(*first.relation, expected);
        assert_eq!(first.provenance, Provenance::Cold);

        // Second submission: the result tier answers without executing.
        let second = session.query(e.clone()).unwrap();
        assert_eq!(second.provenance, Provenance::ResultCache);
        assert!(
            Arc::ptr_eq(&first.relation, &second.relation),
            "result-cache hits share the allocation"
        );

        // An insert into a referenced relation kills the result entry
        // but not the plan: the next run re-executes the cached plan.
        // Adding (2,8) completes 2's divisor set {7,8}.
        session
            .write(WriteOp::Insert {
                relation: "R".into(),
                tuple: tuple![2, 8],
            })
            .unwrap();
        let third = session.query(e.clone()).unwrap();
        assert_eq!(third.provenance, Provenance::PlanCache);
        assert_eq!(*third.relation, Relation::from_int_rows(&[&[1], &[2]]));

        // ...and the fresh result is cached again.
        let fourth = session.query(e.clone()).unwrap();
        assert_eq!(fourth.provenance, Provenance::ResultCache);

        let stats = server.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.plan_hits, 1);
        assert_eq!(stats.result_hits, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.cold(), 1);
    }

    #[test]
    fn writes_to_unrelated_relations_leave_results_cached() {
        let mut db = division_db();
        db.set("Other", Relation::from_int_rows(&[&[1, 1]]));
        let server = Server::start(db, config(1, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");
        session.query(e.clone()).unwrap();
        session
            .write(WriteOp::Insert {
                relation: "Other".into(),
                tuple: tuple![2, 2],
            })
            .unwrap();
        // The query reads only R and S: its result entry survives.
        assert_eq!(
            session.query(e).unwrap().provenance,
            Provenance::ResultCache
        );
    }

    #[test]
    fn analyze_retires_plans_but_keeps_results() {
        let server = Server::start(division_db(), config(1, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");
        session.query(e.clone()).unwrap();
        assert_eq!(server.plan_cache_len(), 1);
        session.write(WriteOp::Analyze).unwrap();
        assert_eq!(server.plan_cache_len(), 0, "ANALYZE retires plans");
        // Results don't depend on statistics: still a result hit.
        assert_eq!(
            session.query(e).unwrap().provenance,
            Provenance::ResultCache
        );
        assert_eq!(server.stats().analyzes, 1);
    }

    #[test]
    fn cache_off_is_always_cold_and_plan_mode_always_executes() {
        let e = division::division_double_difference("R", "S");
        let server = Server::start(division_db(), config(1, CacheMode::Off));
        let session = server.session();
        for _ in 0..3 {
            assert_eq!(
                session.query(e.clone()).unwrap().provenance,
                Provenance::Cold
            );
        }
        assert_eq!(server.plan_cache_len(), 0);
        assert_eq!(server.result_cache_len(), 0);

        let server = Server::start(division_db(), config(1, CacheMode::Plan));
        let session = server.session();
        assert_eq!(
            session.query(e.clone()).unwrap().provenance,
            Provenance::Cold
        );
        assert_eq!(
            session.query(e.clone()).unwrap().provenance,
            Provenance::PlanCache
        );
        assert_eq!(server.result_cache_len(), 0, "no result tier");
    }

    #[test]
    fn read_txn_pins_its_snapshot_across_writes() {
        let server = Server::start(division_db(), config(2, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");
        let txn = session.begin();
        let pinned_epoch = txn.epoch();

        // A writer shrinks the divisor set after the transaction began.
        session
            .write(WriteOp::Set {
                relation: "S".into(),
                rows: Relation::from_int_rows(&[&[7]]),
            })
            .unwrap();

        // The transaction still sees the old divisor…
        let pinned = txn.query(e.clone()).unwrap();
        assert_eq!(*pinned.relation, Relation::from_int_rows(&[&[1]]));
        assert_eq!(pinned.epoch, pinned_epoch);
        // …while a fresh query sees the new one: {7} ⊆ both 1 and 2.
        let fresh = session.query(e.clone()).unwrap();
        assert_eq!(*fresh.relation, Relation::from_int_rows(&[&[1], &[2]]));
        assert!(fresh.epoch > pinned_epoch);

        // Repeated txn queries are served (and cacheable) against the
        // pinned state, byte-identically.
        let again = txn.query(e).unwrap();
        assert_eq!(again.relation, pinned.relation);
        assert_eq!(again.epoch, pinned_epoch);
    }

    #[test]
    fn q_error_metric_surfaces_through_the_server() {
        let server = Server::start(division_db(), config(1, CacheMode::Off));
        let session = server.session();
        assert_eq!(server.stats().max_q_error_seen, None);
        session
            .query(division::division_double_difference("R", "S"))
            .unwrap();
        let q = server.stats().max_q_error_seen;
        assert!(q.is_some(), "instrumented cold query records q-error");
        assert!(q.unwrap() >= 1.0, "q-error is ≥ 1 by definition: {q:?}");
    }

    #[test]
    fn profiled_queries_carry_profiles_per_tier() {
        let server = Server::start(division_db(), config(1, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");

        let cold = session.query_profiled(e.clone()).unwrap();
        assert_eq!(cold.provenance, Provenance::Cold);
        let p = cold.profile.as_deref().unwrap();
        assert!(p.starts_with("profile:"), "{p}");
        assert!(p.contains("tier cold"), "{p}");
        assert!(p.contains("arity"), "per-node table present: {p}");

        // A result-cache hit ran no plan: tier line only.
        let hit = session.query_profiled(e.clone()).unwrap();
        assert_eq!(hit.provenance, Provenance::ResultCache);
        let p = hit.profile.as_deref().unwrap();
        assert!(p.contains("tier result-cache"), "{p}");
        assert!(!p.contains("arity"), "no nodes on a result hit: {p}");

        // Kill the result entry but keep the plan: the plan-cache hit
        // re-executes instrumented and carries the full breakdown.
        session
            .write(WriteOp::Insert {
                relation: "R".into(),
                tuple: tuple![2, 8],
            })
            .unwrap();
        let warm = session.query_profiled(e.clone()).unwrap();
        assert_eq!(warm.provenance, Provenance::PlanCache);
        let p = warm.profile.as_deref().unwrap();
        assert!(p.contains("tier plan-cache"), "{p}");
        assert!(p.contains("arity"), "{p}");
        assert_eq!(*warm.relation, Relation::from_int_rows(&[&[1], &[2]]));

        // Unprofiled submissions stay profile-free.
        assert!(session.query(e).unwrap().profile.is_none());
    }

    #[test]
    fn metrics_text_exposes_serving_series() {
        let server = Server::start(division_db(), config(1, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");
        session.query(e.clone()).unwrap();
        session.query(e.clone()).unwrap();
        session.write(WriteOp::Analyze).unwrap();
        let text = server.metrics_text();
        assert!(text.contains("sj_server_queries_total 2"), "{text}");
        assert!(
            text.contains("sj_server_cache_hits_total{tier=\"result\"} 1"),
            "{text}"
        );
        assert!(text.contains("sj_server_analyzes_total 1"), "{text}");
        assert!(
            text.contains("sj_server_queries_by_class_total{class="),
            "{text}"
        );
        assert!(
            text.contains("sj_server_session_queries_total{session=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sj_server_query_seconds_bucket{le=\"+Inf\",tier=\"cold\"} 1")
                || text.contains("sj_server_query_seconds_bucket{tier=\"cold\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sj_server_queue_wait_seconds_count 2"),
            "{text}"
        );
        assert!(text.contains("sj_server_max_q_error"), "{text}");
        // The exposition is stable between scrapes with no traffic.
        assert_eq!(server.metrics_text(), text);
    }

    #[test]
    fn errors_are_typed_and_writes_validate() {
        let server = Server::start(division_db(), config(1, CacheMode::PlanAndResult));
        let session = server.session();
        assert!(matches!(
            session.query(Expr::rel("NoSuch")),
            Err(ServerError::Eval(_))
        ));
        assert!(matches!(
            session.write(WriteOp::Insert {
                relation: "NoSuch".into(),
                tuple: tuple![1],
            }),
            Err(ServerError::Storage(_))
        ));
        assert!(matches!(
            session.write(WriteOp::Remove {
                relation: "NoSuch".into(),
            }),
            Err(ServerError::Storage(StorageError::UnknownRelation(_)))
        ));
        // Failed writes must not advance the write counter.
        assert_eq!(server.stats().writes, 0);
    }

    #[test]
    fn remove_then_query_misses_cache_and_errors() {
        let server = Server::start(division_db(), config(1, CacheMode::PlanAndResult));
        let session = server.session();
        let e = division::division_double_difference("R", "S");
        session.query(e.clone()).unwrap();
        session
            .write(WriteOp::Remove {
                relation: "S".into(),
            })
            .unwrap();
        assert_eq!(server.plan_cache_len(), 0, "plans on S swept");
        assert_eq!(server.result_cache_len(), 0, "results on S swept");
        assert!(matches!(session.query(e), Err(ServerError::Eval(_))));
    }

    #[test]
    fn shutdown_returns_the_final_database_and_stops_sessions() {
        let server = Server::start(division_db(), config(2, CacheMode::PlanAndResult));
        let session = server.session();
        session
            .write(WriteOp::Insert {
                relation: "S".into(),
                tuple: tuple![11],
            })
            .unwrap();
        let db = server.shutdown();
        assert_eq!(db.get("S").unwrap().len(), 3);
        assert!(matches!(
            session.query(Expr::rel("R")),
            Err(ServerError::Stopped)
        ));
    }

    #[test]
    fn scheduler_divides_cores_between_workers_and_partitions() {
        let server = Server::start(
            division_db(),
            ServerConfig {
                workers: 2,
                cores: 8,
                ..ServerConfig::default()
            },
        );
        assert_eq!(server.worker_count(), 2);
        assert_eq!(server.per_query_parallelism(), Parallelism::Threads(4));
        let server = Server::start(
            division_db(),
            ServerConfig {
                workers: 8,
                cores: 8,
                ..ServerConfig::default()
            },
        );
        assert_eq!(
            server.per_query_parallelism(),
            Parallelism::Serial,
            "all cores spent on inter-query concurrency"
        );
    }
}
