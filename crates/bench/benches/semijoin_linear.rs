//! E12 — the Example 3 lousy-bar query: SA= plan vs its lowered join plan
//! vs the cyclic query, on growing beer-drinkers data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::division;
use sj_bench::beer_database;
use sj_eval::evaluate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("semijoin_linear");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for k in [256i64, 1024, 4096] {
        let db = beer_database(k, 0xBEE5);
        for (name, plan) in [
            ("sa_semijoin", division::example3_lousy_bar_sa()),
            ("ra_lowered_join", division::example3_lousy_bar_ra()),
            ("cyclic_join", division::cyclic_beer_query_ra()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, k), &(&plan, &db), |b, (plan, db)| {
                b.iter(|| evaluate(plan, db).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
