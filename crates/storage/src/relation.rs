//! Set-semantics relations.

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A finite **set** of tuples of a fixed arity.
///
/// The paper's relations are sets (its Definition 15 measures size as
/// *cardinality*), so `Relation` maintains a canonical representation:
/// tuples are kept sorted and deduplicated at all times. Consequently
///
/// * structural equality (`==`) is set equality,
/// * membership is a binary search,
/// * iteration order is deterministic (lexicographic),
/// * the set operators union / difference / intersection are linear merges.
///
/// An arity-0 relation is either empty (`{}`, "false") or contains the empty
/// tuple (`{()}`, "true"); both are representable and behave correctly under
/// the set operations.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    arity: usize,
    /// Sorted, deduplicated.
    tuples: Vec<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Build a relation from tuples, canonicalizing (sort + dedup).
    ///
    /// Returns an error if some tuple has the wrong arity.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> crate::Result<Self> {
        let mut v: Vec<Tuple> = Vec::new();
        for t in tuples {
            if t.arity() != arity {
                return Err(StorageError::ArityMismatch {
                    expected: arity,
                    found: t.arity(),
                });
            }
            v.push(t);
        }
        v.sort_unstable();
        v.dedup();
        Ok(Relation { arity, tuples: v })
    }

    /// Build a relation from tuples **already in canonical order**
    /// (strictly increasing, hence deduplicated) without re-sorting.
    ///
    /// The merge-based physical operators in `sj-eval` produce their
    /// output in canonical order; this constructor lets them skip the
    /// `O(n log n)` canonicalization of [`Relation::from_tuples`]. The
    /// order claim is verified with a linear scan: input that is *not*
    /// strictly increasing is canonicalized (sorted + deduplicated)
    /// instead of silently breaking the representation invariant — the
    /// constructor is total, misuse merely forfeits the fast path. Arity
    /// agreement is debug-checked like the other trusted paths.
    pub fn from_sorted_tuples(arity: usize, mut tuples: Vec<Tuple>) -> Self {
        debug_assert!(
            tuples.iter().all(|t| t.arity() == arity),
            "from_sorted_tuples: arity mismatch"
        );
        if !tuples.windows(2).all(|w| w[0] < w[1]) {
            tuples.sort_unstable();
            tuples.dedup();
        }
        Relation { arity, tuples }
    }

    /// Build from rows of integers; arity inferred from the first row
    /// (0 rows ⇒ use [`Relation::empty`]). Panics on ragged rows — intended
    /// for tests and the paper-figure constants.
    pub fn from_int_rows(rows: &[&[i64]]) -> Self {
        let arity = rows.first().map_or(0, |r| r.len());
        Relation::from_tuples(arity, rows.iter().map(|r| Tuple::from_ints(r)))
            .expect("ragged integer rows")
    }

    /// Build from rows of strings; arity inferred from the first row.
    /// Panics on ragged rows — intended for tests and paper-figure constants.
    pub fn from_str_rows(rows: &[&[&str]]) -> Self {
        let arity = rows.first().map_or(0, |r| r.len());
        Relation::from_tuples(arity, rows.iter().map(|r| Tuple::from_strs(r)))
            .expect("ragged string rows")
    }

    /// Build an arity-1 relation out of single values.
    pub fn unary(values: impl IntoIterator<Item = Value>) -> Self {
        Relation::from_tuples(1, values.into_iter().map(|v| Tuple::new(vec![v])))
            .expect("unary tuples always have arity 1")
    }

    /// The relation's arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Cardinality — the paper's notion of relation *size* (Definition 15).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership (binary search over the canonical order).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// Insert a tuple, keeping the canonical order. Returns `true` if the
    /// tuple was new. Errors on arity mismatch.
    pub fn insert(&mut self, t: Tuple) -> crate::Result<bool> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                found: t.arity(),
            });
        }
        match self.tuples.binary_search(&t) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.tuples.insert(pos, t);
                Ok(true)
            }
        }
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match self.tuples.binary_search(t) {
            Ok(pos) => {
                self.tuples.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate tuples in canonical (sorted) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice (sorted, deduplicated).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Set union (arity must match). Linear merge of the two sorted runs.
    pub fn union(&self, other: &Relation) -> crate::Result<Relation> {
        self.check_same_arity(other)?;
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() && j < other.tuples.len() {
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.tuples[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.tuples[i..]);
        out.extend_from_slice(&other.tuples[j..]);
        Ok(Relation {
            arity: self.arity,
            tuples: out,
        })
    }

    /// Set difference `self − other` (arity must match).
    pub fn difference(&self, other: &Relation) -> crate::Result<Relation> {
        self.check_same_arity(other)?;
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() {
            if j >= other.tuples.len() {
                out.extend_from_slice(&self.tuples[i..]);
                break;
            }
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(Relation {
            arity: self.arity,
            tuples: out,
        })
    }

    /// Set intersection (arity must match).
    pub fn intersection(&self, other: &Relation) -> crate::Result<Relation> {
        self.check_same_arity(other)?;
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() && j < other.tuples.len() {
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(Relation {
            arity: self.arity,
            tuples: out,
        })
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples.iter().all(|t| other.contains(t))
    }

    /// All values occurring anywhere in the relation, sorted, deduplicated.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.tuples.iter().flat_map(|t| t.iter().cloned()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn check_same_arity(&self, other: &Relation) -> crate::Result<()> {
        if self.arity != other.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {{", self.arity)?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, "}})")
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(rows: &[&[i64]]) -> Relation {
        Relation::from_int_rows(rows)
    }

    #[test]
    fn canonicalization_dedups_and_sorts() {
        let a = r(&[&[2, 1], &[1, 2], &[2, 1]]);
        assert_eq!(a.len(), 2);
        let tuples: Vec<_> = a.iter().cloned().collect();
        assert_eq!(
            tuples,
            vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 1])]
        );
    }

    #[test]
    fn set_equality_ignores_input_order() {
        assert_eq!(r(&[&[1], &[2]]), r(&[&[2], &[1]]));
    }

    #[test]
    fn from_sorted_tuples_trusts_sorted_and_repairs_unsorted() {
        let sorted = vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 1])];
        let a = Relation::from_sorted_tuples(2, sorted);
        assert_eq!(a, r(&[&[1, 2], &[2, 1]]));
        // Unsorted / duplicated input is canonicalized, not trusted.
        let unsorted = vec![
            Tuple::from_ints(&[2, 1]),
            Tuple::from_ints(&[1, 2]),
            Tuple::from_ints(&[2, 1]),
        ];
        let b = Relation::from_sorted_tuples(2, unsorted);
        assert_eq!(b, a);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn arity_checked_on_build_and_insert() {
        let e = Relation::from_tuples(2, vec![Tuple::from_ints(&[1])]);
        assert!(matches!(
            e,
            Err(StorageError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
        let mut a = Relation::empty(1);
        assert!(a.insert(Tuple::from_ints(&[1, 2])).is_err());
    }

    #[test]
    fn insert_remove_contains() {
        let mut a = Relation::empty(2);
        assert!(a.insert(tuple![1, 2]).unwrap());
        assert!(!a.insert(tuple![1, 2]).unwrap());
        assert!(a.contains(&tuple![1, 2]));
        assert!(!a.contains(&tuple![2, 1]));
        assert!(a.remove(&tuple![1, 2]));
        assert!(!a.remove(&tuple![1, 2]));
        assert!(a.is_empty());
    }

    #[test]
    fn union_difference_intersection() {
        let a = r(&[&[1], &[2], &[3]]);
        let b = r(&[&[2], &[4]]);
        assert_eq!(a.union(&b).unwrap(), r(&[&[1], &[2], &[3], &[4]]));
        assert_eq!(a.difference(&b).unwrap(), r(&[&[1], &[3]]));
        assert_eq!(a.intersection(&b).unwrap(), r(&[&[2]]));
        assert_eq!(b.difference(&a).unwrap(), r(&[&[4]]));
    }

    #[test]
    fn set_ops_reject_arity_mismatch() {
        let a = Relation::empty(1);
        let b = Relation::empty(2);
        assert!(a.union(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.intersection(&b).is_err());
    }

    #[test]
    fn subset() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[1], &[2], &[3]]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Relation::empty(1).is_subset_of(&a));
        assert!(!Relation::empty(2).is_subset_of(&a));
    }

    #[test]
    fn nullary_relations() {
        let f = Relation::empty(0);
        let t = Relation::from_tuples(0, vec![Tuple::empty()]).unwrap();
        assert_eq!(f.len(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.union(&f).unwrap(), t);
        assert_eq!(t.difference(&t).unwrap(), f);
    }

    #[test]
    fn active_domain_sorted() {
        let a = r(&[&[3, 1], &[2, 3]]);
        assert_eq!(
            a.active_domain(),
            vec![Value::int(1), Value::int(2), Value::int(3)]
        );
    }

    #[test]
    fn unary_builder() {
        let a = Relation::unary(vec![Value::int(7), Value::int(8), Value::int(7)]);
        assert_eq!(a, r(&[&[7], &[8]]));
    }

    #[test]
    fn str_rows() {
        let a = Relation::from_str_rows(&[&["an", "headache"], &["bob", "sore throat"]]);
        assert_eq!(a.arity(), 2);
        assert!(a.contains(&tuple!["an", "headache"]));
    }
}
