//! Inverted-index set-containment join (the PSJ/"the good" family of
//! Ramasamy, Patel, Naughton & Kaushik, VLDB 2000 — reference \[16\] of the
//! paper).
//!
//! Build an inverted index from element → the (sorted) list of left groups
//! whose set contains that element. For a right group with element set
//! `D = {d₁, …, d_m}`, the qualifying left groups are exactly
//! `⋂ᵢ postings(dᵢ)` — computed by intersecting the posting lists
//! rarest-first, so highly selective elements prune early. No separate
//! verification pass is needed: the intersection *is* the answer.
//!
//! Worst case remains quadratic (the paper: nothing better is known), but
//! on workloads where sets share few elements this is the practical
//! winner — the benchmark compares it against nested loops and signatures.

use crate::setjoin::group_sets;
use sj_storage::{FxHashMap, Relation, Tuple, Value};

/// Set-containment join `R ⋈_{B ⊇ D} S` via an inverted index on the left
/// groups' elements.
pub fn inverted_index_set_join(r: &Relation, s: &Relation) -> Relation {
    let rg = group_sets(r);
    let sg = group_sets(s);
    // postings: element → ascending left-group indices.
    let mut postings: FxHashMap<&Value, Vec<usize>> = FxHashMap::default();
    for (gi, (_, b_set)) in rg.iter().enumerate() {
        for v in b_set {
            postings.entry(v).or_default().push(gi);
        }
    }
    let mut out: Vec<Tuple> = Vec::new();
    let empty: Vec<usize> = Vec::new();
    for (c, d_set) in &sg {
        if d_set.is_empty() {
            // ∅ ⊆ everything (cannot occur via group_sets, but be total).
            for (a, _) in &rg {
                out.push(Tuple::new(vec![a.clone(), c.clone()]));
            }
            continue;
        }
        // Posting lists, rarest first; a missing element kills the group.
        let mut lists: Vec<&Vec<usize>> = Vec::with_capacity(d_set.len());
        let mut dead = false;
        for v in d_set {
            match postings.get(v) {
                Some(l) => lists.push(l),
                None => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            continue;
        }
        lists.sort_by_key(|l| l.len());
        let mut candidates: Vec<usize> = lists.first().unwrap_or(&&empty).to_vec();
        for l in lists.iter().skip(1) {
            candidates = intersect_sorted(&candidates, l);
            if candidates.is_empty() {
                break;
            }
        }
        for gi in candidates {
            out.push(Tuple::new(vec![rg[gi].0.clone(), c.clone()]));
        }
    }
    Relation::from_tuples(2, out).expect("binary output")
}

/// Intersection of two ascending index lists.
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setjoin::{nested_loop_set_join, SetPredicate};

    #[test]
    fn fig1_join_via_inverted_index() {
        let person = Relation::from_str_rows(&[
            &["An", "headache"],
            &["An", "sore throat"],
            &["An", "neck pain"],
            &["Bob", "headache"],
            &["Bob", "sore throat"],
            &["Bob", "memory loss"],
            &["Bob", "neck pain"],
            &["Carol", "headache"],
        ]);
        let disease = Relation::from_str_rows(&[
            &["flu", "headache"],
            &["flu", "sore throat"],
            &["Lyme", "headache"],
            &["Lyme", "sore throat"],
            &["Lyme", "memory loss"],
            &["Lyme", "neck pain"],
        ]);
        assert_eq!(
            inverted_index_set_join(&person, &disease),
            nested_loop_set_join(&person, &disease, SetPredicate::Contains)
        );
    }

    #[test]
    fn missing_element_prunes_whole_group() {
        let r = Relation::from_int_rows(&[&[1, 10], &[1, 11]]);
        let s = Relation::from_int_rows(&[&[5, 10], &[5, 99]]);
        assert!(inverted_index_set_join(&r, &s).is_empty());
    }

    #[test]
    fn multiple_matches() {
        let r = Relation::from_int_rows(&[
            &[1, 10],
            &[1, 11],
            &[1, 12],
            &[2, 10],
            &[2, 11],
            &[3, 11],
            &[3, 12],
        ]);
        let s = Relation::from_int_rows(&[&[7, 10], &[7, 11], &[8, 11]]);
        let got = inverted_index_set_join(&r, &s);
        assert_eq!(
            got,
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[2, 8], &[3, 8]])
        );
    }

    #[test]
    fn empty_operands() {
        let e = Relation::empty(2);
        let r = Relation::from_int_rows(&[&[1, 10]]);
        assert!(inverted_index_set_join(&e, &r).is_empty());
        assert!(inverted_index_set_join(&r, &e).is_empty());
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<usize>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }
}
