//! End-to-end guarded-fragment pipeline: GF text → parse → guardedness
//! check → Theorem 8 translation → optimizer → evaluation, cross-checked
//! against direct model-theoretic semantics.

use setjoins::prelude::*;
use sj_eval::evaluate;
use sj_logic::{eval_query, gf_to_sa, parse_formula, sa_to_gf, to_ascii};
use sj_workload::figures;

#[test]
fn gf_text_to_answers() {
    let db = figures::example3_beer_db();
    let schema = db.schema();
    // The lousy-bar query, arriving as text.
    let text = "exists y (Visits(x,y) & !(exists z (Serves(y,z) & \
                exists w (Likes(w,z) & true))))";
    let phi = parse_formula(text).unwrap();
    phi.check_guarded().unwrap();

    // Translate to SA=, optimize, evaluate.
    let q = gf_to_sa(&phi, &schema, &[]).unwrap();
    let optimized = sj_algebra::optimize(&q.expr, &schema).unwrap();
    let via_algebra = evaluate(&optimized, &db).unwrap();

    // Direct semantics.
    let direct = eval_query(&db, &phi, &q.free_vars, &db.active_domain());
    assert_eq!(via_algebra.tuples().to_vec(), direct);
    assert_eq!(via_algebra, Relation::from_str_rows(&[&["an"], &["eve"]]));
}

#[test]
fn sa_to_gf_to_text_and_back() {
    // SA= → GF → ASCII → parse: the formula survives the text round trip
    // and still answers the original query.
    let db = figures::example3_beer_db();
    let schema = db.schema();
    let e = sj_algebra::division::example3_lousy_bar_sa();
    let gf = sa_to_gf(&e, &schema).unwrap();
    let text = to_ascii(&gf.formula);
    let reparsed = parse_formula(&text).unwrap();
    assert_eq!(reparsed, gf.formula);
    let answers = eval_query(&db, &reparsed, &gf.free_vars, &db.active_domain());
    assert_eq!(answers, evaluate(&e, &db).unwrap().tuples().to_vec());
}

#[test]
fn gf_with_constants_pipeline() {
    // A formula with a constant: drinkers of 'nectar' specifically.
    let db = figures::example3_beer_db();
    let schema = db.schema();
    let phi = parse_formula("exists y (Likes(x,y) & y='nectar')").unwrap();
    phi.check_guarded().unwrap();
    let consts = phi.constants();
    assert_eq!(consts, vec![Value::str("nectar")]);
    let q = gf_to_sa(&phi, &schema, &consts).unwrap();
    let out = evaluate(&q.expr, &db).unwrap();
    assert_eq!(out, Relation::from_str_rows(&[&["bob"]]));
}

#[test]
fn unguarded_text_rejected() {
    // Syntactically fine, semantically unguarded: z free in the body but
    // not in the guard.
    let phi = parse_formula("exists y (Visits(x,y) & y=z)").unwrap();
    assert!(phi.check_guarded().is_err());
    let schema = figures::example3_beer_db().schema();
    assert!(gf_to_sa(&phi, &schema, &[]).is_err());
}

#[test]
fn boolean_connectives_through_translation() {
    // Implication and biconditional survive the desugaring translation.
    let db = figures::example3_beer_db();
    let schema = db.schema();
    for text in [
        "Likes(x,y) -> Serves(y,x)",
        "Likes(x,y) <-> Likes(x,y)",
        "!(Likes(x,y)) | Likes(x,y)",
    ] {
        let phi = parse_formula(text).unwrap();
        let consts = phi.constants();
        let q = gf_to_sa(&phi, &schema, &consts).unwrap();
        let got = evaluate(&q.expr, &db).unwrap();
        // Expected: C-stored tuples satisfying the formula.
        let mut cands = db.active_domain();
        cands.push(Value::str("zz-outside"));
        let sat = eval_query(&db, &phi, &q.free_vars, &cands);
        let want: Vec<Tuple> = sat
            .into_iter()
            .filter(|t| sj_logic::is_c_stored(&db, t, &consts))
            .collect();
        assert_eq!(got.tuples().to_vec(), want, "{text}");
    }
}
