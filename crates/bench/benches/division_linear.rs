//! E9 — the Section 5 grouping/counting expression across scales: linear,
//! in contrast with every plain-RA plan (E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::division;
use sj_eval::evaluate;
use sj_workload::adversarial_division_series;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scales = [64usize, 256, 1024, 4096];
    let series = adversarial_division_series(&scales, 0xE9);
    let mut group = c.benchmark_group("division_linear");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (scale, db) in scales.iter().zip(&series) {
        for (name, plan) in [
            ("counting", division::division_counting("R", "S")),
            (
                "counting_equality",
                division::division_equality_counting("R", "S"),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, scale),
                &(&plan, db),
                |b, (plan, db)| b.iter(|| evaluate(plan, db).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
