//! `Query::explain` + the semijoin-reduction optimizer: watch the paper's
//! theory fix a real plan, all through one [`Engine`].
//!
//! The engine unifies what used to be two explain flavors: under
//! `Strategy::Naive` it renders the expression tree with actual
//! cardinalities (`EXPLAIN ANALYZE`), under `Strategy::Planned` the
//! memoized physical DAG with operator choices (`EXPLAIN`).
//!
//! ```bash
//! cargo run --example explain_and_optimize
//! ```

use setjoins::prelude::*;
use sj_workload::DivisionWorkload;

fn main() {
    let db = DivisionWorkload {
        groups: 200,
        divisor_size: 8,
        containment_fraction: 0.3,
        extra_per_group: 4,
        noise_domain: 256,
        seed: 7,
    }
    .database();

    // Two engines over the same data: one runs plans exactly as written,
    // one applies the full optimizer pipeline (semijoin reduction,
    // selection pushdown, projection pruning).
    let raw = Engine::new(db.clone()).strategy(Strategy::Naive);
    let optimized = raw.clone().optimize(OptimizeLevel::Full);

    // A join plan a naive planner might emit for "A-values related to
    // some divisor value": join then project the left columns.
    let naive_plan = Expr::rel("R")
        .join(Condition::eq(2, 1), Expr::rel("S"))
        .project([1]);
    println!("== naive plan ==\n{naive_plan}\n");
    println!("{}", raw.query(naive_plan.clone()).explain().unwrap());

    // The optimizer recognizes the projection only keeps left columns and
    // rewrites the join into a semijoin (the paper's linear core).
    let q = optimized.query(naive_plan.clone());
    println!("== optimized plan ==\n{}\n", q.optimized().unwrap());
    println!("{}", q.explain().unwrap());

    assert_eq!(
        raw.query(naive_plan.clone()).run().unwrap().relation,
        q.run().unwrap().relation
    );

    // The planned strategy explains the physical DAG instead — operator
    // choices (hash vs merge vs nested-loop) and memoized sharing.
    println!("== physical DAG of the optimized plan ==");
    println!(
        "{}",
        optimized
            .clone()
            .strategy(Strategy::Planned)
            .query(naive_plan)
            .explain()
            .unwrap()
    );

    // Division, though, cannot be fixed this way: Proposition 26 says the
    // quadratic node is unavoidable in plain RA.
    let division = sj_algebra::division::division_double_difference("R", "S");
    println!("== division plan (quadratic by Proposition 26) ==\n{division}\n");
    println!("{}", raw.query(division.clone()).explain().unwrap());
    println!(
        "after optimization the largest intermediate remains (the product \
         feeds a difference, not a projection):"
    );
    println!("{}", optimized.query(division).explain().unwrap());
    println!(
        "the only escape is leaving RA: grouping+counting (Section 5) or a \
         direct division operator — `Engine::divide`, which routes through \
         the linear algorithms of the registry."
    );
}
