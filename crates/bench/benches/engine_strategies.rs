//! Engine facade overhead and strategy ablation.
//!
//! The `Engine` adds a layer (builder config, optimizer pipeline dispatch,
//! registry lookup) over the free functions; this bench pins that layer's
//! cost to ~nothing and records the Planned-vs-Naive-vs-Reference strategy
//! spread on the division workload, plus registry-routed division against
//! the direct call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::division;
use sj_eval::{evaluate_planned, Engine, Strategy};
use sj_setjoin::DivisionSemantics;
use sj_workload::DivisionWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_strategies");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for groups in [256usize, 1024] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xE46,
        };
        let db = w.database();
        let e = division::division_double_difference("R", "S");
        // Baseline: the free function the engine wraps.
        group.bench_with_input(BenchmarkId::new("free_planned", groups), &db, |b, db| {
            b.iter(|| evaluate_planned(&e, db).unwrap())
        });
        for (name, strategy) in [
            ("engine_planned", Strategy::Planned),
            ("engine_naive", Strategy::Naive),
        ] {
            let engine = Engine::new(db.clone()).strategy(strategy);
            group.bench_with_input(BenchmarkId::new(name, groups), &engine, |b, engine| {
                b.iter(|| engine.query(e.clone()).run().unwrap())
            });
        }
        // Registry-routed division (auto selector) vs the direct operator.
        let engine = Engine::new(db.clone());
        group.bench_with_input(
            BenchmarkId::new("engine_divide_auto", groups),
            &engine,
            |b, engine| {
                b.iter(|| {
                    engine
                        .divide("R", "S", DivisionSemantics::Containment)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("free_divide", groups), &db, |b, db| {
            b.iter(|| {
                sj_setjoin::divide(
                    db.get("R").unwrap(),
                    db.get("S").unwrap(),
                    DivisionSemantics::Containment,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
