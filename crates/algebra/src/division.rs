//! Classical relational-algebra plans for division, set joins, and the
//! paper's running example queries.
//!
//! These are the *expressions* whose intermediate-result complexity the
//! paper analyzes. Proposition 26 shows every RA expression for division is
//! quadratic; Section 5 shows the grouping/counting expression is linear.
//! Both are constructed here so the experiments can measure them.
//!
//! Conventions: the dividend `R(A, B)` is binary (column 1 = A, column 2 =
//! B), the divisor `S(B)` is unary, and set-join operands are binary
//! `R(A, B)`, `S(C, D)`.

use crate::condition::Condition;
use crate::expr::Expr;

/// The textbook "double difference" RA plan for containment division
/// `R(A,B) ÷ S(B)`:
///
/// ```text
/// π₁(R) − π₁((π₁(R) × S) − R)
/// ```
///
/// `π₁(R) × S` enumerates every (A-value, required-B) pair; subtracting `R`
/// leaves the *missing* pairs; their A-values are disqualified. The
/// cartesian product makes the plan inherently quadratic — by Proposition 26
/// this is not an accident of this plan but holds for **every** RA plan.
pub fn division_double_difference(r: &str, s: &str) -> Expr {
    let candidates = Expr::rel(r).project([1]);
    let missing = candidates
        .clone()
        .product(Expr::rel(s))
        .diff(Expr::rel(r))
        .project([1]);
    candidates.diff(missing)
}

/// A join-flavoured variant of the classical division plan that avoids the
/// bare cartesian product in favour of a join with an inequality — still
/// quadratic (as Theorem 17 predicts for any correct plan):
///
/// ```text
/// π₁(R) − π₁(σ-missing pairs via ⋈)
/// ```
///
/// Concretely: pair every candidate with every divisor value using a join
/// on the always-true condition, then remove realized pairs. This is the
/// same plan shape as [`division_double_difference`] but exercises the
/// `Join` code path with an explicit (trivial) condition, so the
/// instrumented evaluator reports the blow-up at a `join` node rather than
/// a `product` node.
pub fn division_via_join(r: &str, s: &str) -> Expr {
    let candidates = Expr::rel(r).project([1]);
    let all_pairs = candidates.clone().join(Condition::always(), Expr::rel(s));
    let realized = Expr::rel(r);
    candidates.diff(all_pairs.diff(realized).project([1]))
}

/// Equality division `R ÷₌ S`: A-values whose B-set is **equal** to S.
/// Derived from containment division by removing A-values that also relate
/// to some B outside S:
///
/// ```text
/// (R ÷⊇ S) − π₁(R − (π₁(R) × S))
/// ```
pub fn division_equality(r: &str, s: &str) -> Expr {
    let extras = Expr::rel(r)
        .diff(Expr::rel(r).project([1]).product(Expr::rel(s)))
        .project([1]);
    division_double_difference(r, s).diff(extras)
}

/// The paper's Section 5 **linear** expression for containment division in
/// the extended algebra with grouping and counting:
///
/// ```text
/// π_A( γ_{A, count(B)}(R ⋈_{B=C} S)  ⋈_{count(B)=count(C)}  γ_{∅, count(C)}(S) )
/// ```
///
/// An A-value divides iff the number of its B's that fall inside S equals
/// |S|. Every intermediate here is at most the input size (the join with
/// the unary relation `S` is a semijoin-like filter), so the expression is
/// linear — the contrast with Proposition 26 that motivates set-join
/// specific operators.
pub fn division_counting(r: &str, s: &str) -> Expr {
    let matched_counts = Expr::rel(r)
        .join(Condition::eq(2, 1), Expr::rel(s))
        .group_count([1]);
    let divisor_count = Expr::rel(s).group_count([]);
    matched_counts
        .join(Condition::eq(2, 1), divisor_count)
        .project([1])
}

/// Section 5 analogue for **equality** division with grouping/counting:
/// additionally require that *all* of an A-value's B's fall inside S, i.e.
/// the A-group count in R equals the A-group count in `R ⋈ S`:
///
/// ```text
/// π_A( (γ_{A,count}(R ⋈_{B=C} S) ⋈_{A=A ∧ cnt=cnt} γ_{A,count}(R)) ⋈_{cnt=cnt} γ_{∅,count}(S) )
/// ```
pub fn division_equality_counting(r: &str, s: &str) -> Expr {
    let matched_counts = Expr::rel(r)
        .join(Condition::eq(2, 1), Expr::rel(s))
        .group_count([1]); // (A, matched)
    let total_counts = Expr::rel(r).group_count([1]); // (A, total)
    let same = matched_counts.join(Condition::eq_pairs([(1, 1), (2, 2)]), total_counts);
    // (A, matched, A, total) with matched = total
    let divisor_count = Expr::rel(s).group_count([]); // (|S|)
    same.join(Condition::eq(2, 1), divisor_count).project([1])
}

/// The classical RA plan for the **set-containment join**
/// `R(A,B) ⋈_{B⊇D} S(C,D)`, returning pairs `(a, c)` with
/// `{b | R(a,b)} ⊇ {d | S(c,d)}`:
///
/// ```text
/// (π₁R × π₁S) − π₁,₂( (π₁R × S) − π₁,₂,₃((π₁R × S) ⋈_{1=1 ∧ 3=2} R) )
/// ```
///
/// `π₁R × S` enumerates the *requirements* (a, c, d); joining back to `R`
/// keeps the satisfied ones; the difference yields violated requirements
/// whose (a, c) pairs are removed from all candidate pairs.
pub fn set_containment_join_plan(r: &str, s: &str) -> Expr {
    let all_pairs = Expr::rel(r).project([1]).product(Expr::rel(s).project([1]));
    let requirements = Expr::rel(r).project([1]).product(Expr::rel(s));
    let satisfied = requirements
        .clone()
        .join(Condition::eq_pairs([(1, 1), (3, 2)]), Expr::rel(r))
        .project([1, 2, 3]);
    let violated = requirements.diff(satisfied);
    all_pairs.diff(violated.project([1, 2]))
}

/// The classical RA plan for the **set-equality join**
/// `R(A,B) ⋈_{B=D} S(C,D)`: containment in both directions.
pub fn set_equality_join_plan(r: &str, s: &str) -> Expr {
    // (a, c) with B-set ⊇ D-set
    let forward = set_containment_join_plan(r, s);
    // (c, a) with D-set ⊇ B-set, then swapped to (a, c)
    let backward = set_containment_join_plan(s, r).project([2, 1]);
    forward.intersect(backward)
}

/// Example 3 of the paper (SA= form): drinkers that visit a *lousy* bar —
/// a bar serving only beers nobody likes.
///
/// ```text
/// π₁( Visits ⋉₂₌₁ ( π₁(Serves) − π₁(Serves ⋉₂₌₂ Likes) ) )
/// ```
pub fn example3_lousy_bar_sa() -> Expr {
    Expr::rel("Visits")
        .semijoin(
            Condition::eq(2, 1),
            Expr::rel("Serves").project([1]).diff(
                Expr::rel("Serves")
                    .semijoin(Condition::eq(2, 2), Expr::rel("Likes"))
                    .project([1]),
            ),
        )
        .project([1])
}

/// The same lousy-bar query written with joins instead of semijoins
/// (a linear RA expression — each semijoin is replaced following the
/// paper's note under Theorem 18).
pub fn example3_lousy_bar_ra() -> Expr {
    let liked_beers = Expr::rel("Likes").project([2]);
    let bars_serving_liked = Expr::rel("Serves")
        .join(Condition::eq(2, 1), liked_beers)
        .project([1]);
    let lousy = Expr::rel("Serves").project([1]).diff(bars_serving_liked);
    Expr::rel("Visits")
        .join(Condition::eq(2, 1), lousy)
        .project([1])
}

/// The cyclic query Q of Section 4.1: *drinkers that visit a bar that
/// serves a beer they like* — not expressible in SA=, hence quadratic in RA
/// (the paper's second application).
///
/// ```text
/// π₁( (Visits ⋈₂₌₁ Serves) ⋈_{1=1 ∧ 4=2} Likes )
/// ```
pub fn cyclic_beer_query_ra() -> Expr {
    Expr::rel("Visits")
        .join(Condition::eq(2, 1), Expr::rel("Serves"))
        // columns now: (drinker, bar, bar, beer)
        .join(Condition::eq_pairs([(1, 1), (4, 2)]), Expr::rel("Likes"))
        .project([1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::Schema;

    fn div_schema() -> Schema {
        Schema::new([("R", 2), ("S", 1)])
    }

    fn setjoin_schema() -> Schema {
        Schema::new([("R", 2), ("S", 2)])
    }

    fn beer_schema() -> Schema {
        Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)])
    }

    #[test]
    fn division_plans_are_well_formed_ra() {
        let s = div_schema();
        for e in [
            division_double_difference("R", "S"),
            division_via_join("R", "S"),
            division_equality("R", "S"),
        ] {
            assert_eq!(e.arity(&s).unwrap(), 1, "{e}");
            assert!(e.is_ra(), "{e}");
            assert!(e.is_ra_eq(), "{e}");
        }
    }

    #[test]
    fn counting_plans_are_extended_and_unary() {
        let s = div_schema();
        for e in [
            division_counting("R", "S"),
            division_equality_counting("R", "S"),
        ] {
            assert_eq!(e.arity(&s).unwrap(), 1, "{e}");
            assert!(e.is_extended(), "{e}");
        }
    }

    #[test]
    fn set_join_plans_are_binary_ra() {
        let s = setjoin_schema();
        for e in [
            set_containment_join_plan("R", "S"),
            set_equality_join_plan("R", "S"),
        ] {
            assert_eq!(e.arity(&s).unwrap(), 2, "{e}");
            assert!(e.is_ra(), "{e}");
        }
    }

    #[test]
    fn example3_fragments() {
        let s = beer_schema();
        let sa = example3_lousy_bar_sa();
        assert!(sa.is_sa_eq());
        assert_eq!(sa.arity(&s).unwrap(), 1);
        let ra = example3_lousy_bar_ra();
        assert!(ra.is_ra_eq());
        assert_eq!(ra.arity(&s).unwrap(), 1);
    }

    #[test]
    fn cyclic_query_is_ra_eq_unary() {
        let e = cyclic_beer_query_ra();
        assert!(e.is_ra_eq());
        assert_eq!(e.arity(&beer_schema()).unwrap(), 1);
    }
}
