//! E7 — evaluation time of linear vs quadratic plans on the adversarial
//! division family (Theorem 17 as wall-clock: the quadratic side's curve
//! bends away).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::{division, Condition, Expr};
use sj_eval::evaluate;
use sj_workload::adversarial_division_series;
use std::time::Duration;

fn bench_dichotomy(c: &mut Criterion) {
    let scales = [64usize, 128, 256, 512];
    let series = adversarial_division_series(&scales, 0xC0FFEE);
    let plans: Vec<(&str, Expr)> = vec![
        (
            "quadratic/double_difference",
            division::division_double_difference("R", "S"),
        ),
        ("quadratic/product", Expr::rel("R").product(Expr::rel("S"))),
        (
            "linear/semijoin",
            Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
        ),
        (
            "linear/fk_join",
            Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
        ),
        ("linear/counting", division::division_counting("R", "S")),
    ];
    let mut group = c.benchmark_group("dichotomy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (scale, db) in scales.iter().zip(&series) {
        for (name, plan) in &plans {
            group.bench_with_input(
                BenchmarkId::new(*name, scale),
                &(plan, db),
                |b, (plan, db)| b.iter(|| evaluate(plan, db).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dichotomy);
criterion_main!(benches);
