//! Cross-crate dichotomy experiments (E7, E8, E9, E12 of DESIGN.md):
//! measured growth exponents confirm the Theorem 17 dichotomy, the
//! Proposition 26 quadratic lower bound for RA division plans, the
//! linearity of the Section 5 counting expression, and the linearity of
//! SA= plans.

use setjoins::prelude::*;
use sj_core::{analyze, measure_growth, Verdict};
use sj_eval::evaluate;
use sj_workload::{adversarial_division_series, DivisionWorkload};

fn series() -> Vec<Database> {
    // The adversarial family: |D| = Θ(k), product node Θ(k²).
    adversarial_division_series(&[16, 32, 64, 128], 7)
}

/// E8 — every classical RA division plan is measured quadratic: the
/// fitted exponent of the max intermediate size is ≈ 2 on a linear-size
/// workload family.
#[test]
fn ra_division_plans_measured_quadratic() {
    let series = series();
    for (name, plan) in [
        (
            "double-difference",
            sj_algebra::division::division_double_difference("R", "S"),
        ),
        (
            "via-join",
            sj_algebra::division::division_via_join("R", "S"),
        ),
        (
            "equality",
            sj_algebra::division::division_equality("R", "S"),
        ),
    ] {
        let report = measure_growth(&plan, &series).unwrap();
        assert!(
            report.exponent > 1.7,
            "{name}: exponent {} not quadratic",
            report.exponent
        );
        assert_eq!(report.classification(), "quadratic-like", "{name}");
    }
}

/// E9 — the Section 5 counting expression is measured linear (its
/// intermediates never exceed |D| + a constant).
#[test]
fn counting_division_measured_linear() {
    let series = series();
    for (name, plan) in [
        (
            "counting",
            sj_algebra::division::division_counting("R", "S"),
        ),
        (
            "counting-eq",
            sj_algebra::division::division_equality_counting("R", "S"),
        ),
    ] {
        let report = measure_growth(&plan, &series).unwrap();
        assert!(
            report.exponent < 1.3,
            "{name}: exponent {} not linear",
            report.exponent
        );
        for p in &report.points {
            assert!(
                p.max_intermediate <= p.db_size + 2,
                "{name}: intermediate {} exceeds |D| {}",
                p.max_intermediate,
                p.db_size
            );
        }
    }
}

/// E9 — correctness at every scale: the counting expression and the
/// quadratic plan compute the same quotient, which matches the workload's
/// expected winners and the direct algorithms.
#[test]
fn all_division_routes_agree_on_workloads() {
    for groups in [8usize, 32, 96] {
        let w = DivisionWorkload {
            groups,
            divisor_size: 5,
            containment_fraction: 0.4,
            extra_per_group: 3,
            noise_domain: 64,
            seed: groups as u64 * 31,
        };
        let (r, s, expected) = w.generate();
        let mut db = Database::new();
        db.set("R", r.clone());
        db.set("S", s.clone());
        let dd = evaluate(
            &sj_algebra::division::division_double_difference("R", "S"),
            &db,
        )
        .unwrap();
        let cnt = evaluate(&sj_algebra::division::division_counting("R", "S"), &db).unwrap();
        assert_eq!(dd, expected);
        assert_eq!(cnt, expected);
        assert_eq!(divide(&r, &s, DivisionSemantics::Containment), expected);
    }
}

/// E7 — the dichotomy on a corpus: analyzer verdicts and measured
/// exponents agree, and the exponent distribution is bimodal with nothing
/// between 1.3 and 1.7.
#[test]
fn dichotomy_corpus_bimodal() {
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let seeds = vec![sj_workload::DivisionWorkload {
        groups: 6,
        divisor_size: 3,
        containment_fraction: 0.5,
        extra_per_group: 2,
        noise_domain: 16,
        seed: 5,
    }
    .database()];
    let series = series();
    let corpus: Vec<Expr> = vec![
        sj_algebra::division::division_double_difference("R", "S"),
        sj_algebra::division::division_via_join("R", "S"),
        sj_algebra::division::division_equality("R", "S"),
        Expr::rel("R").product(Expr::rel("S")),
        Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
        Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
        Expr::rel("R").project([1]),
        Expr::rel("R").project([1]).union(Expr::rel("S")),
        Expr::rel("R").select_lt(1, 2).project([2, 1]),
        Expr::rel("R").diff(Expr::rel("R").select_eq(1, 2)),
    ];
    for e in corpus {
        let verdict = analyze(&e, &schema, &seeds).unwrap();
        let report = measure_growth(&e, &series).unwrap();
        match verdict {
            Verdict::Linear { sa_equivalent } => {
                assert!(
                    report.exponent < 1.3,
                    "{e}: verdict Linear but exponent {}",
                    report.exponent
                );
                // The certificate is equivalent on every database of the series.
                for db in &series {
                    assert_eq!(
                        evaluate(&e, db).unwrap(),
                        evaluate(&sa_equivalent, db).unwrap(),
                        "{e}"
                    );
                }
            }
            Verdict::Quadratic { .. } => {
                assert!(
                    report.exponent > 1.7,
                    "{e}: verdict Quadratic but exponent {}",
                    report.exponent
                );
            }
            Verdict::Undetermined => panic!("{e}: analyzer undetermined on corpus"),
        }
        assert!(
            !(1.3..=1.7).contains(&report.exponent),
            "{e}: exponent {} in the forbidden band — no n·log n in RA!",
            report.exponent
        );
    }
}

/// E12 — SA= plans are linear by construction: max intermediate ≤ |D| on
/// every database of a scaling series, while the equivalent *join* plan of
/// the same query stays linear too (the paper's note under Theorem 18) —
/// contrast with the inherently quadratic division plans.
#[test]
fn semijoin_plans_linear_on_series() {
    let series = series();
    let sa = Expr::rel("R")
        .semijoin(Condition::eq(2, 1), Expr::rel("S"))
        .project([1]);
    let report = measure_growth(&sa, &series).unwrap();
    for p in &report.points {
        assert!(p.max_intermediate <= p.db_size);
    }
    // Lowered to joins (π₁,₂(R ⋈ π₁(S))-style): still linear.
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let lowered = sj_algebra::semijoins_to_joins_checked(&sa, &schema).unwrap();
    let report2 = measure_growth(&lowered, &series).unwrap();
    assert!(
        report2.exponent < 1.3,
        "lowered exponent {}",
        report2.exponent
    );
    for (db, p) in series.iter().zip(&report2.points) {
        assert_eq!(
            evaluate(&sa, db).unwrap().len(),
            p.output,
            "lowered plan output differs"
        );
    }
}

/// The Lemma 24 pump applied to an analyzer witness measures exponent 2
/// on the *witnessed node* even when the seed database is tiny.
#[test]
fn witness_pump_exponent_two() {
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let mut seed = Database::new();
    seed.set("R", Relation::from_int_rows(&[&[1, 7], &[2, 8]]));
    seed.set("S", Relation::from_int_rows(&[&[7], &[8]]));
    let e = sj_algebra::division::division_double_difference("R", "S");
    let Verdict::Quadratic { witness } = analyze(&e, &schema, std::slice::from_ref(&seed)).unwrap()
    else {
        panic!("expected quadratic");
    };
    let pump = witness.pump(&[], 64).unwrap();
    let pts: Vec<(f64, f64)> = [8usize, 16, 32, 64]
        .iter()
        .map(|&n| {
            let (size, pairs) = pump.verify(n);
            (size as f64, pairs as f64)
        })
        .collect();
    let slope = sj_core::log_log_slope(&pts);
    assert!(slope > 1.8, "slope {slope}");
}
