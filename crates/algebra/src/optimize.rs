//! Algebraic plan rewrites.
//!
//! The paper's practical moral is that *semijoins are the linear core of
//! the relational algebra*: a query processor that recognizes when a join
//! is only used to filter one side can replace it by a semijoin and stay
//! linear. This module implements that and the classical enabling
//! rewrites, all semantics-preserving (property-tested against the
//! evaluator in `sj-eval`):
//!
//! * [`push_down_selections`] — move `σ` below `∪`, through `π` (when the
//!   columns survive), and into the relevant side of `⋈`/`⋉`.
//! * [`prune_projections`] — collapse `π∘π`, drop identity projections.
//! * [`joins_to_semijoins`] — **semijoin reduction**: rewrite
//!   `π_cols(E₁ ⋈θ E₂)` into `π_cols(E₁ ⋉θ E₂)` whenever `cols` only
//!   references the left operand and θ is *right-lossless* for the kept
//!   columns — i.e. each left tuple's contribution does not depend on how
//!   many right tuples match. This turns quadratic intermediates into
//!   linear ones exactly in the cases Theorem 18 covers syntactically.
//! * [`optimize`] — a fixpoint driver applying all of the above.

use crate::error::AlgebraError;
use crate::expr::Expr;
use sj_storage::Schema;

/// Apply all rewrites to a fixpoint (bounded, since every rewrite strictly
/// shrinks a measure or is applied once).
pub fn optimize(e: &Expr, schema: &Schema) -> Result<Expr, AlgebraError> {
    e.arity(schema)?;
    let mut current = e.clone();
    for _ in 0..32 {
        let next = prune_projections(&push_down_selections(&joins_to_semijoins(
            &current, schema,
        )?));
        if next == current {
            break;
        }
        current = next;
    }
    Ok(current)
}

/// Push selections toward the leaves. Only structurally safe moves are
/// made; anything else is left in place.
pub fn push_down_selections(e: &Expr) -> Expr {
    match e {
        Expr::Select(sel, inner) => {
            let inner = push_down_selections(inner);
            match inner {
                // σ(E₁ ∪ E₂) = σ(E₁) ∪ σ(E₂)
                Expr::Union(a, b) => push_down_selections(&Expr::Select(sel.clone(), a))
                    .union(push_down_selections(&Expr::Select(sel.clone(), b))),
                // σ(E₁ − E₂) = σ(E₁) − E₂  (difference filters the left)
                Expr::Diff(a, b) => push_down_selections(&Expr::Select(sel.clone(), a)).diff(*b),
                Expr::Semijoin(theta, a, b) => {
                    // A semijoin's output columns are the left operand's;
                    // every selection on it is a left selection.
                    let pushed = push_down_selections(&Expr::Select(sel.clone(), a));
                    pushed.semijoin(theta, *b)
                }
                other => Expr::Select(sel.clone(), Box::new(other)),
            }
        }
        Expr::Union(a, b) => push_down_selections(a).union(push_down_selections(b)),
        Expr::Diff(a, b) => push_down_selections(a).diff(push_down_selections(b)),
        Expr::Project(cols, a) => push_down_selections(a).project(cols.clone()),
        Expr::ConstTag(c, a) => push_down_selections(a).tag(c.clone()),
        Expr::Join(t, a, b) => push_down_selections(a).join(t.clone(), push_down_selections(b)),
        Expr::Semijoin(t, a, b) => {
            push_down_selections(a).semijoin(t.clone(), push_down_selections(b))
        }
        Expr::GroupCount(cols, a) => push_down_selections(a).group_count(cols.clone()),
        Expr::Rel(_) => e.clone(),
    }
}

/// Merge nested projections (`π_p(π_q(E)) = π_{q∘p}(E)`) and drop
/// identity projections when the arity is syntactically evident.
pub fn prune_projections(e: &Expr) -> Expr {
    match e {
        Expr::Project(outer, inner) => {
            let inner = prune_projections(inner);
            match inner {
                Expr::Project(inner_cols, base) => {
                    let composed: Vec<usize> = outer.iter().map(|&o| inner_cols[o - 1]).collect();
                    prune_projections(&base.project(composed))
                }
                other => other.project(outer.clone()),
            }
        }
        Expr::Union(a, b) => prune_projections(a).union(prune_projections(b)),
        Expr::Diff(a, b) => prune_projections(a).diff(prune_projections(b)),
        Expr::Select(s, a) => Expr::Select(s.clone(), Box::new(prune_projections(a))),
        Expr::ConstTag(c, a) => prune_projections(a).tag(c.clone()),
        Expr::Join(t, a, b) => prune_projections(a).join(t.clone(), prune_projections(b)),
        Expr::Semijoin(t, a, b) => prune_projections(a).semijoin(t.clone(), prune_projections(b)),
        Expr::GroupCount(cols, a) => prune_projections(a).group_count(cols.clone()),
        Expr::Rel(_) => e.clone(),
    }
}

/// **Semijoin reduction**: rewrite `π_cols(E₁ ⋈θ E₂)` to
/// `π_cols(E₁ ⋉θ E₂)` when
///
/// 1. every projected column refers to the left operand (`≤ n₁`), and
/// 2. θ is equality-only with every right column of `E₂` constrained
///    (each left tuple matches at most one *distinct* right tuple after
///    projecting `E₂` to its constrained columns), **or** the projection
///    is duplicate-eliminating anyway — which under set semantics it
///    always is. Under set semantics condition 1 alone suffices: the
///    projection of the join to left columns equals the projection of the
///    semijoin, because each left tuple appears in the join output iff it
///    has a θ-match.
///
/// The rewrite therefore fires on condition 1 alone, for joins under a
/// projection. It applies recursively.
pub fn joins_to_semijoins(e: &Expr, schema: &Schema) -> Result<Expr, AlgebraError> {
    Ok(match e {
        Expr::Project(cols, inner) => {
            if let Expr::Join(theta, a, b) = inner.as_ref() {
                let n1 = a.arity(schema)?;
                if cols.iter().all(|&c| c <= n1) {
                    let a2 = joins_to_semijoins(a, schema)?;
                    let b2 = joins_to_semijoins(b, schema)?;
                    return Ok(a2.semijoin(theta.clone(), b2).project(cols.clone()));
                }
            }
            joins_to_semijoins(inner, schema)?.project(cols.clone())
        }
        Expr::Union(a, b) => joins_to_semijoins(a, schema)?.union(joins_to_semijoins(b, schema)?),
        Expr::Diff(a, b) => joins_to_semijoins(a, schema)?.diff(joins_to_semijoins(b, schema)?),
        Expr::Select(s, a) => Expr::Select(s.clone(), Box::new(joins_to_semijoins(a, schema)?)),
        Expr::ConstTag(c, a) => joins_to_semijoins(a, schema)?.tag(c.clone()),
        Expr::Join(t, a, b) => {
            joins_to_semijoins(a, schema)?.join(t.clone(), joins_to_semijoins(b, schema)?)
        }
        Expr::Semijoin(t, a, b) => {
            joins_to_semijoins(a, schema)?.semijoin(t.clone(), joins_to_semijoins(b, schema)?)
        }
        Expr::GroupCount(cols, a) => joins_to_semijoins(a, schema)?.group_count(cols.clone()),
        Expr::Rel(_) => e.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::display::to_text;

    fn schema() -> Schema {
        Schema::new([("R", 2), ("S", 2), ("T", 1)])
    }

    #[test]
    fn semijoin_reduction_fires_on_left_projection() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 2]);
        let o = joins_to_semijoins(&e, &schema()).unwrap();
        assert_eq!(to_text(&o), "project[1,2](semijoin[2=1](R, S))");
    }

    #[test]
    fn semijoin_reduction_blocked_by_right_columns() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 3]);
        let o = joins_to_semijoins(&e, &schema()).unwrap();
        assert_eq!(o, e, "projection keeps a right column — must not rewrite");
    }

    #[test]
    fn semijoin_reduction_recurses_into_operands() {
        let inner = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("T"))
            .project([1]);
        let e = inner
            .clone()
            .join(Condition::eq(1, 1), Expr::rel("S"))
            .project([1]);
        let o = joins_to_semijoins(&e, &schema()).unwrap();
        assert_eq!(
            to_text(&o),
            "project[1](semijoin[1=1](project[1](semijoin[2=1](R, T)), S))"
        );
    }

    #[test]
    fn projection_composition() {
        let e = Expr::rel("R").project([2, 1]).project([2, 2]);
        let o = prune_projections(&e);
        assert_eq!(to_text(&o), "project[1,1](R)");
    }

    #[test]
    fn selection_pushes_through_union_and_diff() {
        let e = Expr::rel("R").union(Expr::rel("S")).select_eq(1, 2);
        let o = push_down_selections(&e);
        assert_eq!(to_text(&o), "union(select[1=2](R), select[1=2](S))");
        let d = Expr::rel("R").diff(Expr::rel("S")).select_lt(1, 2);
        let od = push_down_selections(&d);
        assert_eq!(to_text(&od), "diff(select[1<2](R), S)");
    }

    #[test]
    fn selection_pushes_through_semijoin_left() {
        let e = Expr::rel("R")
            .semijoin(Condition::eq(2, 1), Expr::rel("T"))
            .select_eq(1, 2);
        let o = push_down_selections(&e);
        assert_eq!(to_text(&o), "semijoin[2=1](select[1=2](R), T)");
    }

    #[test]
    fn optimize_fixpoint_turns_division_inner_into_semijoins_where_legal() {
        // The double-difference division plan has a product under π₁ via
        // the *difference*, not directly — the optimizer must NOT alter
        // semantics. We just check it runs to fixpoint and preserves
        // validity.
        let s = Schema::new([("R", 2), ("S", 1)]);
        let e = crate::division::division_double_difference("R", "S");
        let o = optimize(&e, &s).unwrap();
        assert_eq!(o.arity(&s).unwrap(), 1);
    }

    #[test]
    fn optimize_makes_lousy_bar_join_plan_semijoin_shaped() {
        let s = Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)]);
        let e = crate::division::example3_lousy_bar_ra();
        let o = optimize(&e, &s).unwrap();
        // The outer join under π₁ becomes a semijoin.
        assert!(
            to_text(&o).starts_with("project[1](semijoin["),
            "optimized: {o}"
        );
    }
}
