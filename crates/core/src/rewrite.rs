//! The **Theorem 18 rewriter**: non-quadratic RA expressions into SA=.
//!
//! The proof of Theorems 17/18 rewrites a join `E₁ ⋈θ E₂` whose joining
//! pairs always have an empty free-value side into `Z₁ ∪ Z₂`, where e.g.
//!
//! ```text
//! Z₂ = ⋃_f π_p̄ ( σ_ψ τ_v̄ ( E₁ ⋉_{θ=} σ_φ τ_v̄ E₂ ) )
//! ```
//!
//! reconstructs the right tuple from the left one: every right column is
//! either pinned by an equality atom (read it off the left tuple via
//! `g(j) = min{ i | (i,j) ∈ θ= }`) or holds a value from the constants /
//! finite-interval pool (tag it on).
//!
//! This module implements the rewriting for the **syntactically
//! determined** case: every column of one operand is equality-constrained
//! or provably constant (by a constant-column dataflow analysis). That is
//! exactly the fragment where the empty-free-value condition holds for
//! *every* database — the case split `⋃_f` over interval values
//! degenerates, because a column that is "retrievable from the constants
//! and finite intervals" without being constant cannot be recognized
//! syntactically. The semantic residue is handled by the witness search in
//! [`mod@crate::analyze`] (which proves quadraticness via Lemma 24 instead).
//!
//! The output is a genuine SA= expression: semijoins with equality
//! conditions, plus `σ/π/τ/∪/−`.

use crate::error::CoreError;
use sj_algebra::{CompOp, Condition, Expr, Selection};
use sj_storage::{Schema, Value};

/// Constant-column dataflow: `result[i] = Some(c)` when column `i + 1` of
/// the expression provably equals `c` in every tuple of every database.
pub fn constant_columns(e: &Expr, schema: &Schema) -> Result<Vec<Option<Value>>, CoreError> {
    Ok(match e {
        Expr::Rel(name) => {
            let n = schema.arity_of(name).ok_or_else(|| {
                CoreError::Algebra(sj_algebra::AlgebraError::UnknownRelation(name.clone()))
            })?;
            vec![None; n]
        }
        Expr::Union(a, b) => {
            let (ca, cb) = (constant_columns(a, schema)?, constant_columns(b, schema)?);
            ca.into_iter()
                .zip(cb)
                .map(|(x, y)| if x == y { x } else { None })
                .collect()
        }
        Expr::Diff(a, _) => constant_columns(a, schema)?,
        Expr::Project(cols, a) => {
            let ca = constant_columns(a, schema)?;
            cols.iter().map(|&c| ca[c - 1].clone()).collect()
        }
        Expr::Select(sel, a) => {
            let mut ca = constant_columns(a, schema)?;
            match sel {
                Selection::EqConst(i, c) => ca[i - 1] = Some(c.clone()),
                Selection::Eq(i, j) => {
                    // Equality propagates constants across the two columns.
                    match (ca[i - 1].clone(), ca[j - 1].clone()) {
                        (Some(c), None) => ca[j - 1] = Some(c),
                        (None, Some(c)) => ca[i - 1] = Some(c),
                        _ => {}
                    }
                }
                Selection::Lt(..) => {}
            }
            ca
        }
        Expr::ConstTag(c, a) => {
            let mut ca = constant_columns(a, schema)?;
            ca.push(Some(c.clone()));
            ca
        }
        Expr::Join(theta, a, b) => {
            let ca = constant_columns(a, schema)?;
            let cb = constant_columns(b, schema)?;
            let n1 = ca.len();
            let mut all: Vec<Option<Value>> = ca.into_iter().chain(cb).collect();
            for atom in theta.atoms() {
                if atom.op == CompOp::Eq {
                    let (i, j) = (atom.left - 1, n1 + atom.right - 1);
                    match (all[i].clone(), all[j].clone()) {
                        (Some(c), None) => all[j] = Some(c),
                        (None, Some(c)) => all[i] = Some(c),
                        _ => {}
                    }
                }
            }
            all
        }
        Expr::Semijoin(_, a, _) => constant_columns(a, schema)?,
        Expr::GroupCount(cols, a) => {
            let ca = constant_columns(a, schema)?;
            let mut out: Vec<Option<Value>> = cols.iter().map(|&c| ca[c - 1].clone()).collect();
            out.push(None);
            out
        }
    })
}

/// `σ_{i α j}(e)` for all four operators, using only the paper's selection
/// primitives (`σᵢ₌ⱼ`, `σᵢ<ⱼ`, difference).
fn select_cols(e: Expr, i: usize, op: CompOp, j: usize) -> Expr {
    match op {
        CompOp::Eq => e.select_eq(i, j),
        CompOp::Lt => e.select_lt(i, j),
        CompOp::Gt => e.select_lt(j, i),
        CompOp::Neq => e.clone().diff(e.select_eq(i, j)),
    }
}

/// `σ_{i α c}(e)` against a constant, via tagging:
/// `π_{1..n}(σ_{i α (n+1)}(τ_c(e)))`.
fn select_vs_const(e: Expr, arity: usize, i: usize, op: CompOp, c: &Value) -> Expr {
    let tagged = e.tag(c.clone());
    let filtered = select_cols(tagged, i, op, arity + 1);
    filtered.project(1..=arity)
}

/// Rewrite an RA/SA expression into an equivalent **SA=** expression, when
/// every join is syntactically determined on at least one side. Errors
/// with [`CoreError::NotLinearSafe`] otherwise (which does *not* mean the
/// expression is quadratic — see the analyzer).
pub fn to_sa_eq(e: &Expr, schema: &Schema) -> Result<Expr, CoreError> {
    e.arity(schema)?;
    rewrite(e, schema)
}

fn rewrite(e: &Expr, schema: &Schema) -> Result<Expr, CoreError> {
    Ok(match e {
        Expr::Rel(n) => Expr::Rel(n.clone()),
        Expr::Union(a, b) => rewrite(a, schema)?.union(rewrite(b, schema)?),
        Expr::Diff(a, b) => rewrite(a, schema)?.diff(rewrite(b, schema)?),
        Expr::Project(cols, a) => rewrite(a, schema)?.project(cols.clone()),
        Expr::Select(sel, a) => Expr::Select(sel.clone(), Box::new(rewrite(a, schema)?)),
        Expr::ConstTag(c, a) => rewrite(a, schema)?.tag(c.clone()),
        Expr::Semijoin(theta, a, b) => {
            if !theta.is_equi() {
                return Err(CoreError::NotLinearSafe(
                    "semijoin with a non-equality condition is linear but outside SA=".into(),
                ));
            }
            rewrite(a, schema)?.semijoin(theta.clone(), rewrite(b, schema)?)
        }
        Expr::GroupCount(..) => {
            return Err(CoreError::NotLinearSafe(
                "grouping is outside the relational algebra (Section 5 extension)".into(),
            ))
        }
        Expr::Join(theta, a, b) => {
            let sa = rewrite(a, schema)?;
            let sb = rewrite(b, schema)?;
            let n1 = a.arity(schema)?;
            let n2 = b.arity(schema)?;
            let ca = constant_columns(a, schema)?;
            let cb = constant_columns(b, schema)?;
            let eq_left = theta.constrained_left();
            let eq_right = theta.constrained_right();
            let right_determined = (1..=n2).all(|j| eq_right.contains(&j) || cb[j - 1].is_some());
            let left_determined = (1..=n1).all(|i| eq_left.contains(&i) || ca[i - 1].is_some());
            if right_determined {
                rewrite_right_determined(theta, sa, sb, n1, n2, &cb)?
            } else if left_determined {
                rewrite_left_determined(theta, sa, sb, n1, n2, &ca)?
            } else {
                return Err(CoreError::NotLinearSafe(format!(
                    "join {theta}: neither side has all columns equality-constrained \
                     or constant"
                )));
            }
        }
    })
}

/// `g(j) = min{ i | (i, j) ∈ θ= }` — the paper's retrieval function.
fn g_of(theta: &Condition, j: usize) -> Option<usize> {
    theta
        .theta(CompOp::Eq)
        .into_iter()
        .filter(|&(_, jj)| jj == j)
        .map(|(i, _)| i)
        .min()
}

/// `h(i) = min{ j | (i, j) ∈ θ= }` — the symmetric retrieval function.
fn h_of(theta: &Condition, i: usize) -> Option<usize> {
    theta
        .theta(CompOp::Eq)
        .into_iter()
        .filter(|&(ii, _)| ii == i)
        .map(|(_, j)| j)
        .min()
}

/// The `Z₂` shape: every right column is retrievable from the left tuple
/// (via `g`) or constant. Build
/// `π_p̄( τ_c̄( σ_ψ(E₁) ⋉_{θ=} E₂ ) )` where ψ re-expresses the non-equality
/// atoms against retrieved/constant right values.
fn rewrite_right_determined(
    theta: &Condition,
    sa: Expr,
    sb: Expr,
    n1: usize,
    n2: usize,
    cb: &[Option<Value>],
) -> Result<Expr, CoreError> {
    // ψ: residual atoms as selections on E₁.
    let mut left = sa;
    for atom in theta.atoms() {
        if atom.op == CompOp::Eq {
            continue;
        }
        match g_of(theta, atom.right) {
            Some(gj) => {
                left = select_cols(left, atom.left, atom.op, gj);
            }
            None => {
                let c = cb[atom.right - 1]
                    .as_ref()
                    .expect("right_determined: unconstrained column is constant");
                left = select_vs_const(left, n1, atom.left, atom.op, c);
            }
        }
    }
    // Semijoin on the equality part.
    let eq_cond = Condition::new(theta.atoms().iter().filter(|a| a.op == CompOp::Eq).copied());
    let filtered = left.semijoin(eq_cond, sb);
    // Tag the constants needed for unconstrained right columns, then
    // project (ā, reconstructed b̄).
    let mut tagged = filtered;
    let mut tag_pos: Vec<(usize, usize)> = Vec::new(); // (j, column position)
    let mut next = n1 + 1;
    for j in 1..=n2 {
        if g_of(theta, j).is_none() {
            let c = cb[j - 1].as_ref().expect("constant column");
            tagged = tagged.tag(c.clone());
            tag_pos.push((j, next));
            next += 1;
        }
    }
    let mut proj: Vec<usize> = (1..=n1).collect();
    for j in 1..=n2 {
        match g_of(theta, j) {
            Some(gj) => proj.push(gj),
            None => {
                let &(_, pos) = tag_pos.iter().find(|&&(jj, _)| jj == j).unwrap();
                proj.push(pos);
            }
        }
    }
    Ok(tagged.project(proj))
}

/// The `Z₁` shape, symmetric to [`rewrite_right_determined`]: every left
/// column is retrievable from the right tuple (via `h`) or constant.
fn rewrite_left_determined(
    theta: &Condition,
    sa: Expr,
    sb: Expr,
    n1: usize,
    n2: usize,
    ca: &[Option<Value>],
) -> Result<Expr, CoreError> {
    let mut right = sb;
    for atom in theta.atoms() {
        if atom.op == CompOp::Eq {
            continue;
        }
        // Atom is leftᵢ α rightⱼ; express on E₂: retrieved(i) α j.
        match h_of(theta, atom.left) {
            Some(hi) => {
                right = select_cols(right, hi, atom.op, atom.right);
            }
            None => {
                let c = ca[atom.left - 1]
                    .as_ref()
                    .expect("left_determined: unconstrained column is constant");
                // c α rightⱼ  ⟺  rightⱼ ᾱ c with the operator flipped.
                right = select_vs_const(right, n2, atom.right, atom.op.flipped(), c);
            }
        }
    }
    let eq_swapped = Condition::new(
        theta
            .atoms()
            .iter()
            .filter(|a| a.op == CompOp::Eq)
            .map(|a| sj_algebra::Atom {
                left: a.right,
                op: CompOp::Eq,
                right: a.left,
            }),
    );
    let filtered = right.semijoin(eq_swapped, sa);
    let mut tagged = filtered;
    let mut tag_pos: Vec<(usize, usize)> = Vec::new();
    let mut next = n2 + 1;
    for i in 1..=n1 {
        if h_of(theta, i).is_none() {
            let c = ca[i - 1].as_ref().expect("constant column");
            tagged = tagged.tag(c.clone());
            tag_pos.push((i, next));
            next += 1;
        }
    }
    let mut proj: Vec<usize> = Vec::with_capacity(n1 + n2);
    for i in 1..=n1 {
        match h_of(theta, i) {
            Some(hi) => proj.push(hi),
            None => {
                let &(_, pos) = tag_pos.iter().find(|&&(ii, _)| ii == i).unwrap();
                proj.push(pos);
            }
        }
    }
    proj.extend(1..=n2);
    Ok(tagged.project(proj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_eval::{evaluate, evaluate_instrumented};
    use sj_storage::{Database, Relation};

    fn schema() -> Schema {
        Schema::new([("R", 2), ("S", 2), ("U1", 1)])
    }

    fn db() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[1, 10], &[2, 20], &[3, 10], &[4, 40]]),
        );
        d.set(
            "S",
            Relation::from_int_rows(&[&[10, 5], &[20, 6], &[10, 7], &[50, 8]]),
        );
        d.set("U1", Relation::from_int_rows(&[&[10], &[20], &[99]]));
        d
    }

    fn assert_rewrite_equivalent(e: &Expr) {
        let s = schema();
        let d = db();
        let sa = to_sa_eq(e, &s).unwrap_or_else(|err| panic!("{e}: {err}"));
        assert!(sa.is_sa_eq(), "rewrite of {e} not SA=: {sa}");
        assert_eq!(
            evaluate(e, &d).unwrap(),
            evaluate(&sa, &d).unwrap(),
            "rewrite changed semantics of {e}"
        );
    }

    #[test]
    fn paper_note_example_semijoin_expressed_linearly() {
        // R ⋈_{2=1} π₁(S): right side fully constrained — rewrites, and the
        // SA= version is the semijoin the paper's note describes.
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S").project([1]));
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn join_with_unary_determined_right() {
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("U1"));
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn join_with_unary_determined_left() {
        let e = Expr::rel("U1").join(Condition::eq(1, 2), Expr::rel("R"));
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn residual_inequalities_become_selections() {
        // R ⋈_{2=1 ∧ 1<2} π₁,₂(S): right determined by 2=1... second right
        // column unconstrained — use a fully constrained variant instead:
        // R ⋈_{2=1 ∧ 1<1} U1 — atom 1<1 is left1 < right1 with right1
        // constrained by 2=1: becomes σ₁<₂ on R.
        let e = Expr::rel("R").join(Condition::eq(2, 1).and(1, CompOp::Lt, 1), Expr::rel("U1"));
        assert_rewrite_equivalent(&e);
        let e2 = Expr::rel("R").join(Condition::eq(2, 1).and(1, CompOp::Gt, 1), Expr::rel("U1"));
        assert_rewrite_equivalent(&e2);
        let e3 = Expr::rel("R").join(Condition::eq(2, 1).and(1, CompOp::Neq, 1), Expr::rel("U1"));
        assert_rewrite_equivalent(&e3);
    }

    #[test]
    fn constant_right_columns_reconstructed_by_tagging() {
        // Right side: σ₂₌'5'(S) — column 2 constant, column 1 eq-bound.
        let right = Expr::rel("S").select_const(2, 5);
        let e = Expr::rel("R").join(Condition::eq(2, 1), right);
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn constant_left_columns_reconstructed_by_tagging() {
        let left = Expr::rel("R").select_const(1, 3);
        let e = left.join(Condition::eq(2, 1), Expr::rel("S"));
        // Left col 1 constant, col 2 eq-bound → left determined; right is
        // NOT determined (col 2 free) — must take the Z₁ branch.
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn tagged_right_via_tau_is_determined() {
        // E₂ = τ₇(U1): columns (u, 7); join on 2=1 binds u; col 2 constant.
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("U1").tag(7));
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn undetermined_join_rejected() {
        // Plain R ⋈_{2=1} S: right column 2 is neither constrained nor
        // constant — the join can be quadratic; the rewriter refuses.
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
        assert!(matches!(
            to_sa_eq(&e, &schema()),
            Err(CoreError::NotLinearSafe(_))
        ));
        // Cartesian product likewise.
        let p = Expr::rel("U1").product(Expr::rel("U1"));
        assert!(to_sa_eq(&p, &schema()).is_err());
    }

    #[test]
    fn rewritten_plan_is_linear_in_practice() {
        // The SA= rewrite never exceeds the input size on any database —
        // measured with the instrumented evaluator.
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("U1"));
        let sa = to_sa_eq(&e, &schema()).unwrap();
        let d = db();
        let report = evaluate_instrumented(&sa, &d).unwrap();
        assert!(report.max_intermediate() <= d.size() + 1);
    }

    #[test]
    fn nested_joins_rewrite_recursively() {
        let inner = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("U1"));
        // inner: (r1, r2, u) with u = r2. Outer join against U1 on 3=1.
        let e = inner.join(Condition::eq(3, 1), Expr::rel("U1"));
        assert_rewrite_equivalent(&e);
    }

    #[test]
    fn constant_columns_analysis() {
        let s = schema();
        let e = Expr::rel("R").tag(9).select_const(1, 4);
        let cc = constant_columns(&e, &s).unwrap();
        assert_eq!(cc, vec![Some(Value::int(4)), None, Some(Value::int(9))]);
        // Union meets.
        let u = Expr::rel("R").tag(9).union(Expr::rel("R").tag(9));
        assert_eq!(constant_columns(&u, &s).unwrap()[2], Some(Value::int(9)));
        let u2 = Expr::rel("R").tag(9).union(Expr::rel("R").tag(8));
        assert_eq!(constant_columns(&u2, &s).unwrap()[2], None);
        // Equality propagation through σ.
        let p = Expr::rel("R").select_const(1, 4).select_eq(1, 2);
        assert_eq!(
            constant_columns(&p, &s).unwrap(),
            vec![Some(Value::int(4)), Some(Value::int(4))]
        );
    }

    #[test]
    fn semijoin_passthrough_and_rejections() {
        let s = schema();
        let e = Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S"));
        let sa = to_sa_eq(&e, &s).unwrap();
        assert_eq!(sa, e);
        assert!(to_sa_eq(
            &Expr::rel("R").semijoin(Condition::lt(1, 1), Expr::rel("S")),
            &s
        )
        .is_err());
        assert!(to_sa_eq(&Expr::rel("R").group_count([1]), &s).is_err());
    }
}
