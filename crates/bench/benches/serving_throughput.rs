//! Serving-path latency per cache tier — the benchmark behind
//! `experiments -- serving` (which additionally writes
//! `results/serving_throughput.csv` and asserts the tier speedups).
//!
//! One hot division query against an `sj-server` instance per tier:
//! `cold` re-plans and re-executes every submission (cache off), `plan`
//! skips optimize+plan but executes (plan tier warmed), `result`
//! answers from the result cache (both tiers warmed). The gap between
//! the rows is the price of planning and of execution respectively —
//! the two things the tiers exist to elide.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::division;
use sj_server::{CacheMode, Server, ServerConfig};
use sj_workload::ServingWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let w = ServingWorkload {
        groups: 384,
        divisor_size: 16,
        ..ServingWorkload::default()
    };
    let e = division::division_double_difference("R", "S");
    for (tier, mode) in [
        ("cold", CacheMode::Off),
        ("plan", CacheMode::Plan),
        ("result", CacheMode::PlanAndResult),
    ] {
        let server = Server::start(
            w.database(),
            ServerConfig {
                workers: 2,
                cores: 2,
                cache: mode,
                ..ServerConfig::default()
            },
        );
        let session = server.session();
        // Warm whichever tiers exist so the measurement is steady-state.
        session.query(e.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("hot_division_query", tier),
            &session,
            |b, session| b.iter(|| session.query(e.clone()).unwrap()),
        );
    }

    // The whole zipf hot-set trace, answered by a warmed two-tier cache.
    let server = Server::start(
        w.database(),
        ServerConfig {
            workers: 2,
            cores: 2,
            ..ServerConfig::default()
        },
    );
    let session = server.session();
    let hot: Vec<_> = w
        .read_only()
        .trace()
        .into_iter()
        .filter_map(|op| match op {
            sj_workload::TraceOp::Query(q) => Some(q),
            _ => None,
        })
        .collect();
    for q in &hot {
        session.query(q.clone()).unwrap();
    }
    group.bench_with_input(
        BenchmarkId::new("hotset_replay", "result-warm"),
        &session,
        |b, session| {
            b.iter(|| {
                for q in &hot {
                    session.query(q.clone()).unwrap();
                }
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
