//! `EXPLAIN ANALYZE`-style plan rendering.
//!
//! Evaluates an expression with instrumentation and renders the plan tree
//! with actual cardinalities, flagging the largest intermediate — the node
//! Theorem 17 says is Ω(n²) for any quadratic expression.
//!
//! ```text
//! diff                                 card 1
//! ├─ project[1]                        card 3
//! │  └─ R                              card 4
//! └─ project[1]                        card 2    ◀ largest
//!    └─ ...
//! ```

use crate::error::EvalError;
use crate::instrumented::{evaluate_instrumented, EvalReport};
use sj_algebra::Expr;
use sj_storage::Database;

/// Evaluate and render the annotated plan tree.
pub fn explain(e: &Expr, db: &Database) -> Result<String, EvalError> {
    let report = evaluate_instrumented(e, db)?;
    Ok(render_tree(e, &report))
}

/// Render a previously computed report against its expression.
pub fn render_tree(e: &Expr, report: &EvalReport) -> String {
    let max = report.max_intermediate();
    let mut out = format!(
        "|D| = {}   output = {}   max intermediate = {}\n",
        report.db_size,
        report.result.len(),
        max
    );
    let mut id = 0usize;
    render_node(e, report, max, &mut id, "", true, true, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn render_node(
    e: &Expr,
    report: &EvalReport,
    max: usize,
    id: &mut usize,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let stat = &report.nodes[*id];
    *id += 1;
    let (branch, child_prefix) = if is_root {
        (String::new(), String::new())
    } else if is_last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    let label = format!("{branch}{}", stat.label);
    let marker = if stat.cardinality == max && max > 0 {
        "   ◀ largest"
    } else {
        ""
    };
    out.push_str(&format!(
        "{label:<44} card {:>8}{marker}\n",
        stat.cardinality
    ));
    let children = e.children();
    let n = children.len();
    for (i, c) in children.into_iter().enumerate() {
        render_node(c, report, max, id, &child_prefix, i + 1 == n, false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::division;
    use sj_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        db
    }

    #[test]
    fn explain_division_plan() {
        let e = division::division_double_difference("R", "S");
        let s = explain(&e, &db()).unwrap();
        assert!(s.contains("max intermediate"));
        assert!(s.contains("◀ largest"));
        assert!(s.contains("join[true]"));
        assert!(s.contains("└─"));
        // One line per node plus the header.
        assert_eq!(s.lines().count(), e.node_count() + 1);
    }

    #[test]
    fn explain_leaf() {
        let e = sj_algebra::Expr::rel("R");
        let s = explain(&e, &db()).unwrap();
        assert!(s.lines().count() == 2);
        assert!(s.contains("R"));
    }

    #[test]
    fn tree_structure_markers() {
        let e = sj_algebra::Expr::rel("R").union(sj_algebra::Expr::rel("R"));
        let s = explain(&e, &db()).unwrap();
        assert!(s.contains("├─ R"));
        assert!(s.contains("└─ R"));
    }
}
