//! Empirical growth-exponent estimation.
//!
//! The paper's complexity statements are asymptotic; the reproduction
//! measures them. For an expression `E` and a scaling series of databases
//! `D₁, D₂, …`, the instrumented evaluator yields the maximum intermediate
//! size at each scale; the slope of the least-squares line through the
//! log-log points is the measured growth exponent. Theorem 17 predicts the
//! exponents over RA cluster at ≤ 1 and 2 with nothing in between — the
//! `dichotomy` experiment plots exactly this.

use sj_algebra::Expr;
use sj_eval::{evaluate_instrumented, EvalError};
use sj_storage::Database;

/// Least-squares slope of `log y` against `log x`. Points with `x ≤ 0` or
/// `y ≤ 0` are dropped (log undefined); fewer than two usable points give
/// slope 0.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return 0.0;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// One point of a growth measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthPoint {
    /// Database size `|D|` (Definition 15).
    pub db_size: usize,
    /// Maximum intermediate cardinality over all subexpressions.
    pub max_intermediate: usize,
    /// Output cardinality.
    pub output: usize,
}

/// The result of measuring an expression across a scaling series.
#[derive(Debug, Clone)]
pub struct GrowthReport {
    /// One point per database, in input order.
    pub points: Vec<GrowthPoint>,
    /// Fitted exponent of `max_intermediate` vs `|D|`.
    pub exponent: f64,
}

impl GrowthReport {
    /// Classification thresholds used across the experiments: ≥ 1.7 is
    /// reported as quadratic-like, ≤ 1.3 as linear-like. Theorem 17 says
    /// RA expressions never land in between asymptotically; measured
    /// values on finite ranges cluster well inside these bands.
    pub fn classification(&self) -> &'static str {
        if self.exponent >= 1.7 {
            "quadratic-like"
        } else if self.exponent <= 1.3 {
            "linear-like"
        } else {
            "intermediate (increase the range!)"
        }
    }
}

/// Evaluate `e` on each database of the series and fit the growth
/// exponent of the maximum intermediate size.
pub fn measure_growth(e: &Expr, series: &[Database]) -> Result<GrowthReport, EvalError> {
    let mut points = Vec::with_capacity(series.len());
    for db in series {
        let report = evaluate_instrumented(e, db)?;
        points.push(GrowthPoint {
            db_size: report.db_size,
            max_intermediate: report.max_intermediate(),
            output: report.result.len(),
        });
    }
    let xy: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.db_size as f64, p.max_intermediate as f64))
        .collect();
    Ok(GrowthReport {
        points,
        exponent: log_log_slope(&xy),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::{division, Condition};
    use sj_storage::{Relation, Value};

    /// Division workload: `groups` A-values each related to all of
    /// `divisor` B-values (so the product node is maximal).
    fn division_series(sizes: &[i64]) -> Vec<Database> {
        sizes
            .iter()
            .map(|&k| {
                let mut rows = Vec::new();
                for a in 1..=k {
                    for b in 1..=k {
                        rows.push([a, 1000 + b]);
                    }
                }
                let slices: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
                let mut db = Database::new();
                db.set("R", Relation::from_int_rows(&slices));
                db.set("S", Relation::unary((1..=k).map(|b| Value::int(1000 + b))));
                db
            })
            .collect()
    }

    #[test]
    fn slope_of_exact_powers() {
        let lin: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((log_log_slope(&lin) - 1.0).abs() < 1e-9);
        let quad: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((log_log_slope(&quad) - 2.0).abs() < 1e-9);
        let nlogn: Vec<(f64, f64)> = (2..=12)
            .map(|i| {
                let n = (1 << i) as f64;
                (n, n * n.ln())
            })
            .collect();
        let s = log_log_slope(&nlogn);
        assert!(s > 1.0 && s < 1.35, "n log n slope ≈ 1.1–1.3, got {s}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(log_log_slope(&[]), 0.0);
        assert_eq!(log_log_slope(&[(1.0, 1.0)]), 0.0);
        assert_eq!(log_log_slope(&[(0.0, 5.0), (1.0, 1.0)]), 0.0);
        // identical x values: vertical line, slope undefined → 0
        assert_eq!(log_log_slope(&[(2.0, 1.0), (2.0, 9.0)]), 0.0);
    }

    #[test]
    fn division_plan_measures_superlinear() {
        // The dividend itself is k², so |D| ≈ k² + k and the product node
        // is ~k² ≈ |D|: this family alone doesn't separate. Use the
        // sparse family below instead; here just check the report's shape.
        let series = division_series(&[4, 8, 16]);
        let e = division::division_double_difference("R", "S");
        let report = measure_growth(&e, &series).unwrap();
        assert_eq!(report.points.len(), 3);
        assert!(report.exponent > 0.5);
    }

    /// Sparse division family: each A-value has exactly ONE B, divisor has
    /// k values ⇒ |D| = Θ(k) but the product node is Θ(k²).
    fn sparse_series(sizes: &[i64]) -> Vec<Database> {
        sizes
            .iter()
            .map(|&k| {
                let rows: Vec<[i64; 2]> = (1..=k).map(|a| [a, 1000 + (a % k)]).collect();
                let slices: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
                let mut db = Database::new();
                db.set("R", Relation::from_int_rows(&slices));
                db.set("S", Relation::unary((0..k).map(|b| Value::int(1000 + b))));
                db
            })
            .collect()
    }

    #[test]
    fn dichotomy_separates_on_sparse_family() {
        let series = sparse_series(&[8, 16, 32, 64]);
        // Quadratic plan: exponent near 2.
        let quad = division::division_double_difference("R", "S");
        let rq = measure_growth(&quad, &series).unwrap();
        assert!(rq.exponent > 1.7, "got {}", rq.exponent);
        assert_eq!(rq.classification(), "quadratic-like");
        // Linear expression: a semijoin-based filter; exponent near 1.
        let lin = Expr::rel("R")
            .semijoin(Condition::eq(2, 1), Expr::rel("S"))
            .project([1]);
        let rl = measure_growth(&lin, &series).unwrap();
        assert!(rl.exponent < 1.3, "got {}", rl.exponent);
        assert_eq!(rl.classification(), "linear-like");
    }
}
