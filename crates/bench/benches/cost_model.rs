//! Overhead of the statistics subsystem on the set-operator hot path:
//! `ANALYZE` cost per relation, selector cost (threshold vs cost-based
//! vs cached), and the end-to-end engine spread across `StatsMode`s.
//!
//! The point to pin: cost-based selection must cost microseconds —
//! negligible against the operators it chooses between — and
//! `StatsMode::Cached` must amortize the `ANALYZE` pass away entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_eval::{Engine, StatsMode};
use sj_setjoin::{DivisionSemantics, Registry};
use sj_stats::{CostModel, StatsCatalog, TableStats};
use sj_workload::DivisionWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let model = CostModel::default();
    let reg = Registry::standard();
    for groups in [256usize, 4096] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xC057,
        };
        let db = w.database();
        let (r, s) = (db.get("R").unwrap(), db.get("S").unwrap());

        // The ANALYZE pass itself.
        group.bench_with_input(BenchmarkId::new("analyze", groups), r, |b, r| {
            b.iter(|| TableStats::analyze(r))
        });

        // Selector-only costs, stats in hand.
        let (rs, ss) = (TableStats::analyze(r), TableStats::analyze(s));
        group.bench_with_input(BenchmarkId::new("select_threshold", groups), &(), |b, _| {
            b.iter(|| {
                reg.auto_division_with(r, s, DivisionSemantics::Containment, 1)
                    .unwrap()
                    .name()
            })
        });
        group.bench_with_input(BenchmarkId::new("select_costed", groups), &(), |b, _| {
            b.iter(|| {
                reg.auto_division_costed(
                    r,
                    s,
                    DivisionSemantics::Containment,
                    1,
                    Some((&rs, &ss)),
                    &model,
                )
                .unwrap()
                .name()
            })
        });

        // Catalog hit path (pointer check + clone).
        let catalog = StatsCatalog::new();
        catalog.stats_for(&db, "R");
        group.bench_with_input(BenchmarkId::new("catalog_hit", groups), &(), |b, _| {
            b.iter(|| catalog.stats_for(&db, "R").unwrap())
        });

        // End to end: the registry-routed division per StatsMode.
        for (name, mode) in [
            ("engine_stats_off", StatsMode::Off),
            ("engine_stats_analyze", StatsMode::Analyze),
            ("engine_stats_cached", StatsMode::Cached),
        ] {
            let engine = Engine::new(db.clone()).stats(mode);
            group.bench_with_input(BenchmarkId::new(name, groups), &(), |b, _| {
                b.iter(|| {
                    engine
                        .divide("R", "S", DivisionSemantics::Containment)
                        .unwrap()
                        .relation
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
