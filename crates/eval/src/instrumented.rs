//! The instrumented evaluator: evaluation plus per-subexpression
//! cardinalities.
//!
//! Definition 16 of the paper assigns to every RA expression `E` the
//! function `c(E)(n) = max{|E(D)| : |D| = n}` and calls `E` *linear* when
//! `c(E') = O(n)` for **every subexpression** `E'`, *quadratic* when some
//! subexpression is `Ω(n²)`. Measuring those intermediate sizes is the
//! core experimental tool of this reproduction: the instrumented evaluator
//! returns, along with the result, the cardinality of every node of the
//! expression tree (identified by its pre-order index, matching
//! [`Expr::subexpressions`]).

use crate::error::EvalError;
use crate::ops;
use sj_algebra::Expr;
use sj_storage::{Database, Relation};
use std::time::{Duration, Instant};

/// Statistics for one node of the expression tree (or, for the planned
/// evaluator, of the physical-plan DAG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStat {
    /// Pre-order index of the node within the root expression (plan-node
    /// id, in topological order, for [`crate::plan::PlannedReport`]).
    pub id: usize,
    /// Operator label (see [`Expr::label`]).
    pub label: String,
    /// The physical operator that produced this node's output (e.g.
    /// `hash-join`, `merge-semijoin`, `scan`). The planner chooses per
    /// node; the naive evaluator reports the fixed choice `ops` makes.
    pub operator: String,
    /// Output arity of the node.
    pub arity: usize,
    /// Output cardinality `|E'(D)|`.
    pub cardinality: usize,
    /// Wall-clock time spent in this node's own operator, children
    /// excluded.
    pub elapsed: Duration,
    /// Per-partition timings when the node ran partition-parallel
    /// ([`crate::ops::PartitionStat`]); empty for serial operators and
    /// serial runs.
    pub partitions: Vec<crate::ops::PartitionStat>,
}

/// The result of an instrumented evaluation.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// The query result (the root node's output).
    pub result: Relation,
    /// Per-node statistics in pre-order (index 0 is the root).
    pub nodes: Vec<NodeStat>,
    /// The input database size `|D|` (Definition 15).
    pub db_size: usize,
}

impl EvalReport {
    /// The largest intermediate (or final) result cardinality — the
    /// quantity whose growth Theorem 17 shows is either `O(n)` or `Ω(n²)`.
    pub fn max_intermediate(&self) -> usize {
        self.nodes.iter().map(|n| n.cardinality).max().unwrap_or(0)
    }

    /// The node achieving the maximum intermediate size.
    pub fn max_node(&self) -> Option<&NodeStat> {
        self.nodes.iter().max_by_key(|n| n.cardinality)
    }

    /// `max_intermediate / |D|` — the "expansion factor"; bounded by a
    /// constant across a scaling series iff the expression behaves linearly
    /// on that series.
    pub fn expansion_factor(&self) -> f64 {
        if self.db_size == 0 {
            0.0
        } else {
            self.max_intermediate() as f64 / self.db_size as f64
        }
    }

    /// Total time across all nodes (the sum of per-node self times).
    pub fn total_elapsed(&self) -> Duration {
        self.nodes.iter().map(|n| n.elapsed).sum()
    }

    /// Render a per-node table (id, label, operator, cardinality), for
    /// reports.
    pub fn render(&self) -> String {
        let mut out = format!(
            "|D| = {}, output = {}, max intermediate = {}\n",
            self.db_size,
            self.result.len(),
            self.max_intermediate()
        );
        for n in &self.nodes {
            out.push_str(&format!(
                "  [{:>3}] {:<28} {:<20} arity {}  card {}\n",
                n.id, n.label, n.operator, n.arity, n.cardinality
            ));
        }
        out
    }
}

/// The physical operator the naive (tree-walking) evaluator uses for a
/// node — the fixed dispatch of [`crate::ops`], reported in [`NodeStat`]
/// so naive and planned reports are comparable.
pub(crate) fn naive_operator(expr: &Expr) -> &'static str {
    match expr {
        Expr::Rel(_) => "scan",
        Expr::Union(..) => "merge-union",
        Expr::Diff(..) => "merge-diff",
        Expr::Project(..) => "project",
        Expr::Select(..) => "filter",
        Expr::ConstTag(..) => "tag",
        Expr::GroupCount(..) => "hash-group",
        Expr::Join(theta, _, _) => ops::join_dispatch(theta),
        Expr::Semijoin(theta, _, _) => ops::semijoin_dispatch(theta),
    }
}

/// Evaluate with instrumentation. Node ids follow pre-order, exactly the
/// order of [`Expr::subexpressions`].
pub fn evaluate_instrumented(expr: &Expr, db: &Database) -> Result<EvalReport, EvalError> {
    expr.arity(&db.schema())?;
    let mut nodes: Vec<Option<NodeStat>> = vec![None; expr.node_count()];
    let mut counter = 0usize;
    let result = eval_rec(expr, db, &mut nodes, &mut counter);
    Ok(EvalReport {
        result,
        nodes: nodes
            .into_iter()
            .map(|n| n.expect("every node visited"))
            .collect(),
        db_size: db.size(),
    })
}

fn eval_rec(
    expr: &Expr,
    db: &Database,
    nodes: &mut Vec<Option<NodeStat>>,
    counter: &mut usize,
) -> Relation {
    let id = *counter;
    *counter += 1;
    // Children are evaluated before the node's own operator is timed, so
    // `elapsed` is self time.
    let (rel, elapsed) = match expr {
        Expr::Rel(name) => {
            let start = Instant::now();
            let rel = db.get(name).expect("validated").clone();
            (rel, start.elapsed())
        }
        Expr::Union(a, b) => {
            let ra = eval_rec(a, db, nodes, counter);
            let rb = eval_rec(b, db, nodes, counter);
            let start = Instant::now();
            (ra.union(&rb).expect("validated"), start.elapsed())
        }
        Expr::Diff(a, b) => {
            let ra = eval_rec(a, db, nodes, counter);
            let rb = eval_rec(b, db, nodes, counter);
            let start = Instant::now();
            (ra.difference(&rb).expect("validated"), start.elapsed())
        }
        Expr::Project(cols, a) => {
            let ra = eval_rec(a, db, nodes, counter);
            let start = Instant::now();
            (ops::project(&ra, cols), start.elapsed())
        }
        Expr::Select(sel, a) => {
            let ra = eval_rec(a, db, nodes, counter);
            let start = Instant::now();
            (ops::select(&ra, sel), start.elapsed())
        }
        Expr::ConstTag(c, a) => {
            let ra = eval_rec(a, db, nodes, counter);
            let start = Instant::now();
            (ops::const_tag(&ra, c), start.elapsed())
        }
        Expr::Join(theta, a, b) => {
            let ra = eval_rec(a, db, nodes, counter);
            let rb = eval_rec(b, db, nodes, counter);
            let start = Instant::now();
            (ops::join(&ra, &rb, theta), start.elapsed())
        }
        Expr::Semijoin(theta, a, b) => {
            let ra = eval_rec(a, db, nodes, counter);
            let rb = eval_rec(b, db, nodes, counter);
            let start = Instant::now();
            (ops::semijoin(&ra, &rb, theta), start.elapsed())
        }
        Expr::GroupCount(cols, a) => {
            let ra = eval_rec(a, db, nodes, counter);
            let start = Instant::now();
            (ops::group_count(&ra, cols), start.elapsed())
        }
    };
    nodes[id] = Some(NodeStat {
        id,
        label: expr.label(),
        operator: naive_operator(expr).to_string(),
        arity: rel.arity(),
        cardinality: rel.len(),
        elapsed,
        partitions: Vec::new(),
    });
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::evaluate;
    use sj_algebra::{division, Condition};
    use sj_storage::Relation;

    fn division_db(groups: i64, divisor: i64) -> Database {
        // R = {1..groups} × {1..divisor}, S = {1..divisor}: every A divides.
        let mut r = Vec::new();
        for a in 1..=groups {
            for b in 1..=divisor {
                r.push([a, b]);
            }
        }
        let rows: Vec<&[i64]> = r.iter().map(|x| x.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&rows));
        db.set(
            "S",
            Relation::unary((1..=divisor).map(sj_storage::Value::int)),
        );
        db
    }

    #[test]
    fn instrumented_matches_plain() {
        let db = division_db(4, 3);
        let e = division::division_double_difference("R", "S");
        let plain = evaluate(&e, &db).unwrap();
        let inst = evaluate_instrumented(&e, &db).unwrap();
        assert_eq!(plain, inst.result);
    }

    #[test]
    fn node_ids_match_preorder_subexpressions() {
        let db = division_db(3, 2);
        let e = division::division_double_difference("R", "S");
        let report = evaluate_instrumented(&e, &db).unwrap();
        let subs = e.subexpressions();
        assert_eq!(report.nodes.len(), subs.len());
        for (stat, sub) in report.nodes.iter().zip(subs.iter()) {
            assert_eq!(stat.label, sub.label(), "node {}", stat.id);
        }
    }

    #[test]
    fn division_plan_has_quadratic_intermediate_on_this_family() {
        // On the all-divide family, π₁(R) × S has |A-values| · |S| tuples.
        let db = division_db(10, 10);
        let e = division::division_double_difference("R", "S");
        let report = evaluate_instrumented(&e, &db).unwrap();
        // |D| = 110; the product node has 100 tuples.
        assert_eq!(report.db_size, 110);
        assert!(report.max_intermediate() >= 100);
        // The cartesian-product node itself carries 10 × 10 tuples.
        let product = report
            .nodes
            .iter()
            .find(|n| n.label.starts_with("join["))
            .unwrap();
        assert_eq!(product.cardinality, 100);
    }

    #[test]
    fn semijoin_plan_never_exceeds_input() {
        let mut db = Database::new();
        db.set(
            "Visits",
            Relation::from_int_rows(&[&[1, 10], &[2, 20], &[3, 30]]),
        );
        db.set("Serves", Relation::from_int_rows(&[&[10, 5], &[20, 6]]));
        db.set("Likes", Relation::from_int_rows(&[&[1, 5]]));
        let e = division::example3_lousy_bar_sa();
        let report = evaluate_instrumented(&e, &db).unwrap();
        assert!(report.max_intermediate() <= report.db_size);
    }

    #[test]
    fn expansion_factor_and_render() {
        let db = division_db(5, 5);
        let e = division::division_double_difference("R", "S");
        let report = evaluate_instrumented(&e, &db).unwrap();
        assert!(report.expansion_factor() > 0.0);
        let s = report.render();
        assert!(s.contains("max intermediate"));
        assert!(s.contains("join["));
    }

    #[test]
    fn union_children_both_counted() {
        let mut db = Database::new();
        db.set("A", Relation::from_int_rows(&[&[1], &[2]]));
        db.set("B", Relation::from_int_rows(&[&[3]]));
        let e = Expr::rel("A").union(Expr::rel("B"));
        let report = evaluate_instrumented(&e, &db).unwrap();
        assert_eq!(report.nodes.len(), 3);
        assert_eq!(report.nodes[0].cardinality, 3); // union
        assert_eq!(report.nodes[1].cardinality, 2); // A
        assert_eq!(report.nodes[2].cardinality, 1); // B
    }

    #[test]
    fn join_node_stats() {
        let mut db = Database::new();
        db.set("A", Relation::from_int_rows(&[&[1], &[2]]));
        db.set("B", Relation::from_int_rows(&[&[1], &[3]]));
        let e = Expr::rel("A").join(Condition::eq(1, 1), Expr::rel("B"));
        let report = evaluate_instrumented(&e, &db).unwrap();
        assert_eq!(report.nodes[0].arity, 2);
        assert_eq!(report.nodes[0].cardinality, 1);
    }
}
