//! # sj-bisim — guarded bisimulation
//!
//! The paper's inexpressibility tool: **C-guarded bisimulation**
//! (Definitions 9–11). GF formulas — and hence, via Theorem 8, SA=
//! expressions — cannot distinguish guarded-bisimilar databases
//! (Proposition 13 / Corollary 14), so exhibiting a bisimulation between a
//! database where a query answers and one where it does not proves the
//! query is outside SA=, and therefore (Theorems 17/18) quadratic in RA.
//!
//! * [`iso`] — partial bijections and the C-partial-isomorphism check
//!   (Definition 10).
//! * [`check`] — verify a user-supplied set `I` is a bisimulation
//!   (Definition 11) — used to machine-check the sets the paper exhibits
//!   in Example 12, Proposition 26, and Section 4.1.
//! * [`solver`] — compute the *maximal* guarded bisimulation and decide
//!   `A, ā ∼ᶜ B, b̄` with certificates.

pub mod check;
pub mod iso;
pub mod solver;

pub use check::{check_bisimulation, Bisimulation};
pub use iso::{check_c_partial_iso, PartialIso};
pub use solver::{are_bisimilar, maximal_bisimulation};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sj_storage::{Database, Relation, Tuple};

    fn arb_relation(arity: usize) -> impl Strategy<Value = Relation> {
        proptest::collection::vec(proptest::collection::vec(0i64..5, arity), 0..6).prop_map(
            move |rows| {
                Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r)))
                    .unwrap()
            },
        )
    }

    fn arb_db() -> impl Strategy<Value = Database> {
        (arb_relation(2), arb_relation(1)).prop_map(|(r, s)| {
            let mut db = Database::new();
            db.set("R", r);
            db.set("S", s);
            db
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The maximal bisimulation, when nonempty, passes the full
        /// Definition 11 check.
        #[test]
        fn maximal_is_valid(a in arb_db(), b in arb_db()) {
            let m = maximal_bisimulation(&a, &b, &[]);
            if !m.is_empty() {
                check_bisimulation(&a, &b, &Bisimulation::new(m), &[]).unwrap();
            }
        }

        /// Reflexivity: every stored tuple is bisimilar to itself in the
        /// same database, with a verifying certificate.
        #[test]
        fn reflexive(a in arb_db()) {
            for t in a.tuple_space_set() {
                let cert = are_bisimilar(&a, &t, &a, &t, &[]);
                prop_assert!(cert.is_some(), "identity on {} not bisimilar", t);
                check_bisimulation(&a, &a, &cert.unwrap(), &[]).unwrap();
            }
        }

        /// Symmetry: A,ā ∼ B,b̄ iff B,b̄ ∼ A,ā.
        #[test]
        fn symmetric(a in arb_db(), b in arb_db()) {
            let ta = a.tuple_space_set();
            let tb = b.tuple_space_set();
            for x in ta.iter().take(3) {
                for y in tb.iter().take(3) {
                    let fwd = are_bisimilar(&a, x, &b, y, &[]).is_some();
                    let bwd = are_bisimilar(&b, y, &a, x, &[]).is_some();
                    prop_assert_eq!(fwd, bwd, "asymmetry at {} / {}", x, y);
                }
            }
        }

        /// An order-shifted isomorphic copy is bisimilar to the original
        /// (shifting every integer by a constant preserves order and
        /// relation patterns).
        #[test]
        fn shifted_copy_bisimilar(a in arb_db(), shift in 10i64..20) {
            let b = a.map_values(|v| match v {
                sj_storage::Value::Int(i) => sj_storage::Value::Int(i + shift),
                other => other.clone(),
            });
            for t in a.tuple_space_set().iter().take(3) {
                let shifted: Tuple = t.iter().map(|v| match v {
                    sj_storage::Value::Int(i) => sj_storage::Value::Int(i + shift),
                    other => other.clone(),
                }).collect();
                prop_assert!(
                    are_bisimilar(&a, t, &b, &shifted, &[]).is_some(),
                    "shifted copy of {} not bisimilar", t
                );
            }
        }
    }
}
