//! # sj-workload — deterministic data generators and the paper's figures
//!
//! * [`rng`] — a seeded SplitMix64 PRNG and a Zipf sampler; every
//!   workload in the workspace is bit-reproducible from its seed.
//! * [`figures`] — Figs. 1–6 of the paper as constant databases, plus the
//!   Fig. 4 expression and the Example 3 beer-drinkers instance.
//! * [`generators`] — division workloads (group count, divisor size,
//!   containment fraction), set-join workloads (set-size and element
//!   distributions incl. Zipf), cyclic-join workloads (triangles,
//!   4-cycles, zipf-skewed hub edges) for the join-order experiments,
//!   random databases for property tests, and scaling series for the
//!   growth experiments.
//! * [`serving`] — client traces for the serving experiments: a
//!   zipf-skewed hot query set interleaved with writes and ANALYZEs.

pub mod figures;
pub mod generators;
pub mod rng;
pub mod serving;

pub use generators::{
    adversarial_division_series, division_series, random_database, CyclicWorkload,
    DivisionWorkload, EdgeDist, ElementDist, SetJoinWorkload, SetSizeDist, ELEMENT_BASE,
};
pub use rng::{SplitMix64, Zipf};
pub use serving::{ServingWorkload, TraceOp};
