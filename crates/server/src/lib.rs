//! # sj-server — concurrent snapshot-isolated query serving
//!
//! The serving front end over the paper engine: many concurrent client
//! [`Session`]s run queries against an evolving [`Database`] while
//! writers keep mutating it, with a two-tier plan/result cache making
//! hot (zipf-skewed) query sets nearly free.
//!
//! ```text
//!  clients ──► Session ──► bounded queue ──► worker pool (N threads)
//!                                                 │ snapshot capture
//!                  ┌──────────────────────────────┤ (read lock, µs)
//!                  ▼                              ▼
//!        RwLock<master Database>        result cache ──hit──► Arc<Relation>
//!          ▲ copy-on-write writes         │miss
//!          │ + per-relation epochs      plan cache ──hit──► execute plan
//!        WriteOp (Insert/Set/              │miss
//!        Remove/Analyze)                 Engine::fork(snapshot) — cold
//! ```
//!
//! **Snapshot isolation.** Every query executes against an immutable
//! [`sj_storage::Snapshot`] — one `Arc` clone per relation, zero tuple
//! copies — captured under a brief read lock. Writers mutate the master
//! through the storage layer's copy-on-write (`Arc::make_mut`), so
//! readers never block writers beyond the capture window and a running
//! query never observes a torn write. [`Session::begin`] pins one
//! snapshot across many queries ([`ReadTxn`]).
//!
//! **Cache tiers.** Both keyed by [`sj_algebra::Expr::structural_hash`]
//! *plus a full expression equality check* (collisions degrade to
//! misses, never wrong results):
//!
//! * the **result cache** stamps each entry with the mutation epoch of
//!   every relation the query reads; any write to one of them
//!   invalidates the entry (eager sweep + stamp re-validation on hit);
//! * the **plan cache** stamps entries with the statistics epoch and
//!   operand arities; data writes leave plans valid (a physical plan is
//!   correct for any contents), `ANALYZE` retires them.
//!
//! **Scheduling.** The configured core budget is divided between
//! inter-query concurrency (worker threads) and intra-query partition
//! parallelism (each worker's engine runs with `cores / workers`
//! partition workers) — the engine's [`sj_eval::Parallelism`] knob
//! becomes a server policy instead of a per-query setting.
//!
//! **Observability.** [`ServerStats`] counts queries, per-tier hits,
//! writes, ANALYZEs and queue rejections, and folds every cold query's
//! [`sj_eval::PlannedReport::max_q_error`] into
//! [`StatsSnapshot::max_q_error_seen`] so cost-model drift shows up in
//! serving dashboards, not just per-query `render()` output. The
//! counters are a facade over a shared [`sj_obs::Metrics`] registry
//! that also carries per-tier latency histograms, queue-wait, and
//! per-class / per-session query counters —
//! [`Server::metrics_text`] renders the whole registry as a
//! Prometheus-style exposition. Workers open `server.dispatch` /
//! `server.query` spans around every job (zero-cost while no
//! [`sj_obs::Collector`] is installed), so an installed collector sees
//! the full serving hierarchy down to individual kernel partitions;
//! [`Session::query_profiled`] attaches a rendered
//! [`sj_eval::QueryProfile`] (`EXPLAIN ANALYZE`) to the response for
//! any tier.
//!
//! The serving workload driver lives in `sj-workload`
//! (`ServingWorkload`), the throughput experiment in
//! `experiments -- serving`, and the differential suites in
//! `crates/server/tests/` and the workspace `tests/serving.rs`.

#![warn(missing_docs)]

mod cache;
mod metrics;
mod server;

pub use cache::{ExprCache, ExprHashFn};
pub use metrics::{ServerStats, StatsSnapshot};
pub use server::{
    CacheMode, Provenance, QueryResponse, ReadTxn, Server, ServerConfig, ServerError, Session,
    WriteOp,
};

use sj_storage::Database;

/// Convenience: start a server over `db` with the default
/// [`ServerConfig`].
pub fn serve(db: Database) -> Server {
    Server::start(db, ServerConfig::default())
}
