//! Per-relation statistics: `ANALYZE` for canonical set-semantics
//! relations.
//!
//! [`TableStats::analyze`] runs directly on the relation's columnar
//! view ([`sj_storage::Columns`]): each column gets fused dense scans
//! matched to its physical representation —
//!
//! * **integer columns** — one `i64` scan for distinct/min/max/range,
//!   one counting scan for the [`Histogram`] (the range gates the
//!   bucket layout, so counting cannot start earlier);
//! * **string columns** — a *single* scan over the dictionary codes: a
//!   code bitmap gives the exact distinct count, code order equals
//!   string order so min/max are code min/max, and the code range is
//!   known before the scan starts, so the [`StringHistogram`] counts in
//!   the same pass;
//! * **mixed-variant columns** (rare) — the row-wise `Value` scan.
//!
//! The output feeds the cost model and the cardinality estimator:
//!
//! * per-column distinct count, min/max, an equi-width [`Histogram`]
//!   over integer values, and a [`StringHistogram`] over dictionary
//!   codes for string columns ([`ColumnStats`]);
//! * for binary relations, the **set-join view** grouped on the first
//!   column ([`GroupStats`]): group count and the set-size distribution
//!   (min/mean/max and the second moment, which quadratic-cost
//!   estimates need — Definition 15 measures inputs by cardinality, but
//!   the set-join algorithms' work is governed by *group* structure).

use crate::histogram::{Histogram, StringHistogram, DEFAULT_BUCKETS};
use sj_storage::{ColumnData, FxHashMap, Relation, StrDict, Value};
use std::sync::Arc;

/// Statistics for one column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Exact number of distinct values.
    pub distinct: usize,
    /// Exact count of the column's most frequent value — the skew
    /// statistic. Uniform columns have `max_freq ≈ rows / distinct`;
    /// a hub value (the regime where pairwise join plans blow past the
    /// AGM bound and the multiway join pays off) shows up here while
    /// the equi-width histogram smears it across a bucket.
    pub max_freq: usize,
    /// Smallest value (None for an empty relation).
    pub min: Option<Value>,
    /// Largest value (None for an empty relation).
    pub max: Option<Value>,
    /// Equi-width histogram over the column's integer values.
    pub histogram: Histogram,
    /// Histogram over the dictionary codes of a string column (`None`
    /// unless the column is dictionary-encoded).
    pub strings: Option<StringHistogram>,
}

/// The set-join view of a binary relation `R(A, B)`: statistics of the
/// grouping `A ↦ {B : (A,B) ∈ R}`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Number of groups (distinct A-values).
    pub groups: usize,
    /// Smallest set size.
    pub min_set: usize,
    /// Largest set size.
    pub max_set: usize,
    /// Mean set size (`rows / groups`).
    pub mean_set: f64,
    /// Second moment of the set size, `E[s²]` — the expected work of a
    /// per-group quadratic pass is `groups · E[s²]`-shaped, which the
    /// mean alone underestimates on skewed inputs.
    pub mean_set_sq: f64,
}

/// Statistics for one relation, produced by [`TableStats::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Cardinality (the paper's Definition 15 size).
    pub rows: usize,
    /// Arity of the analyzed relation.
    pub arity: usize,
    /// Per-column statistics, one entry per column (0-based).
    pub columns: Vec<ColumnStats>,
    /// Set-join view, present iff the relation is binary.
    pub group: Option<GroupStats>,
}

impl TableStats {
    /// Analyze a relation through its columnar view: fused dense scans
    /// per column (see the module docs for the per-representation
    /// breakdown) plus the group scan over column 0's run lengths —
    /// `StatsMode::Analyze` runs this per operator call, so the scan
    /// count matters.
    ///
    /// Canonical storage order makes the leading column's distinct
    /// count and the group boundaries allocation-free run counts; only
    /// the non-leading distinct counts need a hash set (integers) or a
    /// code bitmap (strings).
    pub fn analyze(r: &Relation) -> TableStats {
        let view = r.columns();
        let arity = r.arity();
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            columns.push(match view.col(c) {
                ColumnData::Int(v) => Self::analyze_int(v, c == 0),
                ColumnData::Str(codes) => Self::analyze_str(codes, view.dict(), c == 0),
                ColumnData::Mixed(vals) => Self::analyze_mixed(vals, c == 0),
            });
        }
        let group = (arity == 2).then(|| Self::group_scan(r));
        TableStats {
            rows: r.len(),
            arity,
            columns,
            group,
        }
    }

    /// Integer column: fused distinct/max-frequency/min/max scan over
    /// the dense `i64` slice, then one counting scan for the histogram.
    fn analyze_int(v: &[i64], leading: bool) -> ColumnStats {
        let Some((&first, rest)) = v.split_first() else {
            return Self::empty_column();
        };
        let (mut lo, mut hi) = (first, first);
        let mut distinct = 1usize;
        let mut max_freq = 1usize;
        let mut run = 1usize;
        let mut prev = first;
        let mut counts: FxHashMap<i64, u32> = FxHashMap::default();
        if !leading {
            counts.reserve(v.len());
            counts.insert(first, 1);
        }
        for &x in rest {
            lo = lo.min(x);
            hi = hi.max(x);
            if leading {
                // Sorted order: distinct = run count, max frequency =
                // longest run.
                if x != prev {
                    distinct += 1;
                    prev = x;
                    run = 1;
                } else {
                    run += 1;
                    max_freq = max_freq.max(run);
                }
            } else {
                *counts.entry(x).or_insert(0) += 1;
            }
        }
        if !leading {
            distinct = counts.len();
            max_freq = counts.values().copied().max().unwrap_or(1) as usize;
        }
        ColumnStats {
            distinct,
            max_freq,
            min: Some(Value::int(lo)),
            max: Some(Value::int(hi)),
            histogram: Histogram::build_range(v.iter().copied(), lo, hi, DEFAULT_BUCKETS),
            strings: None,
        }
    }

    /// String column: one fused scan over the dictionary codes —
    /// distinct via a code bitmap, min/max via code order (code order
    /// equals string order), and histogram counting over the known
    /// code range `0..dict.len()`.
    fn analyze_str(codes: &[u32], dict: &Arc<StrDict>, leading: bool) -> ColumnStats {
        let Some((&first, rest)) = codes.split_first() else {
            return Self::empty_column();
        };
        let (mut lo, mut hi) = (first, first);
        let mut distinct = 1usize;
        let mut counts = vec![0u32; dict.len()];
        counts[first as usize] = 1;
        let mut prev = first;
        for &x in rest {
            lo = lo.min(x);
            hi = hi.max(x);
            if leading {
                if x != prev {
                    distinct += 1;
                    prev = x;
                }
            } else if counts[x as usize] == 0 {
                distinct += 1;
            }
            counts[x as usize] += 1;
        }
        let max_freq = counts.iter().copied().max().unwrap_or(1) as usize;
        ColumnStats {
            distinct,
            max_freq,
            min: Some(Value::Str(dict.get(lo).clone())),
            max: Some(Value::Str(dict.get(hi).clone())),
            // No integer values: the classic histogram stays empty, the
            // dictionary-code histogram carries the distribution.
            histogram: Histogram::empty(),
            strings: Some(StringHistogram::build(dict.clone(), codes)),
        }
    }

    /// Mixed-variant column: the row-wise `Value` scan (two passes, as
    /// the histogram needs the integer range first).
    fn analyze_mixed(vals: &[Value], leading: bool) -> ColumnStats {
        let mut runs = 0usize;
        let mut run = 0usize;
        let mut max_freq = 0usize;
        let mut prev: Option<&Value> = None;
        let mut counts: FxHashMap<&Value, u32> = FxHashMap::default();
        if !leading {
            counts.reserve(vals.len());
        }
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        let mut int_range: Option<(i64, i64)> = None;
        for v in vals {
            if leading {
                if prev != Some(v) {
                    runs += 1;
                    prev = Some(v);
                    run = 1;
                } else {
                    run += 1;
                }
                max_freq = max_freq.max(run);
            } else {
                *counts.entry(v).or_insert(0) += 1;
            }
            if min.is_none_or(|m| v < m) {
                min = Some(v);
            }
            if max.is_none_or(|m| v > m) {
                max = Some(v);
            }
            if let Some(i) = v.as_int() {
                int_range = Some(match int_range {
                    None => (i, i),
                    Some((lo, hi)) => (lo.min(i), hi.max(i)),
                });
            }
        }
        let histogram = match int_range {
            Some((lo, hi)) => Histogram::build_range(
                vals.iter().filter_map(|v| v.as_int()),
                lo,
                hi,
                DEFAULT_BUCKETS,
            ),
            None => Histogram::empty(),
        };
        ColumnStats {
            distinct: if leading { runs } else { counts.len() },
            max_freq: if leading {
                max_freq
            } else {
                counts.values().copied().max().unwrap_or(0) as usize
            },
            min: min.cloned(),
            max: max.cloned(),
            histogram,
            strings: None,
        }
    }

    fn empty_column() -> ColumnStats {
        ColumnStats {
            distinct: 0,
            max_freq: 0,
            min: None,
            max: None,
            histogram: Histogram::empty(),
            strings: None,
        }
    }

    /// Set-size moments from column 0's run lengths — a dense scan
    /// over the physical column, no `Value` comparisons for typed
    /// columns.
    fn group_scan(r: &Relation) -> GroupStats {
        let view = r.columns();
        let mut groups = 0usize;
        let (mut min_set, mut max_set) = (usize::MAX, 0usize);
        let mut sum_sq = 0f64;
        {
            let mut close = |run: usize| {
                groups += 1;
                min_set = min_set.min(run);
                max_set = max_set.max(run);
                sum_sq += (run * run) as f64;
            };
            fn runs<T: PartialEq>(v: &[T], close: &mut impl FnMut(usize)) {
                let mut run = 0usize;
                for i in 0..v.len() {
                    if run > 0 && v[i] == v[i - 1] {
                        run += 1;
                    } else {
                        if run > 0 {
                            close(run);
                        }
                        run = 1;
                    }
                }
                if run > 0 {
                    close(run);
                }
            }
            match view.col(0) {
                ColumnData::Int(v) => runs(v, &mut close),
                ColumnData::Str(v) => runs(v, &mut close),
                ColumnData::Mixed(v) => runs(v, &mut close),
            }
        }
        GroupStats {
            groups,
            min_set: if groups == 0 { 0 } else { min_set },
            max_set,
            mean_set: if groups == 0 {
                0.0
            } else {
                r.len() as f64 / groups as f64
            },
            mean_set_sq: if groups == 0 {
                0.0
            } else {
                sum_sq / groups as f64
            },
        }
    }

    /// Distinct count of a column, 0 when out of range — the estimator's
    /// total-function accessor.
    pub fn distinct(&self, col: usize) -> usize {
        self.columns.get(col).map_or(0, |c| c.distinct)
    }

    /// The group count of the set-join view ([`GroupStats::groups`]);
    /// falls back to the leading column's distinct count for non-binary
    /// relations and 0 for arity 0.
    pub fn groups(&self) -> usize {
        self.group
            .as_ref()
            .map_or_else(|| self.distinct(0), |g| g.groups)
    }

    /// Mean set size of the set-join view (0 when not binary or empty).
    pub fn mean_set(&self) -> f64 {
        self.group.as_ref().map_or(0.0, |g| g.mean_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(rows: &[[i64; 2]]) -> Relation {
        Relation::from_tuples(2, rows.iter().map(|r| sj_storage::Tuple::from_ints(r))).unwrap()
    }

    #[test]
    fn analyze_empty_relation() {
        let s = TableStats::analyze(&Relation::empty(2));
        assert_eq!(s.rows, 0);
        assert_eq!(s.arity, 2);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.distinct(0), 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.columns[0].histogram.count(), 0);
        let g = s.group.as_ref().unwrap();
        assert_eq!((g.groups, g.min_set, g.max_set), (0, 0, 0));
        assert_eq!(g.mean_set, 0.0);
        assert_eq!(s.groups(), 0);
    }

    #[test]
    fn analyze_counts_columns_and_groups() {
        let r = pairs(&[[1, 10], [1, 11], [1, 12], [2, 10], [3, 10], [3, 13]]);
        let s = TableStats::analyze(&r);
        assert_eq!(s.rows, 6);
        assert_eq!(s.distinct(0), 3);
        assert_eq!(s.distinct(1), 4);
        assert_eq!(s.columns[0].min, Some(Value::int(1)));
        assert_eq!(s.columns[1].max, Some(Value::int(13)));
        // Max frequency: column 0 from runs (leading), column 1 from
        // the count map (value 10 occurs three times).
        assert_eq!(s.columns[0].max_freq, 3);
        assert_eq!(s.columns[1].max_freq, 3);
        let g = s.group.as_ref().unwrap();
        assert_eq!(g.groups, 3);
        assert_eq!(g.min_set, 1);
        assert_eq!(g.max_set, 3);
        assert_eq!(g.mean_set, 2.0);
        // E[s²] = (9 + 1 + 4) / 3
        assert!((g.mean_set_sq - 14.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_single_group_and_all_distinct() {
        // Single value everywhere.
        let one = pairs(&[[5, 9]]);
        let s = TableStats::analyze(&one);
        assert_eq!((s.distinct(0), s.distinct(1)), (1, 1));
        assert_eq!(s.group.as_ref().unwrap().groups, 1);
        assert_eq!(s.columns[1].histogram.estimate_eq(&Value::int(9)), 1.0);
        // All-distinct keys: every group is a singleton.
        let rows: Vec<[i64; 2]> = (0..50).map(|i| [i, 7]).collect();
        let s = TableStats::analyze(&pairs(&rows));
        let g = s.group.as_ref().unwrap();
        assert_eq!(g.groups, 50);
        assert_eq!((g.min_set, g.max_set), (1, 1));
        assert_eq!(g.mean_set_sq, 1.0);
        assert_eq!(s.distinct(1), 1);
        // A constant column is one hub; an all-distinct column has none.
        assert_eq!(s.columns[0].max_freq, 1);
        assert_eq!(s.columns[1].max_freq, 50);
    }

    #[test]
    fn analyze_unary_and_string_relations() {
        let u = Relation::unary((0..20).map(Value::int));
        let s = TableStats::analyze(&u);
        assert_eq!(s.arity, 1);
        assert!(s.group.is_none());
        assert_eq!(s.groups(), 20, "falls back to distinct(0)");
        let names = Relation::from_str_rows(&[&["an", "bob"], &["an", "carol"]]);
        let s = TableStats::analyze(&names);
        assert_eq!(s.distinct(0), 1);
        assert_eq!(s.distinct(1), 2);
        assert_eq!(s.columns[0].histogram.count(), 0, "no integer bins");
        assert_eq!(s.columns[0].min, Some(Value::str("an")));
        assert_eq!(s.columns[0].max, Some(Value::str("an")));
        // The dictionary-code histograms carry the string distribution.
        let h0 = s.columns[0].strings.as_ref().unwrap();
        assert_eq!(h0.count(), 2);
        assert_eq!(h0.estimate_eq("an"), 2.0);
        assert_eq!(h0.estimate_eq("bob"), 0.0, "other column's string");
        let h1 = s.columns[1].strings.as_ref().unwrap();
        assert_eq!(h1.estimate_eq("carol"), 1.0);
        assert_eq!(h1.estimate_eq("zed"), 0.0, "absent from the dictionary");
    }

    #[test]
    fn columnar_analyze_matches_on_mixed_columns() {
        // A column holding both variants goes through the row-wise
        // fallback; distinct/min/max/histogram still line up.
        let r = Relation::from_tuples(
            2,
            vec![
                sj_storage::tuple![1, 5],
                sj_storage::tuple![1, "x"],
                sj_storage::tuple![2, 5],
                sj_storage::tuple![3, 9],
            ],
        )
        .unwrap();
        let s = TableStats::analyze(&r);
        assert_eq!(s.distinct(0), 3);
        assert_eq!(s.distinct(1), 3);
        assert_eq!(s.columns[1].min, Some(Value::int(5)));
        assert_eq!(
            s.columns[1].max,
            Some(Value::str("x")),
            "ints sort before strings"
        );
        assert_eq!(s.columns[1].histogram.count(), 3, "integer subset binned");
        assert!(s.columns[1].strings.is_none());
        let g = s.group.as_ref().unwrap();
        assert_eq!((g.groups, g.min_set, g.max_set), (3, 1, 2));
    }

    #[test]
    fn distinct_out_of_range_is_zero() {
        let s = TableStats::analyze(&pairs(&[[1, 2]]));
        assert_eq!(s.distinct(5), 0);
    }
}
