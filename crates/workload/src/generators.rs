//! Deterministic synthetic workloads for the experiments.
//!
//! All generators take an explicit seed and are bit-reproducible. Value
//! layout convention: A-values (group keys) live in `1..=groups`, B-values
//! (set elements) in `1_000_001..` — disjoint ranges so joins never match
//! accidentally across roles.

use crate::rng::{SplitMix64, Zipf};
use sj_algebra::{Condition, Expr};
use sj_storage::{Database, Relation, Tuple, Value};

/// Offset separating element values from group keys.
pub const ELEMENT_BASE: i64 = 1_000_000;

/// Parameters of a division workload `R(A,B) ÷ S(B)`.
#[derive(Clone, Debug)]
pub struct DivisionWorkload {
    /// Number of A-groups in the dividend.
    pub groups: usize,
    /// Number of values in the divisor.
    pub divisor_size: usize,
    /// Fraction of groups that fully contain the divisor.
    pub containment_fraction: f64,
    /// Extra non-divisor B-values per group (uniform 0..=this).
    pub extra_per_group: usize,
    /// Size of the non-divisor element pool.
    pub noise_domain: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for DivisionWorkload {
    fn default() -> Self {
        DivisionWorkload {
            groups: 64,
            divisor_size: 8,
            containment_fraction: 0.5,
            extra_per_group: 4,
            noise_domain: 1024,
            seed: 0xD1_71_51_0E,
        }
    }
}

impl DivisionWorkload {
    /// Generate `(R, S, expected_containment_quotient)`.
    ///
    /// Non-containing groups get a proper subset of the divisor (possibly
    /// empty) so they are *near misses*, plus noise; containing groups get
    /// the whole divisor plus noise. The expected quotient is returned for
    /// validation.
    pub fn generate(&self) -> (Relation, Relation, Relation) {
        let mut span = sj_obs::span!(
            "workload.generate",
            kind = "division",
            groups = self.groups,
            seed = self.seed
        );
        let mut rng = SplitMix64::new(self.seed);
        let divisor: Vec<i64> = (0..self.divisor_size)
            .map(|i| ELEMENT_BASE + 1 + i as i64)
            .collect();
        let mut r_rows: Vec<Tuple> = Vec::new();
        let mut winners: Vec<Tuple> = Vec::new();
        for g in 1..=self.groups as i64 {
            let contains = rng.chance(self.containment_fraction);
            if contains {
                for &b in &divisor {
                    r_rows.push(Tuple::from_ints(&[g, b]));
                }
                winners.push(Tuple::from_ints(&[g]));
            } else if !divisor.is_empty() {
                // A proper subset: drop at least one divisor element.
                let keep = if divisor.len() == 1 {
                    0
                } else {
                    rng.below(divisor.len() as u64) as usize
                };
                for &ix in rng.sample_indices(divisor.len(), keep).iter() {
                    r_rows.push(Tuple::from_ints(&[g, divisor[ix]]));
                }
            }
            let extra = rng.below(self.extra_per_group as u64 + 1) as usize;
            for _ in 0..extra {
                let noise = ELEMENT_BASE
                    + 1
                    + self.divisor_size as i64
                    + rng.below(self.noise_domain.max(1) as u64) as i64;
                r_rows.push(Tuple::from_ints(&[g, noise]));
            }
        }
        let r = Relation::from_tuples(2, r_rows).expect("binary rows");
        let s = Relation::unary(divisor.iter().map(|&b| Value::int(b)));
        // Empty divisor ⇒ every group that actually appears qualifies.
        let expected = if self.divisor_size == 0 {
            Relation::from_tuples(1, r.iter().map(|t| Tuple::new(vec![t[0].clone()])))
                .expect("unary")
        } else {
            Relation::from_tuples(1, winners).expect("unary")
        };
        span.attr("rows", r.len() + s.len());
        (r, s, expected)
    }

    /// The workload as a database over `{R/2, S/1}` (for RA-plan
    /// evaluation).
    pub fn database(&self) -> Database {
        let (r, s, _) = self.generate();
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        db
    }
}

/// Element-set size distribution for set-join workloads.
#[derive(Clone, Copy, Debug)]
pub enum SetSizeDist {
    /// Every group has exactly this many elements.
    Fixed(usize),
    /// Uniform in the inclusive range.
    Uniform(usize, usize),
}

/// Element-value distribution.
#[derive(Clone, Copy, Debug)]
pub enum ElementDist {
    /// Uniform over the domain.
    Uniform,
    /// Zipf with the given skew (θ); hot elements shared by many sets —
    /// the adversarial regime for signature filters.
    Zipf(f64),
}

/// Parameters of a set-join workload `R(A,B) ⋈_{BθD} S(C,D)`.
#[derive(Clone, Debug)]
pub struct SetJoinWorkload {
    /// Number of groups on the left.
    pub r_groups: usize,
    /// Number of groups on the right.
    pub s_groups: usize,
    /// Set-size distribution for both sides.
    pub set_size: SetSizeDist,
    /// Element domain size.
    pub domain: usize,
    /// Element distribution.
    pub elements: ElementDist,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for SetJoinWorkload {
    fn default() -> Self {
        SetJoinWorkload {
            r_groups: 64,
            s_groups: 64,
            set_size: SetSizeDist::Uniform(2, 8),
            domain: 256,
            elements: ElementDist::Uniform,
            seed: 0x5E_7C_0D_E5,
        }
    }
}

impl SetJoinWorkload {
    fn one_side(&self, rng: &mut SplitMix64, groups: usize, key_base: i64) -> Relation {
        let zipf = match self.elements {
            ElementDist::Zipf(theta) => Some(Zipf::new(self.domain, theta)),
            ElementDist::Uniform => None,
        };
        let mut rows: Vec<Tuple> = Vec::new();
        for g in 0..groups as i64 {
            let size = match self.set_size {
                SetSizeDist::Fixed(k) => k,
                SetSizeDist::Uniform(lo, hi) => lo + rng.below((hi - lo) as u64 + 1) as usize,
            };
            let mut chosen = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while chosen.len() < size.min(self.domain) && attempts < size * 20 {
                let e = match &zipf {
                    Some(z) => z.sample(rng),
                    None => rng.below(self.domain as u64) as usize,
                };
                chosen.insert(e);
                attempts += 1;
            }
            for e in chosen {
                rows.push(Tuple::from_ints(&[
                    key_base + g,
                    ELEMENT_BASE + 1 + e as i64,
                ]));
            }
        }
        Relation::from_tuples(2, rows).expect("binary rows")
    }

    /// Generate `(R, S)`.
    pub fn generate(&self) -> (Relation, Relation) {
        let mut span = sj_obs::span!(
            "workload.generate",
            kind = "set-join",
            groups = self.r_groups + self.s_groups,
            seed = self.seed
        );
        let mut rng = SplitMix64::new(self.seed);
        let r = self.one_side(&mut rng, self.r_groups, 1);
        // Right-side keys live in a disjoint range.
        let s = self.one_side(&mut rng, self.s_groups, 500_001);
        span.attr("rows", r.len() + s.len());
        (r, s)
    }
}

/// Edge-value distribution for cyclic-join workloads.
#[derive(Clone, Copy, Debug)]
pub enum EdgeDist {
    /// Endpoints uniform over the vertex domain.
    Uniform,
    /// Both endpoints Zipf(θ)-distributed: low-numbered vertices become
    /// hubs, so the cyclic join's pairwise intermediates blow up while the
    /// AGM output bound stays modest — the regime where the planner should
    /// switch to the multiway operator.
    Zipf(f64),
}

/// Parameters of a cyclic-join workload: `cycle_len` binary edge tables
/// `E0(v0,v1), E1(v1,v2), …, E{k-1}(v{k-1},v0)` joined in a cycle
/// (triangles for `cycle_len = 3`, 4-cycles for 4, …).
#[derive(Clone, Debug)]
pub struct CyclicWorkload {
    /// Number of relations in the cycle (≥ 3).
    pub cycle_len: usize,
    /// Edges drawn per table (duplicates collapse under set semantics).
    pub edges_per_table: usize,
    /// Vertex domain size.
    pub vertices: usize,
    /// Endpoint distribution.
    pub edges: EdgeDist,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CyclicWorkload {
    fn default() -> Self {
        CyclicWorkload {
            cycle_len: 3,
            edges_per_table: 512,
            vertices: 256,
            edges: EdgeDist::Uniform,
            seed: 0xC7_C1_EC_A5,
        }
    }
}

impl CyclicWorkload {
    /// Table names `E0..E{k-1}`, in cycle order.
    pub fn table_names(&self) -> Vec<String> {
        (0..self.cycle_len).map(|i| format!("E{i}")).collect()
    }

    /// Generate the edge tables, in cycle order.
    pub fn generate(&self) -> Vec<Relation> {
        assert!(self.cycle_len >= 3, "a cycle needs at least 3 relations");
        let mut span = sj_obs::span!(
            "workload.generate",
            kind = "cyclic",
            groups = self.cycle_len,
            seed = self.seed
        );
        let mut rng = SplitMix64::new(self.seed);
        let zipf = match self.edges {
            EdgeDist::Zipf(theta) => Some(Zipf::new(self.vertices.max(1), theta)),
            EdgeDist::Uniform => None,
        };
        let endpoint = |rng: &mut SplitMix64| -> i64 {
            match &zipf {
                Some(z) => 1 + z.sample(rng) as i64,
                None => 1 + rng.below(self.vertices.max(1) as u64) as i64,
            }
        };
        let tables: Vec<Relation> = (0..self.cycle_len)
            .map(|_| {
                let rows = (0..self.edges_per_table)
                    .map(|_| Tuple::from_ints(&[endpoint(&mut rng), endpoint(&mut rng)]));
                Relation::from_tuples(2, rows).expect("binary rows")
            })
            .collect();
        span.attr("rows", tables.iter().map(Relation::len).sum::<usize>());
        tables
    }

    /// The workload as a database over `{E0/2, …, E{k-1}/2}`.
    pub fn database(&self) -> Database {
        let mut db = Database::new();
        for (name, rel) in self.table_names().into_iter().zip(self.generate()) {
            db.set(&name, rel);
        }
        db
    }

    /// The cycle query in **as-written** left-deep chain order
    /// `(((E0 ⋈ E1) ⋈ E2) ⋈ …)`, with the closing relation's second column
    /// equated back to the first — exactly the shape the join-order
    /// enumerator and the multiway trigger inspect.
    pub fn query(&self) -> Expr {
        let names = self.table_names();
        let mut expr = Expr::rel(&names[0]);
        for (i, name) in names.iter().enumerate().skip(1) {
            let closing = i == self.cycle_len - 1;
            let cond = if closing {
                // Closing edge: also tie its destination back to v0.
                Condition::eq_pairs([(2 * i, 1), (1, 2)])
            } else {
                // Left's rightmost column (v_i) meets the new edge's source.
                Condition::eq(2 * i, 1)
            };
            expr = expr.join(cond, Expr::rel(name));
        }
        expr
    }
}

/// A random database over `{R/2, S/2, T/1}` with values in a small
/// integer domain — the seed family for the dichotomy analyzer's witness
/// search and for randomized correctness tests.
pub fn random_database(seed: u64, tuples_per_relation: usize, domain: i64) -> Database {
    let mut rng = SplitMix64::new(seed);
    let mut db = Database::new();
    let binary = |rng: &mut SplitMix64| {
        Relation::from_tuples(
            2,
            (0..tuples_per_relation)
                .map(|_| Tuple::from_ints(&[rng.range_i64(1, domain), rng.range_i64(1, domain)])),
        )
        .expect("binary")
    };
    let r = binary(&mut rng);
    let s = binary(&mut rng);
    let t = Relation::from_tuples(
        1,
        (0..tuples_per_relation).map(|_| Tuple::from_ints(&[rng.range_i64(1, domain)])),
    )
    .expect("unary");
    db.set("R", r);
    db.set("S", s);
    db.set("T", t);
    db
}

/// A scaling series of division databases with fixed shape parameters and
/// growing group counts: the workhorse of the growth-exponent experiments.
pub fn division_series(
    group_counts: &[usize],
    divisor_size: usize,
    containment_fraction: f64,
    seed: u64,
) -> Vec<Database> {
    group_counts
        .iter()
        .map(|&groups| {
            DivisionWorkload {
                groups,
                divisor_size,
                containment_fraction,
                extra_per_group: 2,
                noise_domain: 4 * groups,
                seed: seed ^ groups as u64,
            }
            .database()
        })
        .collect()
}

/// The **adversarial** division family realizing Definition 16's max:
/// `|D| = Θ(k)` while the classical plans' product node is `Θ(k²)`.
///
/// For each scale `k`: the divisor has `k` values; one designated group
/// contains the whole divisor is *not* materialized (that would cost `k`
/// tuples — fine, but the family stays sparser without it); every group
/// `1..k` holds exactly one divisor element. So `|R| = k`, `|S| = k`,
/// `|D| = 2k`, but `π_A(R) × S` has `k²` tuples — the Fig. 5 / Lemma 24
/// regime. The quotient is empty (every group is a near miss), which is
/// exactly the hard case: the plan must disprove containment for every
/// (group, divisor-value) pair.
pub fn adversarial_division_series(group_counts: &[usize], seed: u64) -> Vec<Database> {
    group_counts
        .iter()
        .map(|&k| {
            let mut rng = SplitMix64::new(seed ^ (k as u64).wrapping_mul(0x9E37));
            let rows: Vec<Tuple> = (1..=k as i64)
                .map(|g| {
                    let b = ELEMENT_BASE + 1 + rng.below(k.max(1) as u64) as i64;
                    Tuple::from_ints(&[g, b])
                })
                .collect();
            let mut db = Database::new();
            db.set("R", Relation::from_tuples(2, rows).expect("binary"));
            db.set(
                "S",
                Relation::unary((0..k as i64).map(|i| Value::int(ELEMENT_BASE + 1 + i))),
            );
            db
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_setjoin::{divide, DivisionSemantics};

    #[test]
    fn division_workload_expected_quotient_is_correct() {
        for seed in [1u64, 2, 3] {
            let w = DivisionWorkload {
                groups: 40,
                divisor_size: 6,
                containment_fraction: 0.4,
                extra_per_group: 3,
                noise_domain: 100,
                seed,
            };
            let (r, s, expected) = w.generate();
            assert_eq!(
                divide(&r, &s, DivisionSemantics::Containment),
                expected,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn division_workload_deterministic() {
        let w = DivisionWorkload::default();
        let (r1, s1, q1) = w.generate();
        let (r2, s2, q2) = w.generate();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert_eq!(q1, q2);
    }

    #[test]
    fn containment_fraction_respected_roughly() {
        let w = DivisionWorkload {
            groups: 400,
            containment_fraction: 0.5,
            ..DivisionWorkload::default()
        };
        let (r, s, expected) = w.generate();
        assert!(!r.is_empty() && !s.is_empty());
        let frac = expected.len() as f64 / 400.0;
        assert!((0.4..0.6).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn empty_divisor_workload() {
        let w = DivisionWorkload {
            divisor_size: 0,
            groups: 10,
            extra_per_group: 2,
            ..DivisionWorkload::default()
        };
        let (r, s, expected) = w.generate();
        assert!(s.is_empty());
        assert_eq!(divide(&r, &s, DivisionSemantics::Containment), expected);
    }

    #[test]
    fn setjoin_workload_shapes() {
        let w = SetJoinWorkload {
            r_groups: 30,
            s_groups: 20,
            set_size: SetSizeDist::Fixed(5),
            domain: 100,
            elements: ElementDist::Uniform,
            seed: 99,
        };
        let (r, s) = w.generate();
        let rg = sj_setjoin::group_sets(&r);
        assert_eq!(rg.len(), 30);
        assert!(rg.iter().all(|(_, vs)| vs.len() == 5));
        let sg = sj_setjoin::group_sets(&s);
        assert_eq!(sg.len(), 20);
        // Key ranges disjoint.
        let max_r_key = r.iter().map(|t| t[0].clone()).max().unwrap();
        let min_s_key = s.iter().map(|t| t[0].clone()).min().unwrap();
        assert!(max_r_key < min_s_key);
    }

    #[test]
    fn zipf_workload_has_hot_elements() {
        let w = SetJoinWorkload {
            r_groups: 200,
            s_groups: 1,
            set_size: SetSizeDist::Fixed(4),
            domain: 1000,
            elements: ElementDist::Zipf(1.2),
            seed: 7,
        };
        let (r, _) = w.generate();
        // The hottest element should appear in many groups.
        let mut counts: std::collections::BTreeMap<Value, usize> = Default::default();
        for t in &r {
            *counts.entry(t[1].clone()).or_default() += 1;
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > 40, "hottest element count {hottest}");
    }

    #[test]
    fn cyclic_workload_query_counts_triangles() {
        let w = CyclicWorkload {
            cycle_len: 3,
            edges_per_table: 60,
            vertices: 12,
            edges: EdgeDist::Uniform,
            seed: 11,
        };
        let db = w.database();
        let out = sj_eval::evaluate(&w.query(), &db).expect("cycle evaluates");
        assert_eq!(out.arity(), 6);
        // Brute-force reference: v0→v1 ∈ E0, v1→v2 ∈ E1, v2→v0 ∈ E2.
        let (e0, e1, e2) = (
            db.get("E0").unwrap(),
            db.get("E1").unwrap(),
            db.get("E2").unwrap(),
        );
        let mut expect = 0usize;
        for a in e0.iter() {
            for b in e1.iter() {
                if b[0] != a[1] {
                    continue;
                }
                for c in e2.iter() {
                    if c[0] == b[1] && c[1] == a[0] {
                        expect += 1;
                    }
                }
            }
        }
        assert!(expect > 0, "workload should contain triangles");
        assert_eq!(out.len(), expect);
    }

    #[test]
    fn cyclic_workload_four_cycle_and_determinism() {
        let w = CyclicWorkload {
            cycle_len: 4,
            ..CyclicWorkload::default()
        };
        assert_eq!(w.generate(), w.generate());
        assert_eq!(w.table_names(), ["E0", "E1", "E2", "E3"]);
        let out = sj_eval::evaluate(&w.query(), &w.database()).expect("4-cycle evaluates");
        assert_eq!(out.arity(), 8);
    }

    #[test]
    fn zipf_cyclic_workload_has_hub_vertices() {
        let w = CyclicWorkload {
            edges: EdgeDist::Zipf(1.3),
            ..CyclicWorkload::default()
        };
        let tables = w.generate();
        let hottest = tables[0]
            .iter()
            .filter(|t| t[0] == Value::int(1) || t[1] == Value::int(1))
            .count();
        assert!(
            hottest > tables[0].len() / 10,
            "vertex 1 should be a hub, touched {hottest}/{}",
            tables[0].len()
        );
    }

    #[test]
    fn random_database_deterministic_and_shaped() {
        let a = random_database(5, 10, 6);
        let b = random_database(5, 10, 6);
        assert_eq!(a, b);
        assert_eq!(a.get("R").unwrap().arity(), 2);
        assert_eq!(a.get("T").unwrap().arity(), 1);
        assert_ne!(a, random_database(6, 10, 6));
    }

    #[test]
    fn division_series_scales() {
        let series = division_series(&[8, 16, 32], 4, 0.5, 42);
        assert_eq!(series.len(), 3);
        let sizes: Vec<usize> = series.iter().map(|d| d.size()).collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
    }
}
