//! The **Lemma 24 pump construction**: from one witness database with a
//! joining pair whose free-value sets are both nonempty, build databases
//! `Dₙ` of linear size on which the join produces ≥ n² tuples.
//!
//! Following the proof:
//!
//! 1. `D₁ = D`. For each step `k = 1 … n−1` and each free value `x`, a
//!    fresh domain element `new⁽ᵏ⁾(x)` is created *with the same relative
//!    order as x*.
//! 2. Every tuple of the original tuple space touching a left free value
//!    gets a copy with the free values replaced by their `new⁽ᵏ⁾`
//!    versions, inserted into the same relations; same for the right free
//!    values.
//!
//! The copies are guarded-bisimilar to the originals (the proof's set `I`),
//! so all `n` left copies of `ā` stay in `E₁(Dₙ)` and all `n` right copies
//! of `b̄` in `E₂(Dₙ)`, and every pair still joins: ≥ n² output tuples,
//! while `|Dₙ| ≤ |D| + 2|D|(n−1)`.
//!
//! ### Fresh values with the right relative order
//!
//! The proof permits moving to an isomorphic copy of `Dₖ` whenever the
//! order gap next to a free value is exhausted ("we can translate all
//! elements…"). We realize this once, up front: all integer values are
//! *re-spaced* by a gap factor `G > n`, stretching the regions below
//! `min C`, above `max C` (and the whole line when `C = ∅`) while fixing
//! every constant. Free values never lie inside `[min C, max C]` (over the
//! integers that union of finite intervals is the whole range — see
//! Definition 22), so every free value ends up with `G` empty slots above
//! it and `new⁽ᵏ⁾(x) = respace(x) + k` is order-correct.

use crate::error::CoreError;
use crate::freevals::{free_values_left, free_values_right};
use sj_algebra::Condition;
use sj_storage::{Database, Tuple, Value};

/// A prepared pump construction (one witness, any `n`).
#[derive(Debug, Clone)]
pub struct Pump {
    /// The re-spaced base database `D` (isomorphic to the input).
    base: Database,
    /// Join condition of the witnessed join node.
    theta: Condition,
    /// Re-spaced witness tuples.
    a: Tuple,
    b: Tuple,
    /// Re-spaced free values of `ā` / `b̄`.
    f1: Vec<Value>,
    f2: Vec<Value>,
}

/// Re-space integers around the constant range so that every value outside
/// `[min C, max C]` is followed by at least `G − 1` unused slots.
fn respace(v: i64, constants: &[i64], g: i64) -> i64 {
    match (constants.first(), constants.last()) {
        (Some(&lo), Some(&hi)) => {
            if v < lo {
                lo - (lo - v) * g
            } else if v > hi {
                hi + (v - hi) * g
            } else {
                v
            }
        }
        _ => v * g,
    }
}

impl Pump {
    /// Prepare the construction. `db` is the witness database, `theta` the
    /// join condition of the witnessed node `E₁ ⋈θ E₂`, `a ∈ E₁(db)` and
    /// `b ∈ E₂(db)` a joining pair, `constants` the expression's constant
    /// set `C` (sorted), and `max_n` the largest `n` that will be asked of
    /// [`Pump::database`].
    ///
    /// Fails if the pair does not satisfy θ, if either free-value set is
    /// empty (then Lemma 24 does not apply — the expression may well be
    /// linear), or if the database contains non-integer values (fresh-value
    /// allocation is implemented for the integer universe; all experiments
    /// use it).
    pub fn new(
        db: &Database,
        theta: &Condition,
        a: &Tuple,
        b: &Tuple,
        constants: &[Value],
        max_n: usize,
    ) -> Result<Pump, CoreError> {
        if !theta.eval(a.values(), b.values()) {
            return Err(CoreError::WitnessDoesNotJoin);
        }
        let f1 = free_values_left(theta, a, constants);
        let f2 = free_values_right(theta, b, constants);
        if f1.is_empty() {
            return Err(CoreError::EmptyFreeValues { side: "left" });
        }
        if f2.is_empty() {
            return Err(CoreError::EmptyFreeValues { side: "right" });
        }
        let consts: Vec<i64> = constants
            .iter()
            .map(|c| c.as_int().ok_or(CoreError::NonIntegerUniverse))
            .collect::<Result<_, _>>()?;
        let g = max_n as i64 + 8;
        let map_value = |v: &Value| -> Result<Value, CoreError> {
            let i = v.as_int().ok_or(CoreError::NonIntegerUniverse)?;
            Ok(Value::int(respace(i, &consts, g)))
        };
        // Free values must be strictly outside the constant range (over
        // the integers, Definition 22 removes the whole [min C, max C]).
        for v in f1.iter().chain(&f2) {
            let i = v.as_int().ok_or(CoreError::NonIntegerUniverse)?;
            if let (Some(&lo), Some(&hi)) = (consts.first(), consts.last()) {
                if i >= lo && i <= hi {
                    return Err(CoreError::FreeValueInConstantRange);
                }
            }
        }
        // Map everything; surface NonIntegerUniverse instead of panicking.
        let mut bad = false;
        let base = db.map_values(|v| match map_value(v) {
            Ok(w) => w,
            Err(_) => {
                bad = true;
                v.clone()
            }
        });
        if bad {
            return Err(CoreError::NonIntegerUniverse);
        }
        let remap_tuple = |t: &Tuple| -> Result<Tuple, CoreError> {
            t.iter()
                .map(&map_value)
                .collect::<Result<Vec<_>, _>>()
                .map(Tuple::new)
        };
        Ok(Pump {
            base,
            theta: theta.clone(),
            a: remap_tuple(a)?,
            b: remap_tuple(b)?,
            f1: f1.iter().map(&map_value).collect::<Result<_, _>>()?,
            f2: f2.iter().map(&map_value).collect::<Result<_, _>>()?,
        })
    }

    /// `new⁽ᵏ⁾(x)` — the k-th fresh copy of a (re-spaced) free value.
    fn fresh(x: &Value, k: usize) -> Value {
        Value::int(x.as_int().expect("integer universe checked") + k as i64)
    }

    /// Substitute free values by their k-th fresh copies in one tuple.
    fn substitute(t: &Tuple, free: &[Value], k: usize) -> Tuple {
        t.iter()
            .map(|v| {
                if free.contains(v) {
                    Pump::fresh(v, k)
                } else {
                    v.clone()
                }
            })
            .collect()
    }

    /// The database `Dₙ` of the constructed sequence (`n ≥ 1`;
    /// `D₁ = base`).
    pub fn database(&self, n: usize) -> Database {
        let mut db = self.base.clone();
        // Collect the base tuple space once; copies are always made from
        // the ORIGINAL tuples (the proof's f⁽ᵏ⁾ maps act on T_D).
        let touching_f1: Vec<(String, Tuple)> = self
            .base
            .tuple_space()
            .into_iter()
            .filter(|(_, t)| t.iter().any(|v| self.f1.contains(v)))
            .map(|(name, t)| (name.to_string(), t.clone()))
            .collect();
        let touching_f2: Vec<(String, Tuple)> = self
            .base
            .tuple_space()
            .into_iter()
            .filter(|(_, t)| t.iter().any(|v| self.f2.contains(v)))
            .map(|(name, t)| (name.to_string(), t.clone()))
            .collect();
        for k in 1..n {
            for (name, t) in &touching_f1 {
                let copy = Pump::substitute(t, &self.f1, k);
                db.insert(name, copy).expect("same relation, same arity");
            }
            for (name, t) in &touching_f2 {
                let copy = Pump::substitute(t, &self.f2, k);
                db.insert(name, copy).expect("same relation, same arity");
            }
        }
        db
    }

    /// The `n` left copies `f₁⁽ᵏ⁾(ā)`, `k = 0 … n−1` (`k = 0` is `ā`).
    pub fn left_copies(&self, n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|k| {
                if k == 0 {
                    self.a.clone()
                } else {
                    Pump::substitute(&self.a, &self.f1, k)
                }
            })
            .collect()
    }

    /// The `n` right copies `f₂⁽ᵏ⁾(b̄)`.
    pub fn right_copies(&self, n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|k| {
                if k == 0 {
                    self.b.clone()
                } else {
                    Pump::substitute(&self.b, &self.f2, k)
                }
            })
            .collect()
    }

    /// The re-spaced base database `D₁` (isomorphic to the input witness).
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// The re-spaced witness pair.
    pub fn witness(&self) -> (&Tuple, &Tuple) {
        (&self.a, &self.b)
    }

    /// The re-spaced free-value sets.
    pub fn free_values(&self) -> (&[Value], &[Value]) {
        (&self.f1, &self.f2)
    }

    /// The Lemma 24 size constant: `|Dₙ| ≤ |D| + 2|D|(n−1) ≤ c·n` with
    /// `c = 2|D|`.
    pub fn size_constant(&self) -> usize {
        2 * self.base.size()
    }

    /// Check the two guarantees of Lemma 24 for a given `n`, returning
    /// `(|Dₙ|, pairs)` where `pairs` is the number of joining copy pairs
    /// (≥ n² by the lemma; equality when all copies are distinct).
    pub fn verify(&self, n: usize) -> (usize, usize) {
        let dn = self.database(n);
        let lc = self.left_copies(n);
        let rc = self.right_copies(n);
        let pairs = lc
            .iter()
            .flat_map(|l| rc.iter().map(move |r| (l, r)))
            .filter(|(l, r)| self.theta.eval(l.values(), r.values()))
            .count();
        (dn.size(), pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{tuple, Relation};

    /// The Fig. 4 witness: D with R, S ternary and T binary;
    /// E = (R ⋉₁₌₂ T) ⋈₃₌₁ (S ⋉₂₌₁ T), ā = (1,2,3), b̄ = (3,4,5).
    fn fig4_db() -> Database {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 2, 3], &[8, 9, 10]]));
        d.set("S", Relation::from_int_rows(&[&[3, 4, 5]]));
        d.set("T", Relation::from_int_rows(&[&[6, 1], &[4, 7]]));
        d
    }

    fn fig4_pump(max_n: usize) -> Pump {
        Pump::new(
            &fig4_db(),
            &Condition::eq(3, 1),
            &tuple![1, 2, 3],
            &tuple![3, 4, 5],
            &[],
            max_n,
        )
        .unwrap()
    }

    #[test]
    fn fig4_d1_is_isomorphic_base() {
        let p = fig4_pump(4);
        assert_eq!(p.database(1).size(), 5);
        assert_eq!(p.base().size(), 5);
    }

    #[test]
    fn fig4_sizes_match_paper() {
        // D₂ adds 4 tuples (R′, T′ for F₁; S′, T′ for F₂); D₃ adds 8.
        let p = fig4_pump(4);
        assert_eq!(p.database(2).size(), 9);
        assert_eq!(p.database(3).size(), 13);
        // Linear growth: |Dₙ| = 5 + 4(n−1) ≤ 2·5·n.
        for n in 1..=4 {
            let (size, _) = p.verify(n);
            assert_eq!(size, 5 + 4 * (n - 1));
            assert!(size <= p.size_constant() * n);
        }
    }

    #[test]
    fn fig4_join_pairs_are_n_squared() {
        let p = fig4_pump(6);
        for n in 1..=6 {
            let (_, pairs) = p.verify(n);
            assert_eq!(pairs, n * n, "n = {n}");
        }
    }

    #[test]
    fn fig4_structure_of_d2() {
        // D₂ must contain copies mirroring the paper's primed tuples:
        // R gains (1′,2′,3) — third component unchanged (3 is constrained);
        // S gains (3,4′,5′); T gains (6,1′) and (4′,7).
        let p = fig4_pump(3);
        let d2 = p.database(2);
        let r = d2.get("R").unwrap();
        assert_eq!(r.len(), 3);
        // The copy shares its third component with the original ā.
        let (a, _) = p.witness();
        let copies: Vec<&Tuple> = r
            .iter()
            .filter(|t| *t != a && t[2] == a[2] && t[0] != a[0])
            .collect();
        assert_eq!(copies.len(), 1);
        let copy = copies[0];
        // Fresh values directly above the originals, preserving order.
        assert!(copy[0] > a[0] && copy[0] < a[1]);
        assert!(copy[1] > a[1] && copy[1] < a[2]);
        // T gains exactly two tuples.
        assert_eq!(d2.get("T").unwrap().len(), 4);
        assert_eq!(d2.get("S").unwrap().len(), 2);
    }

    #[test]
    fn copies_present_in_pumped_relations() {
        let p = fig4_pump(5);
        let d4 = p.database(4);
        for c in p.left_copies(4) {
            assert!(d4.get("R").unwrap().contains(&c), "missing left copy {c}");
        }
        for c in p.right_copies(4) {
            assert!(d4.get("S").unwrap().contains(&c), "missing right copy {c}");
        }
    }

    #[test]
    fn rejects_non_joining_witness() {
        assert!(matches!(
            Pump::new(
                &fig4_db(),
                &Condition::eq(3, 1),
                &tuple![1, 2, 3],
                &tuple![9, 4, 5],
                &[],
                3
            ),
            Err(CoreError::WitnessDoesNotJoin)
        ));
    }

    #[test]
    fn rejects_empty_free_values() {
        // Join pinning every column of the left tuple: F₁ = ∅.
        let theta = Condition::eq_pairs([(1, 1), (2, 2), (3, 3)]);
        let err = Pump::new(
            &fig4_db(),
            &theta,
            &tuple![3, 4, 5],
            &tuple![3, 4, 5],
            &[],
            3,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EmptyFreeValues { side: "left" }));
    }

    #[test]
    fn rejects_string_universe() {
        let mut d = Database::new();
        d.set("R", Relation::from_str_rows(&[&["a", "b"]]));
        let err = Pump::new(
            &d,
            &Condition::always(),
            &tuple!["a", "b"],
            &tuple!["a", "b"],
            &[],
            3,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::NonIntegerUniverse);
    }

    #[test]
    fn respacing_with_constants_fixes_them() {
        // Constants {2,5}: values below 2 stretch downward, above 5 upward,
        // inside [2,5] stay put.
        let c = [2i64, 5];
        assert_eq!(respace(2, &c, 10), 2);
        assert_eq!(respace(5, &c, 10), 5);
        assert_eq!(respace(3, &c, 10), 3);
        assert_eq!(respace(1, &c, 10), 2 - 10);
        assert_eq!(respace(6, &c, 10), 5 + 10);
        assert_eq!(respace(0, &[], 10), 0);
        assert_eq!(respace(7, &[], 10), 70);
    }

    #[test]
    fn pump_with_constants() {
        // Same Fig. 4 shape but with C = {100} (outside all values): the
        // construction still works and the constant stays fixed.
        let p = Pump::new(
            &fig4_db(),
            &Condition::eq(3, 1),
            &tuple![1, 2, 3],
            &tuple![3, 4, 5],
            &[Value::int(100)],
            4,
        )
        .unwrap();
        let (size, pairs) = p.verify(3);
        assert_eq!(size, 13);
        assert_eq!(pairs, 9);
    }

    #[test]
    fn product_join_pump() {
        // A cartesian product: everything free; copies multiply directly.
        let mut d = Database::new();
        d.set("A", Relation::from_int_rows(&[&[1]]));
        d.set("B", Relation::from_int_rows(&[&[2]]));
        let p = Pump::new(&d, &Condition::always(), &tuple![1], &tuple![2], &[], 10).unwrap();
        let (size, pairs) = p.verify(10);
        assert_eq!(size, 2 + 2 * 9);
        assert_eq!(pairs, 100);
    }
}
