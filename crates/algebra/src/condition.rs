//! Join and semijoin conditions θ.
//!
//! Definition 1(6) of the paper: a join condition is a conjunction
//! `⋀ₛ iₛ αₛ jₛ` with `αₛ ∈ {=, ≠, <, >}`, where `iₛ` refers to a column of
//! the **left** operand and `jₛ` to a column of the **right** operand, both
//! **1-based**. Definition 20 derives from θ the sets `constrainedₗ(E)` /
//! `uncₗ(E)` of equality-(un)constrained columns; those are provided here
//! because they depend only on the condition and the operand arities.

use sj_storage::Value;
use std::fmt;

/// A comparison operator α ∈ {=, ≠, <, >}.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`  (left value strictly below right value)
    Lt,
    /// `>`  (left value strictly above right value)
    Gt,
}

impl CompOp {
    /// Evaluate the comparison on two values.
    #[inline]
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            CompOp::Eq => l == r,
            CompOp::Neq => l != r,
            CompOp::Lt => l < r,
            CompOp::Gt => l > r,
        }
    }

    /// The operator with sides swapped: `i α j ≡ j α̃ i`.
    pub fn flipped(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Eq,
            CompOp::Neq => CompOp::Neq,
            CompOp::Lt => CompOp::Gt,
            CompOp::Gt => CompOp::Lt,
        }
    }

    /// The symbol as printed.
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Neq => "!=",
            CompOp::Lt => "<",
            CompOp::Gt => ">",
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One conjunct `i α j` of a condition; `left`/`right` are 1-based column
/// indices into the left/right operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// 1-based column of the left operand.
    pub left: usize,
    /// The comparison operator.
    pub op: CompOp,
    /// 1-based column of the right operand.
    pub right: usize,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.left, self.op, self.right)
    }
}

/// A condition θ: a conjunction of [`Atom`]s. The empty conjunction is
/// `true` (giving a cartesian product / unconditional semijoin).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Condition {
    atoms: Vec<Atom>,
}

impl Condition {
    /// The empty (always-true) condition: a cartesian product when used as
    /// a join condition.
    pub fn always() -> Self {
        Condition::default()
    }

    /// Build from atoms.
    pub fn new(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Condition {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// A single-atom condition `left = right`.
    pub fn eq(left: usize, right: usize) -> Self {
        Condition::new([Atom {
            left,
            op: CompOp::Eq,
            right,
        }])
    }

    /// A single-atom condition `left ≠ right`.
    pub fn neq(left: usize, right: usize) -> Self {
        Condition::new([Atom {
            left,
            op: CompOp::Neq,
            right,
        }])
    }

    /// A single-atom condition `left < right`.
    pub fn lt(left: usize, right: usize) -> Self {
        Condition::new([Atom {
            left,
            op: CompOp::Lt,
            right,
        }])
    }

    /// A single-atom condition `left > right`.
    pub fn gt(left: usize, right: usize) -> Self {
        Condition::new([Atom {
            left,
            op: CompOp::Gt,
            right,
        }])
    }

    /// Extend with a further conjunct (builder style).
    pub fn and(mut self, left: usize, op: CompOp, right: usize) -> Self {
        self.atoms.push(Atom { left, op, right });
        self
    }

    /// Extend with an equality conjunct.
    pub fn and_eq(self, left: usize, right: usize) -> Self {
        self.and(left, CompOp::Eq, right)
    }

    /// A natural multi-equality condition: pairs of equal columns.
    pub fn eq_pairs(pairs: impl IntoIterator<Item = (usize, usize)>) -> Self {
        Condition::new(pairs.into_iter().map(|(l, r)| Atom {
            left: l,
            op: CompOp::Eq,
            right: r,
        }))
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True for the empty conjunction.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True iff every conjunct uses `=` — i.e. the condition is admissible
    /// in RA= / SA=.
    pub fn is_equi(&self) -> bool {
        self.atoms.iter().all(|a| a.op == CompOp::Eq)
    }

    /// Evaluate θ on a pair of tuples (as value slices).
    #[inline]
    pub fn eval(&self, left: &[Value], right: &[Value]) -> bool {
        self.atoms
            .iter()
            .all(|a| a.op.eval(&left[a.left - 1], &right[a.right - 1]))
    }

    /// **Definition 20**: the restriction θ^α of the condition to one
    /// operator, as `(i, j)` pairs.
    pub fn theta(&self, op: CompOp) -> Vec<(usize, usize)> {
        self.atoms
            .iter()
            .filter(|a| a.op == op)
            .map(|a| (a.left, a.right))
            .collect()
    }

    /// **Definition 20**: `constrained₁(E)` — the left columns bound by an
    /// equality conjunct. Returned sorted and deduplicated.
    pub fn constrained_left(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .atoms
            .iter()
            .filter(|a| a.op == CompOp::Eq)
            .map(|a| a.left)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// **Definition 20**: `constrained₂(E)` — the right columns bound by an
    /// equality conjunct. Sorted, deduplicated.
    pub fn constrained_right(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .atoms
            .iter()
            .filter(|a| a.op == CompOp::Eq)
            .map(|a| a.right)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// **Definition 20**: `unc₁(E) = {1..arity₁} − constrained₁(E)`.
    pub fn unconstrained_left(&self, left_arity: usize) -> Vec<usize> {
        let c = self.constrained_left();
        (1..=left_arity).filter(|i| !c.contains(i)).collect()
    }

    /// **Definition 20**: `unc₂(E) = {1..arity₂} − constrained₂(E)`.
    pub fn unconstrained_right(&self, right_arity: usize) -> Vec<usize> {
        let c = self.constrained_right();
        (1..=right_arity).filter(|j| !c.contains(j)).collect()
    }

    /// The condition with operands swapped (used to normalize semijoin
    /// rewrites): atom `i α j` becomes `j α̃ i`.
    pub fn swapped(&self) -> Condition {
        Condition::new(self.atoms.iter().map(|a| Atom {
            left: a.right,
            op: a.op.flipped(),
            right: a.left,
        }))
    }

    /// Validate all column references against the operand arities.
    pub fn validate(&self, left_arity: usize, right_arity: usize) -> Result<(), (usize, usize)> {
        for a in &self.atoms {
            if a.left == 0 || a.left > left_arity {
                return Err((a.left, left_arity));
            }
            if a.right == 0 || a.right > right_arity {
                return Err((a.right, right_arity));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::Value;

    #[test]
    fn example_21_constrained_sets() {
        // E = R ⋈_{3=1} S with R, S ternary (Example 21 of the paper).
        let theta = Condition::eq(3, 1);
        assert_eq!(theta.theta(CompOp::Eq), vec![(3, 1)]);
        assert_eq!(theta.constrained_left(), vec![3]);
        assert_eq!(theta.unconstrained_left(3), vec![1, 2]);
        assert_eq!(theta.constrained_right(), vec![1]);
        assert_eq!(theta.unconstrained_right(3), vec![2, 3]);
    }

    #[test]
    fn eval_conjunction() {
        let theta = Condition::eq(1, 1).and(2, CompOp::Lt, 2);
        let l = [Value::int(5), Value::int(1)];
        let r = [Value::int(5), Value::int(9)];
        assert!(theta.eval(&l, &r));
        let r2 = [Value::int(5), Value::int(0)];
        assert!(!theta.eval(&l, &r2));
        let r3 = [Value::int(6), Value::int(9)];
        assert!(!theta.eval(&l, &r3));
    }

    #[test]
    fn empty_condition_is_true() {
        let theta = Condition::always();
        assert!(theta.eval(&[], &[]));
        assert!(theta.is_equi());
        assert_eq!(theta.to_string(), "true");
    }

    #[test]
    fn equi_detection() {
        assert!(Condition::eq_pairs([(1, 2), (2, 1)]).is_equi());
        assert!(!Condition::eq(1, 1).and(1, CompOp::Neq, 2).is_equi());
        assert!(!Condition::lt(1, 1).is_equi());
    }

    #[test]
    fn op_eval_and_flip() {
        let a = Value::int(1);
        let b = Value::int(2);
        assert!(CompOp::Eq.eval(&a, &a));
        assert!(CompOp::Neq.eval(&a, &b));
        assert!(CompOp::Lt.eval(&a, &b));
        assert!(CompOp::Gt.eval(&b, &a));
        assert_eq!(CompOp::Lt.flipped(), CompOp::Gt);
        assert_eq!(CompOp::Gt.flipped(), CompOp::Lt);
        assert_eq!(CompOp::Eq.flipped(), CompOp::Eq);
        assert_eq!(CompOp::Neq.flipped(), CompOp::Neq);
    }

    #[test]
    fn swapped_condition_evaluates_mirrored() {
        let theta = Condition::lt(1, 2).and_eq(2, 1);
        let sw = theta.swapped();
        let l = [Value::int(1), Value::int(7)];
        let r = [Value::int(7), Value::int(5)];
        assert!(theta.eval(&l, &r));
        assert!(sw.eval(&r, &l));
    }

    #[test]
    fn validate_bounds() {
        let theta = Condition::eq(3, 1);
        assert!(theta.validate(3, 1).is_ok());
        assert_eq!(theta.validate(2, 1), Err((3, 2)));
        assert_eq!(theta.validate(3, 0), Err((1, 0)));
        let zero = Condition::eq(0, 1);
        assert_eq!(zero.validate(3, 3), Err((0, 3)));
    }

    #[test]
    fn display_forms() {
        let theta = Condition::eq(2, 1).and(1, CompOp::Gt, 3);
        assert_eq!(theta.to_string(), "2=1,1>3");
    }

    #[test]
    fn duplicate_equalities_dedup_in_constrained() {
        let theta = Condition::eq(1, 1).and_eq(1, 2);
        assert_eq!(theta.constrained_left(), vec![1]);
        assert_eq!(theta.constrained_right(), vec![1, 2]);
    }
}
