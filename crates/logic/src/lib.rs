//! # sj-logic — the guarded fragment and the Theorem 8 translations
//!
//! The paper's lower-bound technique runs through first-order logic: the
//! semijoin algebra SA= corresponds to the **guarded fragment** GF
//! (Theorem 8), and GF is invariant under guarded bisimulation
//! (Proposition 13). This crate supplies the logic side:
//!
//! * [`formula`] — GF syntax (Definition 6), free variables, guardedness
//!   checking, renaming.
//! * [`semantics`] — satisfaction `D ⊨ φ(d̄)` and query-style evaluation.
//! * [`stored`] — C-stored tuples (Definition 4), predicate and enumerator.
//! * [`translate`] — both directions of Theorem 8:
//!   [`translate::gf_to_sa`] (full GF with constants → SA=, relative to
//!   C-stored answers) and [`translate::sa_to_gf`] (constant-tagging-free
//!   SA= → GF).

pub mod distinguish;
pub mod error;
pub mod formula;
pub mod parse;
pub mod semantics;
pub mod stored;
pub mod translate;

pub use distinguish::distinguishing_formula;
pub use error::LogicError;
pub use formula::{Formula, Var};
pub use parse::{parse_formula, to_ascii};
pub use semantics::{eval_query, satisfies, Assignment};
pub use stored::{all_c_stored_tuples, is_c_stored};
pub use translate::{gf_to_sa, sa_to_gf, stored_tuples_expr, GfQuery, SaQuery};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sj_algebra::{Condition, Expr};
    use sj_eval::evaluate;
    use sj_storage::{Database, Relation, Schema, Tuple, Value};

    fn schema() -> Schema {
        Schema::new([("R", 2), ("S", 2), ("T", 1)])
    }

    fn arb_relation(arity: usize) -> impl Strategy<Value = Relation> {
        proptest::collection::vec(proptest::collection::vec(0i64..5, arity), 0..8).prop_map(
            move |rows| {
                Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r)))
                    .unwrap()
            },
        )
    }

    fn arb_db() -> impl Strategy<Value = Database> {
        (arb_relation(2), arb_relation(2), arb_relation(1)).prop_map(|(r, s, t)| {
            let mut db = Database::new();
            db.set("R", r);
            db.set("S", s);
            db.set("T", t);
            db
        })
    }

    /// Random constant-free SA= expressions of arity ≤ 2 over the schema.
    /// Shapes chosen to exercise projection and semijoin (the nontrivial
    /// translation cases) while keeping arity manageable.
    fn arb_sa_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            Just(Expr::rel("R")),
            Just(Expr::rel("S")),
            Just(Expr::rel("T").project([1, 1])),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
                inner.clone().prop_map(|a| a.select_eq(1, 2)),
                inner.clone().prop_map(|a| a.select_lt(2, 1)),
                inner.clone().prop_map(|a| a.project([2, 1])),
                inner.clone().prop_map(|a| a.project([1, 1])),
                (inner.clone(), inner.clone(), 0u8..3).prop_map(|(a, b, w)| {
                    let cond = match w {
                        0 => Condition::eq(1, 1),
                        1 => Condition::eq(2, 1),
                        _ => Condition::eq_pairs([(1, 1), (2, 2)]),
                    };
                    a.semijoin(cond, b)
                }),
            ]
        })
    }

    fn candidates(db: &Database) -> Vec<Value> {
        let mut v = db.active_domain();
        v.push(Value::int(-7)); // sentinel outside every generated domain
        v
    }

    /// Arbitrary (syntactically valid, not necessarily guarded) formulas
    /// for the parser round-trip.
    fn arb_formula() -> impl Strategy<Value = Formula> {
        let var = proptest::sample::select(vec!["x", "y", "z", "w"]);
        let leaf = prop_oneof![
            Just(Formula::Bool(true)),
            Just(Formula::Bool(false)),
            (var.clone(), var.clone()).prop_map(|(a, b)| Formula::Eq(a.into(), b.into())),
            (var.clone(), var.clone()).prop_map(|(a, b)| Formula::Lt(a.into(), b.into())),
            (var.clone(), any::<i64>())
                .prop_map(|(a, c)| Formula::EqConst(a.into(), Value::int(c))),
            (var.clone(), "[a-z ]{0,6}")
                .prop_map(|(a, s)| Formula::EqConst(a.into(), Value::str(s))),
            (var.clone(), var.clone())
                .prop_map(|(a, b)| Formula::Rel("R".into(), vec![a.into(), b.into()])),
        ];
        leaf.prop_recursive(4, 24, 2, move |inner| {
            let var2 = proptest::sample::select(vec!["x", "y", "z", "w"]);
            prop_oneof![
                inner.clone().prop_map(Formula::not),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
                (var2.clone(), var2, inner).prop_map(|(u, v, body)| {
                    Formula::Exists {
                        vars: vec![u.into()],
                        guard_rel: "R".into(),
                        guard_args: vec![u.into(), v.into()],
                        body: Box::new(body),
                    }
                }),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// parse_formula(to_ascii(f)) == f for arbitrary formulas.
        #[test]
        fn formula_parse_print_roundtrip(f in arb_formula()) {
            let text = to_ascii(&f);
            let parsed = parse_formula(&text)
                .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
            prop_assert_eq!(parsed, f, "text: {}", text);
        }

        /// Theorem 8, direction 1: {d̄ | D ⊨ φ_E(d̄)} = E(D).
        #[test]
        fn sa_to_gf_preserves_semantics(e in arb_sa_expr(), db in arb_db()) {
            let q = sa_to_gf(&e, &schema()).unwrap();
            prop_assert!(q.formula.check_guarded().is_ok());
            let want = evaluate(&e, &db).unwrap();
            let got = eval_query(&db, &q.formula, &q.free_vars, &candidates(&db));
            prop_assert_eq!(got, want.tuples().to_vec());
        }

        /// Theorem 8 applied both ways: E → φ_E → E' with E'(D) = E(D)
        /// (SA= outputs are ∅-stored, so the C-stored restriction of the
        /// reverse direction is invisible).
        #[test]
        fn roundtrip_sa_gf_sa(e in arb_sa_expr(), db in arb_db()) {
            let q = sa_to_gf(&e, &schema()).unwrap();
            let back = gf_to_sa(&q.formula, &schema(), &[]).unwrap();
            prop_assert!(back.expr.is_sa());
            // gf_to_sa orders columns by its own free-variable traversal —
            // a permutation of sa_to_gf's column order; align them.
            let cols: Vec<usize> = q.free_vars.iter().map(|v| {
                back.free_vars.iter().position(|w| w == v).unwrap() + 1
            }).collect();
            let aligned = back.expr.project(cols);
            let original = evaluate(&e, &db).unwrap();
            let round = evaluate(&aligned, &db).unwrap();
            prop_assert_eq!(original, round);
        }

        /// The stored-tuples expression enumerates exactly the C-stored
        /// tuples, for arities 0..2.
        #[test]
        fn stored_expr_correct(db in arb_db(), k in 0usize..3) {
            let e = stored_tuples_expr(&schema(), k, &[]).unwrap();
            let got = evaluate(&e, &db).unwrap();
            let want = all_c_stored_tuples(&db, k, &[]);
            prop_assert_eq!(got.tuples().to_vec(), want);
        }
    }
}
