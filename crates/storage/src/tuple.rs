//! Tuples `(a₁, …, aₙ)` over the universe.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A tuple of [`Value`]s.
///
/// Tuples are immutable once constructed; they are stored as a boxed slice
/// (two words) rather than a `Vec` (three words) because relations hold very
/// many of them. The component order follows the paper's 1-based projection
/// convention in the algebra crates, but the accessor here is 0-based like
/// everything else in Rust; the algebra layer does the 1-based bookkeeping.
///
/// ```
/// use sj_storage::Tuple;
/// let t = Tuple::from_ints(&[1, 2, 3]);
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[0], 1.into());
/// assert_eq!(t.project(&[2, 0]).to_vec(), Tuple::from_ints(&[3, 1]).to_vec());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from a vector of values.
    #[inline]
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into_boxed_slice())
    }

    /// The empty (arity-0) tuple.
    #[inline]
    pub fn empty() -> Self {
        Tuple(Box::from([]))
    }

    /// Convenience constructor from integers.
    pub fn from_ints(values: &[i64]) -> Self {
        Tuple(values.iter().copied().map(Value::Int).collect())
    }

    /// Convenience constructor from strings.
    pub fn from_strs(values: &[&str]) -> Self {
        Tuple(values.iter().map(Value::str).collect())
    }

    /// Number of components.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component access (0-based); `None` when out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// The components as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Copy the components out into a `Vec`.
    pub fn to_vec(&self) -> Vec<Value> {
        self.0.to_vec()
    }

    /// Projection π onto the given **0-based** column indices; columns may
    /// repeat and may appear in any order, exactly as in Definition 1(3).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenation `(ā, b̄)` as produced by the join operator.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into_boxed_slice())
    }

    /// The tuple extended with one extra value at the end — the
    /// constant-tagging operator τ_c of Definition 1(5) at the tuple level.
    pub fn tag(&self, c: Value) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(c);
        Tuple(v.into_boxed_slice())
    }

    /// `set(d̄)`: the set of elements occurring in the tuple
    /// (Definition 22 uses this notation). Returned sorted and deduplicated.
    pub fn value_set(&self) -> Vec<Value> {
        let mut v = self.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterate over components.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    #[inline]
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Build a [`Tuple`] from a comma-separated list of values convertible into
/// [`Value`].
///
/// ```
/// use sj_storage::{tuple, Tuple, Value};
/// let t = tuple![1, "x", 3];
/// assert_eq!(t[1], Value::str("x"));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_access() {
        let t = Tuple::from_ints(&[10, 20, 30]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[1], Value::int(20));
        assert_eq!(t.get(2), Some(&Value::int(30)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert_eq!(t, Tuple::new(vec![]));
    }

    #[test]
    fn projection_repeats_and_reorders() {
        let t = Tuple::from_ints(&[1, 2, 3]);
        assert_eq!(t.project(&[2, 2, 0]), Tuple::from_ints(&[3, 3, 1]));
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn concat_and_tag() {
        let a = Tuple::from_ints(&[1, 2]);
        let b = Tuple::from_ints(&[3]);
        assert_eq!(a.concat(&b), Tuple::from_ints(&[1, 2, 3]));
        assert_eq!(a.tag(Value::int(9)), Tuple::from_ints(&[1, 2, 9]));
    }

    #[test]
    fn value_set_sorted_dedup() {
        let t = Tuple::from_ints(&[3, 1, 3, 2, 1]);
        assert_eq!(
            t.value_set(),
            vec![Value::int(1), Value::int(2), Value::int(3)]
        );
    }

    #[test]
    fn ordering_is_lexicographic_on_components() {
        assert!(Tuple::from_ints(&[1, 9]) < Tuple::from_ints(&[2, 0]));
        assert!(Tuple::from_ints(&[1]) < Tuple::from_ints(&[1, 0]));
    }

    #[test]
    fn macro_mixes_types() {
        let t = tuple![1, "x"];
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t[1], Value::str("x"));
    }

    #[test]
    fn display_forms() {
        let t = tuple![1, "x"];
        assert_eq!(t.to_string(), "(1, x)");
        assert_eq!(format!("{t:?}"), "(1, \"x\")");
    }
}
