//! Expression transformations.
//!
//! The central one is [`semijoins_to_joins_checked`]: the paper notes (below
//! Theorem 18) that the equi-semijoin is expressible in RA *in a linear
//! way*, e.g. for binary `R`, `S`:
//!
//! ```text
//! R ⋉₂₌₁ S  =  π₁,₂(R ⋈₂₌₁ π₁(S))
//! ```
//!
//! Generalized: project the right operand onto exactly the columns its side
//! of the condition mentions, remap the condition to the projected
//! positions, join, and project back onto the left columns. For an
//! equality-only condition every left tuple matches at most one projected
//! right tuple, so all intermediates stay ≤ the operand sizes — the
//! expression is linear. (For conditions with `<`, `>` or `≠` the rewrite
//! is still *correct*, but not linear; the linearity claim is only made —
//! and only needed — for SA=.)

use crate::condition::{Atom, Condition};
use crate::expr::Expr;

/// Rewrite every semijoin into the linear join/project form:
///
/// `left ⋉θ right = π_{1..n}(left ⋈θ' π_J(right))` where `J` is the sorted
/// set of right columns mentioned in θ and θ' re-targets each atom to the
/// position of its column within `J`. When θ is empty (unconditional
/// semijoin — "keep left iff right nonempty"), `J` is empty and `π_J(right)`
/// is the nullary projection of the right operand, which is `{()}` iff
/// `right` is nonempty: exactly the semijoin semantics.
///
/// The rewrite needs operand arities (for the outer projection), hence the
/// schema parameter; it fails only if the expression is ill-formed over the
/// schema. The result contains no `Semijoin` node and computes the same
/// query; if the input was SA=, the output is a **linear** RA= expression.
pub fn semijoins_to_joins_checked(
    e: &Expr,
    schema: &sj_storage::Schema,
) -> Result<Expr, crate::error::AlgebraError> {
    // Bottom-up rewrite carrying arities.
    fn go(
        e: &Expr,
        schema: &sj_storage::Schema,
    ) -> Result<(Expr, usize), crate::error::AlgebraError> {
        Ok(match e {
            Expr::Rel(n) => {
                let a = Expr::Rel(n.clone()).arity(schema)?;
                (Expr::Rel(n.clone()), a)
            }
            Expr::Union(a, b) => {
                let (ea, na) = go(a, schema)?;
                let (eb, _) = go(b, schema)?;
                (ea.union(eb), na)
            }
            Expr::Diff(a, b) => {
                let (ea, na) = go(a, schema)?;
                let (eb, _) = go(b, schema)?;
                (ea.diff(eb), na)
            }
            Expr::Project(cols, a) => {
                let (ea, _) = go(a, schema)?;
                (ea.project(cols.clone()), cols.len())
            }
            Expr::Select(sel, a) => {
                let (ea, na) = go(a, schema)?;
                (Expr::Select(sel.clone(), Box::new(ea)), na)
            }
            Expr::ConstTag(c, a) => {
                let (ea, na) = go(a, schema)?;
                (ea.tag(c.clone()), na + 1)
            }
            Expr::Join(t, a, b) => {
                let (ea, na) = go(a, schema)?;
                let (eb, nb) = go(b, schema)?;
                (ea.join(t.clone(), eb), na + nb)
            }
            Expr::GroupCount(cols, a) => {
                let (ea, _) = go(a, schema)?;
                (ea.group_count(cols.clone()), cols.len() + 1)
            }
            Expr::Semijoin(theta, a, b) => {
                let (ea, na) = go(a, schema)?;
                let (eb, _) = go(b, schema)?;
                let mut j_cols: Vec<usize> = theta.atoms().iter().map(|at| at.right).collect();
                j_cols.sort_unstable();
                j_cols.dedup();
                let remapped = Condition::new(theta.atoms().iter().map(|at| Atom {
                    left: at.left,
                    op: at.op,
                    right: j_cols.binary_search(&at.right).unwrap() + 1,
                }));
                let lowered = ea.join(remapped, eb.project(j_cols)).project(1..=na);
                (lowered, na)
            }
        })
    }
    // Validate first so errors surface with the original expression.
    e.arity(schema)?;
    go(e, schema).map(|(e, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::to_text;
    use sj_storage::Schema;

    #[test]
    fn lowers_binary_semijoin_like_paper_note() {
        // R ⋉₂₌₁ S = π₁,₂(R ⋈₂₌₁ π₁(S)) — the exact equation under Thm 18.
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let e = Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S"));
        let lowered = semijoins_to_joins_checked(&e, &schema).unwrap();
        assert_eq!(
            to_text(&lowered),
            "project[1,2](join[2=1](R, project[1](S)))"
        );
        assert!(lowered.is_ra_eq());
        assert_eq!(lowered.arity(&schema).unwrap(), 2);
    }

    #[test]
    fn lowers_unconditional_semijoin_to_nullary_projection() {
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let e = Expr::rel("R").semijoin(Condition::always(), Expr::rel("S"));
        let lowered = semijoins_to_joins_checked(&e, &schema).unwrap();
        assert_eq!(
            to_text(&lowered),
            "project[1,2](join[true](R, project[](S)))"
        );
    }

    #[test]
    fn lowers_nested_semijoins() {
        let schema = Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)]);
        let e = crate::division::example3_lousy_bar_sa();
        let lowered = semijoins_to_joins_checked(&e, &schema).unwrap();
        assert!(lowered.is_ra_eq());
        assert!(!lowered
            .subexpressions()
            .iter()
            .any(|s| matches!(s, Expr::Semijoin(..))));
        assert_eq!(lowered.arity(&schema).unwrap(), 1);
    }

    #[test]
    fn condition_remapping_handles_gaps_and_duplicates() {
        // θ uses right columns {3, 1, 3}: J = [1, 3]; atoms remap to
        // positions 1 and 2.
        let schema = Schema::new([("R", 2), ("S", 3)]);
        let theta = Condition::eq(1, 3).and_eq(2, 1).and_eq(1, 3);
        let e = Expr::rel("R").semijoin(theta, Expr::rel("S"));
        let lowered = semijoins_to_joins_checked(&e, &schema).unwrap();
        assert_eq!(
            to_text(&lowered),
            "project[1,2](join[1=2,2=1,1=2](R, project[1,3](S)))"
        );
        assert_eq!(lowered.arity(&schema).unwrap(), 2);
    }

    #[test]
    fn non_equi_semijoin_also_lowers() {
        let schema = Schema::new([("R", 1), ("S", 1)]);
        let e = Expr::rel("R").semijoin(Condition::lt(1, 1), Expr::rel("S"));
        let lowered = semijoins_to_joins_checked(&e, &schema).unwrap();
        assert_eq!(to_text(&lowered), "project[1](join[1<1](R, project[1](S)))");
    }

    #[test]
    fn errors_propagate() {
        let schema = Schema::new([("R", 2)]);
        let e = Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("Missing"));
        assert!(semijoins_to_joins_checked(&e, &schema).is_err());
    }
}
