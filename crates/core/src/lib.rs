//! # sj-core — the paper's contribution: the linear/quadratic dichotomy
//!
//! This crate implements the machinery of Sections 3–4 of Leinders & Van
//! den Bussche:
//!
//! * [`freevals`] — free values of a joining tuple (Definition 22) and the
//!   constrained/unconstrained column sets (via `sj-algebra`'s
//!   Definition 20 support).
//! * [`pump`] — the **Lemma 24 construction**: from a witness database
//!   with a joining pair whose free-value sets are both nonempty, the
//!   linear-size database family `Dₙ` on which the join emits ≥ n²
//!   tuples. Reproduces Fig. 4 exactly (see the tests).
//! * [`rewrite`] — the **Theorem 18 rewriter** turning syntactically
//!   determined joins into SA= (the `Z₁ ∪ Z₂` construction, specialized to
//!   the syntactically recognizable case).
//! * [`mod@analyze`] — the dichotomy analyzer combining both halves into a
//!   `Linear { sa_equivalent } / Quadratic { witness } / Undetermined`
//!   verdict with machine-checkable certificates.
//! * [`growth`] — measured growth exponents (log-log least squares) that
//!   turn the asymptotic statements into reproducible numbers.

pub mod analyze;
pub mod error;
pub mod freevals;
pub mod growth;
pub mod pump;
pub mod rewrite;

pub use analyze::{analyze, find_witness, QuadraticWitness, Verdict};
pub use error::CoreError;
pub use freevals::{free_values_left, free_values_right, interval_contains};
pub use growth::{log_log_slope, measure_growth, GrowthPoint, GrowthReport};
pub use pump::Pump;
pub use rewrite::{constant_columns, to_sa_eq};

#[cfg(test)]
mod integration {
    use super::*;
    use sj_algebra::{Condition, Expr};
    use sj_bisim::are_bisimilar;
    use sj_eval::{evaluate, evaluate_instrumented};
    use sj_storage::{tuple, Database, Relation, Tuple};

    /// The Fig. 4 setting, end to end: pump, then *evaluate the actual
    /// expression* E = (R ⋉₁₌₂ T) ⋈₃₌₁ (S ⋉₂₌₁ T) on Dₙ and check the n²
    /// lower bound and the linear-size upper bound — Lemma 24 verified
    /// semantically, not just on the copy tuples.
    #[test]
    fn fig4_lemma24_end_to_end() {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 2, 3], &[8, 9, 10]]));
        d.set("S", Relation::from_int_rows(&[&[3, 4, 5]]));
        d.set("T", Relation::from_int_rows(&[&[6, 1], &[4, 7]]));
        let e1 = Expr::rel("R").semijoin(Condition::eq(1, 2), Expr::rel("T"));
        let e2 = Expr::rel("S").semijoin(Condition::eq(2, 1), Expr::rel("T"));
        let e = e1.clone().join(Condition::eq(3, 1), e2.clone());

        // The witness pair is exactly the paper's: ā = (1,2,3), b̄ = (3,4,5).
        assert_eq!(
            evaluate(&e1, &d).unwrap(),
            Relation::from_int_rows(&[&[1, 2, 3]])
        );
        assert_eq!(
            evaluate(&e2, &d).unwrap(),
            Relation::from_int_rows(&[&[3, 4, 5]])
        );

        let pump = Pump::new(
            &d,
            &Condition::eq(3, 1),
            &tuple![1, 2, 3],
            &tuple![3, 4, 5],
            &[],
            8,
        )
        .unwrap();
        for n in [2usize, 4, 8] {
            let dn = pump.database(n);
            assert!(dn.size() <= pump.size_constant() * n, "size bound at n={n}");
            let report = evaluate_instrumented(&e, &dn).unwrap();
            assert!(
                report.result.len() >= n * n,
                "|E(D{n})| = {} < n² = {}",
                report.result.len(),
                n * n
            );
            // E₁(Dₙ) contains every left copy (guarded bisimilarity at
            // work: Corollary 14).
            let e1_out = evaluate(&e1, &dn).unwrap();
            for c in pump.left_copies(n) {
                assert!(e1_out.contains(&c), "E1(Dn) missing copy {c}");
            }
        }
    }

    /// The copies created by the pump are guarded-bisimilar to the
    /// originals — the heart of the Lemma 24 proof (D, ā ∼ Dₙ, f₁⁽ᵏ⁾(ā)).
    #[test]
    fn pump_copies_are_bisimilar() {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 2, 3], &[8, 9, 10]]));
        d.set("S", Relation::from_int_rows(&[&[3, 4, 5]]));
        d.set("T", Relation::from_int_rows(&[&[6, 1], &[4, 7]]));
        let pump = Pump::new(
            &d,
            &Condition::eq(3, 1),
            &tuple![1, 2, 3],
            &tuple![3, 4, 5],
            &[],
            4,
        )
        .unwrap();
        let n = 3;
        let dn = pump.database(n);
        let base = pump.base();
        let (a, b) = pump.witness();
        for copy in pump.left_copies(n) {
            assert!(
                are_bisimilar(base, a, &dn, &copy, &[]).is_some(),
                "D,ā ∼ Dₙ,{copy} fails"
            );
        }
        for copy in pump.right_copies(n) {
            assert!(
                are_bisimilar(base, b, &dn, &copy, &[]).is_some(),
                "D,b̄ ∼ Dₙ,{copy} fails"
            );
        }
    }

    /// Theorem 17 in action on a mixed corpus: every verdict is Linear or
    /// Quadratic (none Undetermined), and measured exponents agree with
    /// the verdicts.
    #[test]
    fn dichotomy_on_small_corpus() {
        let schema = sj_storage::Schema::new([("R", 2), ("S", 1)]);
        let mut seed = Database::new();
        seed.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 9]]),
        );
        seed.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        let corpus: Vec<(Expr, bool)> = vec![
            // (expression, expected_quadratic)
            (
                sj_algebra::division::division_double_difference("R", "S"),
                true,
            ),
            (sj_algebra::division::division_via_join("R", "S"), true),
            (sj_algebra::division::division_equality("R", "S"), true),
            (
                Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
                false,
            ),
            (
                Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
                false,
            ),
            (Expr::rel("R").project([1]).union(Expr::rel("S")), false),
            (Expr::rel("R").product(Expr::rel("S")), true),
        ];
        for (e, expect_quadratic) in corpus {
            let verdict = analyze(&e, &schema, std::slice::from_ref(&seed)).unwrap();
            if expect_quadratic {
                assert!(verdict.is_quadratic(), "{e} should be quadratic");
            } else {
                assert!(verdict.is_linear(), "{e} should be linear");
            }
        }
    }

    /// A quadratic witness, when pumped, produces a family whose measured
    /// exponent is ≈ 2 for the witnessed join node.
    #[test]
    fn witness_pump_measures_quadratic() {
        let schema = sj_storage::Schema::new([("R", 2), ("S", 1)]);
        let mut seed = Database::new();
        seed.set("R", Relation::from_int_rows(&[&[1, 7], &[2, 8]]));
        seed.set("S", Relation::from_int_rows(&[&[7]]));
        let e = sj_algebra::division::division_double_difference("R", "S");
        let Verdict::Quadratic { witness } =
            analyze(&e, &schema, std::slice::from_ref(&seed)).unwrap()
        else {
            panic!("expected quadratic")
        };
        let pump = witness.pump(&[], 32).unwrap();
        let points: Vec<(f64, f64)> = [4usize, 8, 16, 32]
            .iter()
            .map(|&n| {
                let (size, pairs) = pump.verify(n);
                (size as f64, pairs as f64)
            })
            .collect();
        let slope = log_log_slope(&points);
        assert!(slope > 1.7, "pumped family slope {slope} not quadratic");
    }

    /// Linear verdicts come with equivalent SA= certificates whose
    /// intermediates never exceed the database size on scaled inputs.
    #[test]
    fn linear_certificate_is_actually_linear() {
        let schema = sj_storage::Schema::new([("R", 2), ("S", 1)]);
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
        let Verdict::Linear { sa_equivalent } = analyze(&e, &schema, &[]).unwrap() else {
            panic!("expected linear")
        };
        for k in [10i64, 40, 160] {
            let rows: Vec<[i64; 2]> = (1..=k).map(|a| [a, 1000 + a % 7]).collect();
            let slices: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let mut db = Database::new();
            db.set("R", Relation::from_int_rows(&slices));
            db.set(
                "S",
                Relation::unary((0..7).map(|b| sj_storage::Value::int(1000 + b))),
            );
            let report = evaluate_instrumented(&sa_equivalent, &db).unwrap();
            assert!(report.max_intermediate() <= db.size());
            // And equivalence holds at every scale.
            assert_eq!(report.result, evaluate(&e, &db).unwrap());
        }
    }

    /// Tuple helper sanity for this module.
    #[test]
    fn tuple_macro_available() {
        let t: Tuple = tuple![1, 2, 3];
        assert_eq!(t.arity(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sj_algebra::{Condition, Expr};
    use sj_eval::evaluate;
    use sj_storage::{Database, Relation, Tuple};

    fn arb_db() -> impl Strategy<Value = Database> {
        (
            proptest::collection::vec((1i64..8, 101i64..109), 1..10),
            proptest::collection::vec(101i64..109, 1..6),
        )
            .prop_map(|(pairs, divisor)| {
                let mut db = Database::new();
                db.set(
                    "R",
                    Relation::from_tuples(
                        2,
                        pairs.into_iter().map(|(a, b)| Tuple::from_ints(&[a, b])),
                    )
                    .unwrap(),
                );
                db.set(
                    "S",
                    Relation::from_tuples(1, divisor.into_iter().map(|b| Tuple::from_ints(&[b])))
                        .unwrap(),
                );
                db
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Lemma 24 invariants hold for every witness the analyzer finds
        /// on random databases: |Dₙ| ≤ c·n and ≥ n² joining copy pairs.
        #[test]
        fn pump_invariants_on_random_witnesses(db in arb_db()) {
            let e = Expr::rel("R").project([1]).product(Expr::rel("S"));
            let schema = db.schema();
            if let Ok(Some(w)) =
                find_witness(&e, &schema, std::slice::from_ref(&db))
            {
                let pump = w.pump(&[], 12).unwrap();
                for n in [2usize, 5, 12] {
                    let (size, pairs) = pump.verify(n);
                    prop_assert!(size <= pump.size_constant() * n);
                    prop_assert!(pairs >= n * n);
                    // The pumped database really contains the base.
                    let dn = pump.database(n);
                    for (name, rel) in pump.base().iter() {
                        prop_assert!(rel.is_subset_of(dn.get(name).unwrap()));
                    }
                }
            }
        }

        /// The rewriter's SA= output is equivalent on random databases
        /// whenever it succeeds, for a family of joins with mixed
        /// conditions.
        #[test]
        fn rewriter_equivalence_random(db in arb_db(), which in 0u8..4) {
            let e = match which {
                0 => Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
                1 => Expr::rel("R")
                    .join(Condition::eq(2, 1).and(1, sj_algebra::CompOp::Lt, 1), Expr::rel("S")),
                2 => Expr::rel("S").join(Condition::eq(1, 2), Expr::rel("R")),
                _ => Expr::rel("R")
                    .join(Condition::eq(2, 1).and(1, sj_algebra::CompOp::Neq, 1), Expr::rel("S")),
            };
            let schema = db.schema();
            if let Ok(sa) = to_sa_eq(&e, &schema) {
                prop_assert!(sa.is_sa_eq());
                prop_assert_eq!(
                    evaluate(&e, &db).unwrap(),
                    evaluate(&sa, &db).unwrap(),
                    "{}", e
                );
            }
        }

        /// Growth measurement is monotone under database inclusion for
        /// monotone expressions (sanity of the measurement tool).
        #[test]
        fn measurement_tool_sane(db in arb_db()) {
            let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
            let report = measure_growth(&e, std::slice::from_ref(&db)).unwrap();
            prop_assert_eq!(report.points.len(), 1);
            prop_assert_eq!(report.points[0].db_size, db.size());
            prop_assert_eq!(report.exponent, 0.0); // single point → slope 0
        }
    }
}
