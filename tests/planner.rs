//! Integration tests for the physical planner: `evaluate_planned` must
//! agree with `evaluate` on every query family the reproduction exercises,
//! while evaluating each distinct subexpression exactly once.

use sj_algebra::{division, optimize, Condition, Expr};
use sj_eval::{evaluate, evaluate_planned, evaluate_planned_instrumented, PhysicalPlan};
use sj_storage::{Database, Relation};
use sj_workload::{adversarial_division_series, DivisionWorkload};

fn beer_db() -> Database {
    let mut db = Database::new();
    db.set(
        "Visits",
        Relation::from_str_rows(&[
            &["an", "bad bar"],
            &["bob", "good bar"],
            &["carl", "empty bar"],
        ]),
    );
    db.set(
        "Serves",
        Relation::from_str_rows(&[&["bad bar", "swill"], &["good bar", "nectar"]]),
    );
    db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
    db
}

fn division_plans() -> Vec<(&'static str, Expr)> {
    vec![
        (
            "double-difference",
            division::division_double_difference("R", "S"),
        ),
        ("via-join", division::division_via_join("R", "S")),
        ("equality", division::division_equality("R", "S")),
        ("counting", division::division_counting("R", "S")),
        (
            "equality-counting",
            division::division_equality_counting("R", "S"),
        ),
        (
            "set-containment",
            division::set_containment_join_plan("R", "S"),
        ),
    ]
}

#[test]
fn planned_agrees_with_naive_on_beer_queries() {
    let db = beer_db();
    for e in [
        division::example3_lousy_bar_sa(),
        division::example3_lousy_bar_ra(),
        division::cyclic_beer_query_ra(),
    ] {
        assert_eq!(
            evaluate_planned(&e, &db).unwrap(),
            evaluate(&e, &db).unwrap(),
            "{e}"
        );
    }
}

#[test]
fn planned_agrees_with_naive_on_division_workloads() {
    for db in adversarial_division_series(&[16, 64], 0xC0FFEE) {
        for (name, e) in division_plans() {
            if name == "set-containment" {
                // needs S binary; the adversarial series has unary S
                continue;
            }
            assert_eq!(
                evaluate_planned(&e, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "{name} on |D| = {}",
                db.size()
            );
        }
    }
    let w = DivisionWorkload {
        groups: 24,
        divisor_size: 5,
        containment_fraction: 0.4,
        extra_per_group: 3,
        noise_domain: 40,
        seed: 11,
    };
    let db = w.database();
    for (name, e) in division_plans() {
        if name == "set-containment" {
            continue;
        }
        assert_eq!(
            evaluate_planned(&e, &db).unwrap(),
            evaluate(&e, &db).unwrap(),
            "{name}"
        );
    }
}

#[test]
fn planned_agrees_with_naive_after_optimization() {
    let db = beer_db();
    for e in [
        division::example3_lousy_bar_ra(),
        division::cyclic_beer_query_ra(),
    ] {
        let opt = optimize(&e, &db.schema()).unwrap();
        assert_eq!(
            evaluate_planned(&opt, &db).unwrap(),
            evaluate(&e, &db).unwrap(),
            "optimize({e}) = {opt}"
        );
    }
}

#[test]
fn division_double_difference_is_memoized_into_seven_nodes() {
    // The tree has 10 nodes; R occurs 3×, π₁(R) 2× — the DAG must have
    // exactly 7, each evaluated once.
    let mut db = Database::new();
    db.set("R", Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7]]));
    db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
    let e = division::division_double_difference("R", "S");
    let report = evaluate_planned_instrumented(&e, &db).unwrap();
    assert_eq!(report.expr_nodes, 10);
    assert_eq!(report.nodes.len(), 7);
    assert_eq!(report.nodes.iter().filter(|n| n.label == "R").count(), 1);
    assert_eq!(report.result, Relation::from_int_rows(&[&[1]]));
}

#[test]
fn planner_explain_marks_merge_operators_and_sharing() {
    let schema = sj_storage::Schema::new([("R", 2), ("S", 2)]);
    let e = Expr::rel("R")
        .semijoin(Condition::eq(1, 1), Expr::rel("S"))
        .union(Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")));
    let plan = PhysicalPlan::of(&e, &schema).unwrap();
    // The two identical semijoin branches collapse: 7 tree nodes, 4 DAG
    // nodes (R, S, the semijoin, the union).
    assert_eq!(plan.node_count(), 4);
    let s = plan.explain();
    assert!(s.contains("merge-semijoin"), "{s}");
    assert!(s.contains("×2"), "{s}");
}

#[test]
fn engine_planned_strategy_returns_the_same_plan_shape() {
    // The Engine's Planned strategy must expose exactly the plan the
    // low-level API builds: 7 DAG nodes for the 10-node division tree.
    let mut db = Database::new();
    db.set("R", Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7]]));
    db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
    let e = division::division_double_difference("R", "S");
    let direct = PhysicalPlan::of(&e, &db.schema()).unwrap();
    let out = sj_eval::Engine::new(db).query(e).run().unwrap();
    let via_engine = out.plan.expect("Planned strategy returns its plan");
    assert_eq!(via_engine.node_count(), direct.node_count());
    assert_eq!(via_engine.expr_node_count(), direct.expr_node_count());
    assert_eq!(via_engine.explain(), direct.explain());
    assert_eq!(out.relation, Relation::from_int_rows(&[&[1]]));
}

#[test]
fn planned_instrumentation_reports_operators_and_timing() {
    let db = beer_db();
    let e = division::example3_lousy_bar_sa();
    let report = evaluate_planned_instrumented(&e, &db).unwrap();
    assert!(report.nodes.iter().any(|n| n.operator == "hash-semijoin"));
    assert!(report.nodes.iter().any(|n| n.operator == "scan"));
    // Self times are recorded (may be zero on coarse clocks, but the sum
    // is well-defined).
    let _ = report.total_elapsed();
    // The shared Serves scan appears once with occurrence count 2.
    let (serves_idx, serves) = report
        .nodes
        .iter()
        .enumerate()
        .find(|(_, n)| n.label == "Serves")
        .unwrap();
    assert_eq!(report.occurrences[serves_idx], 2);
    assert_eq!(serves.cardinality, 2);
}
