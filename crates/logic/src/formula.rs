//! The guarded fragment (GF) of first-order logic — Definition 6 of the
//! paper.
//!
//! * Atomic formulas `x = y`, `x < y`, `x = c` (c a constant).
//! * Relation atoms `R(x₁, …, x_k)`.
//! * Boolean connectives `¬, ∧, ∨, →, ↔`.
//! * **Guarded quantification**: `∃ȳ (α(x̄, ȳ) ∧ φ(x̄, ȳ))` where the
//!   *guard* α is a relation atom containing **all** free variables of φ.
//!
//! GF corresponds to SA= (Theorem 8, implemented in [`crate::translate`])
//! and is invariant under guarded bisimulation (Proposition 13, exploited
//! in `sj-bisim`).

use sj_storage::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A first-order variable (named).
pub type Var = String;

/// A GF formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Constant truth value (⊤ / ⊥). Not an official GF atom but
    /// convenient as the body of a bare guard (`∃w Likes(w, z)` is
    /// `∃w (Likes(w, z) ∧ ⊤)`) and expressible in GF proper.
    Bool(bool),
    /// `x = y`.
    Eq(Var, Var),
    /// `x < y`.
    Lt(Var, Var),
    /// `x = c` for a constant `c ∈ U`.
    EqConst(Var, Value),
    /// Relation atom `R(x₁, …, x_k)`; variables may repeat.
    Rel(String, Vec<Var>),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// `φ → ψ`.
    Implies(Box<Formula>, Box<Formula>),
    /// `φ ↔ ψ`.
    Iff(Box<Formula>, Box<Formula>),
    /// Guarded existential quantification
    /// `∃ vars ( guard_rel(guard_args) ∧ body )`.
    Exists {
        /// The quantified variables ȳ.
        vars: Vec<Var>,
        /// Name of the guard relation α.
        guard_rel: String,
        /// Arguments of the guard atom (variables; may repeat).
        guard_args: Vec<Var>,
        /// The body φ.
        body: Box<Formula>,
    },
}

impl Formula {
    /// Convenience: `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Convenience: `self ∧ other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Convenience: `self ∨ other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Convenience: `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Convenience: `self ↔ other`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    /// Convenience constructor for guarded ∃.
    pub fn exists(
        vars: impl IntoIterator<Item = impl Into<Var>>,
        guard_rel: impl Into<String>,
        guard_args: impl IntoIterator<Item = impl Into<Var>>,
        body: Formula,
    ) -> Formula {
        Formula::Exists {
            vars: vars.into_iter().map(Into::into).collect(),
            guard_rel: guard_rel.into(),
            guard_args: guard_args.into_iter().map(Into::into).collect(),
            body: Box::new(body),
        }
    }

    /// Conjunction of many formulas (⊤ for the empty list).
    pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::Bool(true),
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of many formulas (⊥ for the empty list).
    pub fn or_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::Bool(false),
            Some(first) => it.fold(first, Formula::or),
        }
    }

    /// The free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Bool(_) => BTreeSet::new(),
            Formula::Eq(x, y) | Formula::Lt(x, y) => [x.clone(), y.clone()].into_iter().collect(),
            Formula::EqConst(x, _) => [x.clone()].into_iter().collect(),
            Formula::Rel(_, args) => args.iter().cloned().collect(),
            Formula::Not(f) => f.free_vars(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Exists {
                vars,
                guard_args,
                body,
                ..
            } => {
                let mut s: BTreeSet<Var> = guard_args.iter().cloned().collect();
                s.extend(body.free_vars());
                for v in vars {
                    s.remove(v);
                }
                s
            }
        }
    }

    /// The constants mentioned (the formula's set `C`), sorted.
    pub fn constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.collect_constants(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_constants(&self, out: &mut Vec<Value>) {
        match self {
            Formula::EqConst(_, c) => out.push(c.clone()),
            Formula::Not(f) => f.collect_constants(out),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.collect_constants(out);
                b.collect_constants(out);
            }
            Formula::Exists { body, .. } => body.collect_constants(out),
            _ => {}
        }
    }

    /// Check the guardedness condition of Definition 6(4) throughout the
    /// formula: in every `∃ȳ (α ∧ φ)`, all free variables of φ occur in α,
    /// and every quantified variable occurs in α. Returns the first
    /// violation as an error message.
    pub fn check_guarded(&self) -> Result<(), String> {
        match self {
            Formula::Not(f) => f.check_guarded(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.check_guarded()?;
                b.check_guarded()
            }
            Formula::Exists {
                vars,
                guard_rel,
                guard_args,
                body,
            } => {
                let guard_set: BTreeSet<&Var> = guard_args.iter().collect();
                for v in vars {
                    if !guard_set.contains(v) {
                        return Err(format!(
                            "quantified variable {v} does not occur in guard {guard_rel}"
                        ));
                    }
                }
                for v in body.free_vars() {
                    if !guard_set.contains(&v) {
                        return Err(format!(
                            "free variable {v} of the body does not occur in guard {guard_rel}"
                        ));
                    }
                }
                body.check_guarded()
            }
            _ => Ok(()),
        }
    }

    /// Rename **free** variables according to `map` (variables not in the
    /// map are left unchanged). Bound variables are never renamed; callers
    /// (the translations) keep bound names globally fresh, so capture
    /// cannot occur — this is asserted in debug builds.
    pub fn rename_free(&self, map: &std::collections::BTreeMap<Var, Var>) -> Formula {
        let ren = |v: &Var| map.get(v).cloned().unwrap_or_else(|| v.clone());
        match self {
            Formula::Bool(b) => Formula::Bool(*b),
            Formula::Eq(x, y) => Formula::Eq(ren(x), ren(y)),
            Formula::Lt(x, y) => Formula::Lt(ren(x), ren(y)),
            Formula::EqConst(x, c) => Formula::EqConst(ren(x), c.clone()),
            Formula::Rel(r, args) => Formula::Rel(r.clone(), args.iter().map(&ren).collect()),
            Formula::Not(f) => f.rename_free(map).not(),
            Formula::And(a, b) => a.rename_free(map).and(b.rename_free(map)),
            Formula::Or(a, b) => a.rename_free(map).or(b.rename_free(map)),
            Formula::Implies(a, b) => a.rename_free(map).implies(b.rename_free(map)),
            Formula::Iff(a, b) => a.rename_free(map).iff(b.rename_free(map)),
            Formula::Exists {
                vars,
                guard_rel,
                guard_args,
                body,
            } => {
                debug_assert!(
                    vars.iter()
                        .all(|v| !map.contains_key(v) && !map.values().any(|w| w == v)),
                    "bound variable capture: translations must keep bound names fresh"
                );
                let inner: std::collections::BTreeMap<Var, Var> = map
                    .iter()
                    .filter(|(k, _)| !vars.contains(k))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                Formula::Exists {
                    vars: vars.clone(),
                    guard_rel: guard_rel.clone(),
                    guard_args: guard_args
                        .iter()
                        .map(|v| {
                            if vars.contains(v) {
                                v.clone()
                            } else {
                                inner.get(v).cloned().unwrap_or_else(|| v.clone())
                            }
                        })
                        .collect(),
                    body: Box::new(body.rename_free(&inner)),
                }
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Bool(true) => write!(f, "true"),
            Formula::Bool(false) => write!(f, "false"),
            Formula::Eq(x, y) => write!(f, "{x}={y}"),
            Formula::Lt(x, y) => write!(f, "{x}<{y}"),
            Formula::EqConst(x, c) => write!(f, "{x}='{c}'"),
            Formula::Rel(r, args) => write!(f, "{r}({})", args.join(",")),
            Formula::Not(g) => write!(f, "¬({g})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::Iff(a, b) => write!(f, "({a} ↔ {b})"),
            Formula::Exists {
                vars,
                guard_rel,
                guard_args,
                body,
            } => write!(
                f,
                "∃{}({}({}) ∧ {body})",
                vars.join(","),
                guard_rel,
                guard_args.join(",")
            ),
        }
    }
}

/// The GF formula of **Example 7**: drinkers visiting a lousy bar,
/// `∃y (Visits(x,y) ∧ ¬∃z (Serves(y,z) ∧ ∃w Likes(w,z)))`.
pub fn example7_lousy_bar() -> Formula {
    Formula::exists(
        ["y"],
        "Visits",
        ["x", "y"],
        Formula::exists(
            ["z"],
            "Serves",
            ["y", "z"],
            Formula::exists(["w"], "Likes", ["w", "z"], Formula::Bool(true)),
        )
        .not(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn example7_shape() {
        let f = example7_lousy_bar();
        assert_eq!(
            f.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["x".to_string()]
        );
        assert!(f.check_guarded().is_ok());
        let s = f.to_string();
        assert!(s.contains("Visits(x,y)"));
        assert!(s.contains("¬"));
    }

    #[test]
    fn free_vars_of_connectives() {
        let f = Formula::Eq("x".into(), "y".into()).and(Formula::Lt("y".into(), "z".into()));
        let fv: Vec<Var> = f.free_vars().into_iter().collect();
        assert_eq!(fv, vec!["x".to_string(), "y".to_string(), "z".to_string()]);
    }

    #[test]
    fn exists_binds() {
        let f = Formula::exists(["y"], "R", ["x", "y"], Formula::Eq("x".into(), "y".into()));
        let fv: Vec<Var> = f.free_vars().into_iter().collect();
        assert_eq!(fv, vec!["x".to_string()]);
    }

    #[test]
    fn guardedness_violations_detected() {
        // body free var z not in guard
        let bad = Formula::exists(["y"], "R", ["x", "y"], Formula::Eq("x".into(), "z".into()));
        assert!(bad.check_guarded().is_err());
        // quantified var not in guard
        let bad2 = Formula::exists(["w"], "R", ["x", "y"], Formula::Bool(true));
        assert!(bad2.check_guarded().is_err());
        // nested violation found through connectives
        let bad3 = bad.clone().not().and(Formula::Bool(true));
        assert!(bad3.check_guarded().is_err());
    }

    #[test]
    fn rename_free_respects_binding() {
        let f = Formula::exists(["y"], "R", ["x", "y"], Formula::Eq("x".into(), "y".into()));
        let mut map = BTreeMap::new();
        map.insert("x".to_string(), "u".to_string());
        let g = f.rename_free(&map);
        match &g {
            Formula::Exists {
                guard_args, body, ..
            } => {
                assert_eq!(guard_args, &vec!["u".to_string(), "y".to_string()]);
                assert_eq!(**body, Formula::Eq("u".into(), "y".into()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn constants_collected() {
        let f = Formula::EqConst("x".into(), Value::int(5))
            .or(Formula::EqConst("y".into(), Value::int(2)));
        assert_eq!(f.constants(), vec![Value::int(2), Value::int(5)]);
    }

    #[test]
    fn and_all_or_all() {
        assert_eq!(Formula::and_all([]), Formula::Bool(true));
        assert_eq!(Formula::or_all([]), Formula::Bool(false));
        let f = Formula::and_all([Formula::Bool(true), Formula::Bool(false)]);
        assert_eq!(f, Formula::Bool(true).and(Formula::Bool(false)));
    }
}
