//! Errors for the logic layer.

use std::fmt;

/// Errors produced by GF validation and the Theorem 8 translations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// The formula violates the guardedness condition of Definition 6(4).
    Unguarded(String),
    /// A relation atom disagrees with the schema.
    BadRelationAtom {
        /// Relation name used in the atom.
        relation: String,
        /// What went wrong.
        message: String,
    },
    /// The schema has no relation names, so the "C-stored tuples"
    /// expression (which every translation case unions over) cannot be
    /// formed.
    EmptySchema,
    /// The expression lies outside the fragment the translation handles.
    UnsupportedExpression(String),
    /// An underlying algebra error.
    Algebra(sj_algebra::AlgebraError),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Unguarded(m) => write!(f, "formula is not guarded: {m}"),
            LogicError::BadRelationAtom { relation, message } => {
                write!(f, "bad relation atom {relation}: {message}")
            }
            LogicError::EmptySchema => write!(f, "schema has no relations"),
            LogicError::UnsupportedExpression(m) => {
                write!(f, "unsupported expression for translation: {m}")
            }
            LogicError::Algebra(e) => write!(f, "algebra error: {e}"),
        }
    }
}

impl std::error::Error for LogicError {}

impl From<sj_algebra::AlgebraError> for LogicError {
    fn from(e: sj_algebra::AlgebraError) -> Self {
        LogicError::Algebra(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(LogicError::EmptySchema.to_string().contains("no relations"));
        assert!(LogicError::Unguarded("x".into()).to_string().contains("x"));
        assert!(LogicError::UnsupportedExpression("tag".into())
            .to_string()
            .contains("tag"));
    }
}
