//! Distinguishing formulas — the constructive converse of Proposition 13.
//!
//! Proposition 13 says guarded-bisimilar pointed databases satisfy the
//! same GF formulas. Contrapositively, when `A,ā` and `B,b̄` are **not**
//! bisimilar, some GF formula separates them; this module *finds* one by
//! searching the guarded bisimulation game to a bounded depth:
//!
//! * **round 0** — an atomic mismatch: an equality / order / constant
//!   pattern or a relation atom over the current tuples that holds on one
//!   side only;
//! * **round k** — a Spoiler move: a guarded tuple `t̄′` of `A` such that
//!   *every* compatible Duplicator response `ū′` in `B` is distinguished
//!   at depth `k−1`; the formula is `∃ȳ (R(w̄) ∧ ⋀ δ_ū′)` with the
//!   overlap variables shared — a guarded ∃, so the result is genuinely
//!   in GF. Spoiler may also move on the `B` side, yielding a negated
//!   guarded ∃.
//!
//! The returned formula `φ(x₁,…,x_k)` satisfies `A ⊨ φ(ā)` and
//! `B ⊭ φ(b̄)` — machine-checked in the tests. A `None` result means the
//! game has no Spoiler win within the depth bound (in particular,
//! bisimilar pairs always yield `None`, at every depth).

use crate::formula::{Formula, Var};
use sj_storage::{Database, Tuple, Value};

/// Try to find a GF formula `φ` with `A ⊨ φ(ā)` and `B ⊭ φ(b̄)`, searching
/// the bisimulation game to `depth` rounds. Free variables are
/// `x1..x{arity}`, one per position of the tuples (which must have equal
/// arity).
pub fn distinguishing_formula(
    a: &Database,
    a_tuple: &Tuple,
    b: &Database,
    b_tuple: &Tuple,
    constants: &[Value],
    depth: usize,
) -> Option<(Formula, Vec<Var>)> {
    assert_eq!(
        a_tuple.arity(),
        b_tuple.arity(),
        "pointed tuples must align"
    );
    let vars: Vec<Var> = (1..=a_tuple.arity()).map(|i| format!("x{i}")).collect();
    let mut fresh = 0usize;
    let f = go(a, a_tuple, b, b_tuple, &vars, constants, depth, &mut fresh)?;
    Some((f, vars))
}

/// Core game search: find φ over `vars` (position i ↦ vars[i]) true at
/// `at` in `a`, false at `bt` in `b`.
#[allow(clippy::too_many_arguments)]
fn go(
    a: &Database,
    at: &Tuple,
    b: &Database,
    bt: &Tuple,
    vars: &[Var],
    constants: &[Value],
    depth: usize,
    fresh: &mut usize,
) -> Option<Formula> {
    // Round 0: atomic mismatches.
    if let Some(f) = atomic_mismatch(a, at, b, bt, vars, constants) {
        return Some(f);
    }
    if depth == 0 {
        return None;
    }
    // Spoiler moves in A: positive guarded ∃.
    if let Some(f) = spoiler_move(a, at, b, bt, vars, constants, depth, fresh, false) {
        return Some(f);
    }
    // Spoiler moves in B: ψ true at b̄, false at ā — return ¬ψ.
    if let Some(f) = spoiler_move(b, bt, a, at, vars, constants, depth, fresh, true) {
        return Some(f);
    }
    None
}

/// Equality/order/constant patterns and relation atoms over the current
/// tuples.
fn atomic_mismatch(
    a: &Database,
    at: &Tuple,
    b: &Database,
    bt: &Tuple,
    vars: &[Var],
    constants: &[Value],
) -> Option<Formula> {
    let n = at.arity();
    for i in 0..n {
        for j in 0..n {
            let (ea, eb) = (at[i] == at[j], bt[i] == bt[j]);
            if ea != eb {
                let f = Formula::Eq(vars[i].clone(), vars[j].clone());
                return Some(if ea { f } else { f.not() });
            }
            let (la, lb) = (at[i] < at[j], bt[i] < bt[j]);
            if la != lb {
                let f = Formula::Lt(vars[i].clone(), vars[j].clone());
                return Some(if la { f } else { f.not() });
            }
        }
        for c in constants {
            let (ca, cb) = (&at[i] == c, &bt[i] == c);
            if ca != cb {
                let f = Formula::EqConst(vars[i].clone(), c.clone());
                return Some(if ca { f } else { f.not() });
            }
        }
    }
    // Relation atoms over the tuple's values: every tuple of A(R) writable
    // with ā's values must have its positional image in B(R), and vice
    // versa. (Assumes the value-level map is consistent — an inconsistent
    // map was caught by the equality patterns above.)
    let mut names: Vec<&str> = a.names().chain(b.names()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        if let Some(ra) = a.get(name) {
            for t in ra {
                if let Some(idx) = positions_of(t, at) {
                    let image: Tuple = idx.iter().map(|&i| bt[i].clone()).collect();
                    if !b.get(name).is_some_and(|rb| rb.contains(&image)) {
                        return Some(Formula::Rel(
                            name.to_string(),
                            idx.iter().map(|&i| vars[i].clone()).collect(),
                        ));
                    }
                }
            }
        }
        if let Some(rb) = b.get(name) {
            for t in rb {
                if let Some(idx) = positions_of(t, bt) {
                    let pre: Tuple = idx.iter().map(|&i| at[i].clone()).collect();
                    if !a.get(name).is_some_and(|ra| ra.contains(&pre)) {
                        return Some(
                            Formula::Rel(
                                name.to_string(),
                                idx.iter().map(|&i| vars[i].clone()).collect(),
                            )
                            .not(),
                        );
                    }
                }
            }
        }
    }
    None
}

/// Write each component of `t` as a position of `base` (first occurrence);
/// `None` if some component is not among `base`'s values.
fn positions_of(t: &Tuple, base: &Tuple) -> Option<Vec<usize>> {
    t.iter().map(|v| base.iter().position(|w| w == v)).collect()
}

/// One Spoiler round on the `sa` ("spoiler") side: find a guarded tuple
/// `t̄′ ∈ T_sa` such that every compatible response in `sb` is
/// recursively distinguished. `negate` marks that `sa` is really the `B`
/// side (the result is wrapped in ¬).
#[allow(clippy::too_many_arguments)]
fn spoiler_move(
    sa: &Database,
    sat: &Tuple,
    sb: &Database,
    sbt: &Tuple,
    vars: &[Var],
    constants: &[Value],
    depth: usize,
    fresh: &mut usize,
    negate: bool,
) -> Option<Formula> {
    for (rel_name, t_prime) in sa.tuple_space() {
        let m = t_prime.arity();
        // Guard variables: reuse x-vars for values shared with the
        // current tuple, fresh y-vars for new values (same value ⇒ same
        // variable, encoding the equality pattern in the guard atom).
        let mut guard_vars: Vec<Var> = Vec::with_capacity(m);
        let mut quantified: Vec<Var> = Vec::new();
        let mut new_value_var: Vec<(Value, Var)> = Vec::new();
        for p in 0..m {
            let v = &t_prime[p];
            if let Some(i) = sat.iter().position(|w| w == v) {
                guard_vars.push(vars[i].clone());
            } else if let Some((_, y)) = new_value_var.iter().find(|(w, _)| w == v) {
                guard_vars.push(y.clone());
            } else {
                *fresh += 1;
                let y = format!("y{fresh}");
                new_value_var.push((v.clone(), y.clone()));
                quantified.push(y.clone());
                guard_vars.push(y);
            }
        }
        // Candidate Duplicator responses: same-relation tuples with a
        // compatible pattern and overlap.
        let candidates: Vec<&Tuple> = sb
            .get(rel_name)
            .map(|r| {
                r.iter()
                    .filter(|u| compatible(t_prime, u, sat, sbt))
                    .collect()
            })
            .unwrap_or_default();
        // Recursively distinguish every candidate; positions of t̄′ are
        // the new game tuple. The sub-formulas' variables are renamed to
        // the guard variables.
        let mut deltas: Vec<Formula> = Vec::with_capacity(candidates.len());
        let mut all = true;
        for u in &candidates {
            let sub_vars: Vec<Var> = (1..=m).map(|i| format!("p{i}_{fresh}")).collect();
            match go(sa, t_prime, sb, u, &sub_vars, constants, depth - 1, fresh) {
                Some(delta) => {
                    let map: std::collections::BTreeMap<Var, Var> = sub_vars
                        .iter()
                        .cloned()
                        .zip(guard_vars.iter().cloned())
                        .collect();
                    deltas.push(delta.rename_free(&map));
                }
                None => {
                    all = false;
                    break;
                }
            }
        }
        if !all {
            continue;
        }
        // Pin the equality pattern: distinct guard variables stand for
        // distinct values (true on the Spoiler side by construction).
        // Without these conjuncts, a response with a *coarser* pattern
        // (two positions collapsing to one value) could satisfy the
        // formula even though `compatible` excluded it from the candidate
        // set. Both variables occur in the guard, so the conjuncts are
        // guarded. (Nothing more can be pinned in GF: a fresh value
        // colliding with an *unshared* current value is invisible to the
        // formula — and, matching that, a legal Duplicator response.)
        let mut constraints: Vec<Formula> = Vec::new();
        for p in 0..m {
            for q in (p + 1)..m {
                if guard_vars[p] != guard_vars[q] {
                    constraints
                        .push(Formula::Eq(guard_vars[p].clone(), guard_vars[q].clone()).not());
                }
            }
        }
        let body = Formula::and_all(constraints.into_iter().chain(deltas));
        let phi = Formula::Exists {
            vars: quantified,
            guard_rel: rel_name.to_string(),
            guard_args: guard_vars,
            body: Box::new(body),
        };
        // Note: when `negate` is set the roles are swapped, so this φ
        // holds at (sb-side view) … wrap accordingly.
        let result = if negate { phi.not() } else { phi };
        return Some(result);
    }
    None
}

/// Is `u` a witness the formula's guard + distinctness constraints would
/// accept as a Duplicator response to Spoiler's `t`? Same equality
/// pattern, and agreement with the current pair `(sat, sbt)` on shared
/// domain values. (The converse direction — `u` touching a current
/// *range* value whose domain partner is not in `t` — is deliberately
/// allowed: GF cannot see it, and neither does Definition 11, which only
/// demands agreement on `X ∩ X′`.)
fn compatible(t: &Tuple, u: &Tuple, sat: &Tuple, sbt: &Tuple) -> bool {
    let m = t.arity();
    if u.arity() != m {
        return false;
    }
    for p in 0..m {
        for q in 0..m {
            if (t[p] == t[q]) != (u[p] == u[q]) {
                return false;
            }
        }
        // Overlap with the current pair: a position of `sat` holding the
        // same value must map to the corresponding `sbt` value.
        if let Some(i) = sat.iter().position(|w| *w == t[p]) {
            if u[p] != sbt[i] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{satisfies, Assignment};
    use sj_storage::{tuple, Relation};

    fn env(vars: &[Var], t: &Tuple) -> Assignment {
        vars.iter().cloned().zip(t.iter().cloned()).collect()
    }

    /// Check the defining property of a distinguishing formula.
    fn verify(a: &Database, at: &Tuple, b: &Database, bt: &Tuple, f: &Formula, vars: &[Var]) {
        assert!(
            satisfies(a, f, &env(vars, at)),
            "φ must hold at A,{at}: {f}"
        );
        assert!(
            !satisfies(b, f, &env(vars, bt)),
            "φ must fail at B,{bt}: {f}"
        );
        assert!(f.check_guarded().is_ok(), "φ must be guarded: {f}");
    }

    #[test]
    fn reflexive_loop_distinguished() {
        let mut a = Database::new();
        a.set("E", Relation::from_int_rows(&[&[1, 1]]));
        let mut b = Database::new();
        b.set("E", Relation::from_int_rows(&[&[5, 6]]));
        let (f, vars) = distinguishing_formula(&a, &tuple![1], &b, &tuple![5], &[], 2).unwrap();
        verify(&a, &tuple![1], &b, &tuple![5], &f, &vars);
    }

    #[test]
    fn relation_pattern_distinguished_at_depth_zero() {
        // (1,2) ∈ A(S), image (7,8) ∉ B(S): a depth-0 relation atom.
        let mut a = Database::new();
        a.set("S", Relation::from_int_rows(&[&[1, 2]]));
        let mut b = Database::new();
        b.set("S", Relation::from_int_rows(&[&[9, 9]]));
        let (f, vars) =
            distinguishing_formula(&a, &tuple![1, 2], &b, &tuple![7, 8], &[], 0).unwrap();
        verify(&a, &tuple![1, 2], &b, &tuple![7, 8], &f, &vars);
    }

    #[test]
    fn equality_pattern_distinguished() {
        let a = Database::new();
        let b = Database::new();
        // ā repeats a value, b̄ does not.
        let (f, vars) =
            distinguishing_formula(&a, &tuple![3, 3], &b, &tuple![4, 5], &[], 0).unwrap();
        verify(&a, &tuple![3, 3], &b, &tuple![4, 5], &f, &vars);
    }

    #[test]
    fn order_pattern_distinguished() {
        let a = Database::new();
        let b = Database::new();
        let (f, vars) =
            distinguishing_formula(&a, &tuple![1, 2], &b, &tuple![5, 4], &[], 0).unwrap();
        verify(&a, &tuple![1, 2], &b, &tuple![5, 4], &f, &vars);
    }

    #[test]
    fn constant_distinguished() {
        let a = Database::new();
        let b = Database::new();
        let c = [Value::int(7)];
        let (f, vars) = distinguishing_formula(&a, &tuple![7], &b, &tuple![8], &c, 0).unwrap();
        verify(&a, &tuple![7], &b, &tuple![8], &f, &vars);
    }

    #[test]
    fn fig5_bisimilar_pair_not_distinguished() {
        // A,1 ∼ B,1 (Proposition 26's witness): no distinguishing formula
        // exists; the bounded search must return None at every depth.
        let mut a = Database::new();
        a.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[2, 8]]),
        );
        a.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        let mut b = Database::new();
        b.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 8], &[2, 9], &[3, 7], &[3, 9]]),
        );
        b.set("S", Relation::from_int_rows(&[&[7], &[8], &[9]]));
        for depth in 0..=3 {
            assert!(
                distinguishing_formula(&a, &tuple![1], &b, &tuple![1], &[], depth).is_none(),
                "depth {depth} wrongly distinguished a bisimilar pair"
            );
        }
    }

    #[test]
    fn two_round_game_needed() {
        // A: a path of length 2 from 1; B: a path of length 1 from 1.
        // Depth 1 sees "some edge from the end", depth 2 is needed to
        // find the missing second step.
        let mut a = Database::new();
        a.set("E", Relation::from_int_rows(&[&[1, 2], &[2, 3]]));
        let mut b = Database::new();
        b.set("E", Relation::from_int_rows(&[&[1, 2]]));
        let found =
            (0..=2).find_map(|d| distinguishing_formula(&a, &tuple![1], &b, &tuple![1], &[], d));
        let (f, vars) = found.expect("paths of different length distinguishable");
        verify(&a, &tuple![1], &b, &tuple![1], &f, &vars);
    }
}
