//! Physical operator implementations on [`Relation`]s.
//!
//! Each logical operator of the paper's algebra (Definitions 1 and 2, plus
//! the Section 5 grouping extension) has one function here. Joins and
//! semijoins dispatch on the condition: equality atoms are executed with a
//! hash index (build on the right, probe from the left), remaining atoms
//! (`≠`, `<`, `>`) are applied as residual filters; a condition with no
//! equality atom falls back to a filtered nested loop.
//!
//! All functions assume the expressions were validated (column references
//! in range); they index slices directly.

use sj_algebra::{CompOp, Condition, Selection};
use sj_storage::{FxHashMap, FxHashSet, HashIndex, Relation, Tuple, Value};

/// `π_{cols}(r)` — 1-based columns, may repeat and reorder (Definition 1(3)).
pub fn project(r: &Relation, cols: &[usize]) -> Relation {
    let zero_based: Vec<usize> = cols.iter().map(|c| c - 1).collect();
    Relation::from_tuples(cols.len(), r.iter().map(|t| t.project(&zero_based)))
        .expect("projection preserves arity")
}

/// `σ(r)` for the three selection forms (Definition 1(4) + derived σᵢ₌c).
pub fn select(r: &Relation, sel: &Selection) -> Relation {
    let keep: Box<dyn Fn(&Tuple) -> bool> = match sel {
        Selection::Eq(i, j) => {
            let (i, j) = (*i - 1, *j - 1);
            Box::new(move |t: &Tuple| t[i] == t[j])
        }
        Selection::Lt(i, j) => {
            let (i, j) = (*i - 1, *j - 1);
            Box::new(move |t: &Tuple| t[i] < t[j])
        }
        Selection::EqConst(i, c) => {
            let i = *i - 1;
            let c = c.clone();
            Box::new(move |t: &Tuple| t[i] == c)
        }
    };
    Relation::from_tuples(r.arity(), r.iter().filter(|t| keep(t)).cloned())
        .expect("selection preserves arity")
}

/// `τ_c(r)` — append the constant to every tuple (Definition 1(5)).
pub fn const_tag(r: &Relation, c: &Value) -> Relation {
    Relation::from_tuples(r.arity() + 1, r.iter().map(|t| t.tag(c.clone())))
        .expect("tagging increments arity")
}

/// Split a condition into its equality part (as 0-based `(left, right)`
/// column pairs) and the residual non-equality atoms.
pub(crate) fn split_condition(theta: &Condition) -> (Vec<(usize, usize)>, Condition) {
    let eq: Vec<(usize, usize)> = theta
        .atoms()
        .iter()
        .filter(|a| a.op == CompOp::Eq)
        .map(|a| (a.left - 1, a.right - 1))
        .collect();
    let residual = Condition::new(theta.atoms().iter().filter(|a| a.op != CompOp::Eq).copied());
    (eq, residual)
}

/// The physical dispatch [`join`] uses for θ, by name — the single source
/// of truth for instrumentation reports (the planner's merge variants are
/// chosen a level above, in `plan`).
pub fn join_dispatch(theta: &Condition) -> &'static str {
    if split_condition(theta).0.is_empty() {
        "nested-loop-join"
    } else {
        "hash-join"
    }
}

/// The physical dispatch [`semijoin`] uses for θ, by name.
pub fn semijoin_dispatch(theta: &Condition) -> &'static str {
    if split_condition(theta).0.is_empty() {
        "nested-loop-semijoin"
    } else {
        "hash-semijoin"
    }
}

/// `r₁ ⋈θ r₂` (Definition 1(6)). Hash join on the equality atoms with a
/// residual filter; filtered nested loop when θ has no equality atom.
pub fn join(r1: &Relation, r2: &Relation, theta: &Condition) -> Relation {
    let (eq, residual) = split_condition(theta);
    let out_arity = r1.arity() + r2.arity();
    let mut out: Vec<Tuple> = Vec::new();
    if eq.is_empty() {
        for t1 in r1 {
            for t2 in r2 {
                if theta.eval(t1.values(), t2.values()) {
                    out.push(t1.concat(t2));
                }
            }
        }
    } else {
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let index = HashIndex::build(r2, &right_cols);
        let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
        for t1 in r1 {
            key.clear();
            key.extend(left_cols.iter().map(|&c| t1[c].clone()));
            for &pos in index.probe(&key) {
                let t2 = &r2.tuples()[pos];
                if residual.eval(t1.values(), t2.values()) {
                    out.push(t1.concat(t2));
                }
            }
        }
    }
    Relation::from_tuples(out_arity, out).expect("join arity is n+m")
}

/// `r₁ ⋉θ r₂` (Definition 2). For equality-only θ a hash-set membership
/// probe; for mixed conditions a hash probe plus residual check; otherwise
/// a nested-loop `any`.
pub fn semijoin(r1: &Relation, r2: &Relation, theta: &Condition) -> Relation {
    let (eq, residual) = split_condition(theta);
    let keep: Vec<Tuple> = if eq.is_empty() {
        if r2.is_empty() {
            Vec::new()
        } else if theta.is_empty() {
            // Unconditional semijoin against a nonempty right side.
            r1.iter().cloned().collect()
        } else {
            r1.iter()
                .filter(|t1| r2.iter().any(|t2| theta.eval(t1.values(), t2.values())))
                .cloned()
                .collect()
        }
    } else if residual.is_empty() {
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let mut keys: FxHashSet<Vec<Value>> = FxHashSet::default();
        for t2 in r2 {
            keys.insert(right_cols.iter().map(|&c| t2[c].clone()).collect());
        }
        let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
        r1.iter()
            .filter(|t1| {
                key.clear();
                key.extend(left_cols.iter().map(|&c| t1[c].clone()));
                keys.contains(key.as_slice())
            })
            .cloned()
            .collect()
    } else {
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let index = HashIndex::build(r2, &right_cols);
        let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
        r1.iter()
            .filter(|t1| {
                key.clear();
                key.extend(left_cols.iter().map(|&c| t1[c].clone()));
                index
                    .probe(&key)
                    .iter()
                    .any(|&pos| residual.eval(t1.values(), r2.tuples()[pos].values()))
            })
            .cloned()
            .collect()
    };
    Relation::from_tuples(r1.arity(), keep).expect("semijoin preserves left arity")
}

/// The length `k` of the shared sort-key prefix when θ's equality atoms
/// pair the first `k` columns of both operands **in order** — i.e. the
/// deduplicated equality pairs are exactly `{1=1, 2=2, …, k=k}` (1-based).
///
/// Relations are stored in canonical (lexicographic) order, so both
/// operands of such a condition are already sorted by their key: the
/// planner in [`crate::plan`] can then run [`merge_join`] /
/// [`merge_semijoin`] without any sort or hash-table build. Returns `None`
/// when θ has no equality atom or the equalities are not an aligned
/// prefix.
pub fn merge_prefix_len(theta: &Condition) -> Option<usize> {
    let (mut eq, _) = split_condition(theta);
    if eq.is_empty() {
        return None;
    }
    eq.sort_unstable();
    eq.dedup();
    for (i, &(l, r)) in eq.iter().enumerate() {
        if l != i || r != i {
            return None;
        }
    }
    Some(eq.len())
}

/// Compare the first `k` components of two tuples.
#[inline]
fn cmp_prefix(a: &Tuple, b: &Tuple, k: usize) -> std::cmp::Ordering {
    a.values()[..k].cmp(&b.values()[..k])
}

/// End of the run of tuples sharing `ts[start]`'s first `k` components.
#[inline]
fn run_end(ts: &[Tuple], start: usize, k: usize) -> usize {
    let mut end = start + 1;
    while end < ts.len() && cmp_prefix(&ts[end], &ts[start], k) == std::cmp::Ordering::Equal {
        end += 1;
    }
    end
}

/// Merge equi-join on an aligned key prefix of length `k` (see
/// [`merge_prefix_len`]), with `residual` applied to each candidate pair.
///
/// Both inputs are in canonical order, hence sorted by the key; the output
/// is produced already in canonical order (pairs are emitted in
/// lexicographic `(t₁, t₂)` order and are pairwise distinct), so no
/// re-sort or dedup is needed.
pub fn merge_join(r1: &Relation, r2: &Relation, k: usize, residual: &Condition) -> Relation {
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match cmp_prefix(&a[i], &b[j], k) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end(a, i, k), run_end(b, j, k));
                for t1 in &a[i..i_end] {
                    for t2 in &b[j..j_end] {
                        if residual.eval(t1.values(), t2.values()) {
                            out.push(t1.concat(t2));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_sorted_tuples(r1.arity() + r2.arity(), out)
}

/// Merge equi-semijoin on an aligned key prefix of length `k` (see
/// [`merge_prefix_len`]). A left tuple survives iff its key block on the
/// right contains a tuple passing `residual`. Output is a subsequence of
/// the (canonically ordered) left input — no re-sort needed.
pub fn merge_semijoin(r1: &Relation, r2: &Relation, k: usize, residual: &Condition) -> Relation {
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match cmp_prefix(&a[i], &b[j], k) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end(a, i, k), run_end(b, j, k));
                for t1 in &a[i..i_end] {
                    if residual.is_empty()
                        || b[j..j_end]
                            .iter()
                            .any(|t2| residual.eval(t1.values(), t2.values()))
                    {
                        out.push(t1.clone());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_sorted_tuples(r1.arity(), out)
}

// ---------------------------------------------------------------------------
// Partition-parallel join and semijoin (kernel-layer re-exports)
// ---------------------------------------------------------------------------

// The partition-parallel machinery lives in [`crate::kernel`], where it
// composes with the `Execution` knob (row or vectorized per-partition
// kernels). These row-execution entry points are re-exported here so the
// historical `ops::par_*` / `ops::PartitionStat` paths keep working.
pub use crate::kernel::{
    par_join, par_join_stats, par_merge_join_stats, par_merge_semijoin_stats, par_semijoin,
    par_semijoin_stats, PartitionStat,
};

/// `γ_{cols; count}(r)` — group by the 1-based `cols` and append the group
/// cardinality as an integer (Section 5). With `cols` empty the result is a
/// single `(count,)` tuple — `{(0,)}` for an empty input, matching SQL's
/// `COUNT(*)` on an empty table.
pub fn group_count(r: &Relation, cols: &[usize]) -> Relation {
    let zero_based: Vec<usize> = cols.iter().map(|c| c - 1).collect();
    let mut groups: FxHashMap<Vec<Value>, i64> = FxHashMap::default();
    for t in r {
        let key: Vec<Value> = zero_based.iter().map(|&c| t[c].clone()).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    if cols.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), 0);
    }
    Relation::from_tuples(
        cols.len() + 1,
        groups.into_iter().map(|(mut key, n)| {
            key.push(Value::int(n));
            Tuple::new(key)
        }),
    )
    .expect("group_count arity is k+1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::tuple;

    fn r(rows: &[&[i64]]) -> Relation {
        Relation::from_int_rows(rows)
    }

    #[test]
    fn project_reorders_and_dedups() {
        let a = r(&[&[1, 2], &[3, 2]]);
        assert_eq!(project(&a, &[2]), r(&[&[2]])); // dedup: both rows map to (2)
        assert_eq!(project(&a, &[2, 1]), r(&[&[2, 1], &[2, 3]]));
        assert_eq!(project(&a, &[1, 1]), r(&[&[1, 1], &[3, 3]]));
    }

    #[test]
    fn select_forms() {
        let a = r(&[&[1, 1], &[1, 2], &[2, 1]]);
        assert_eq!(select(&a, &Selection::Eq(1, 2)), r(&[&[1, 1]]));
        assert_eq!(select(&a, &Selection::Lt(1, 2)), r(&[&[1, 2]]));
        assert_eq!(
            select(&a, &Selection::EqConst(1, Value::int(2))),
            r(&[&[2, 1]])
        );
    }

    #[test]
    fn const_tag_appends() {
        let a = r(&[&[1], &[2]]);
        assert_eq!(const_tag(&a, &Value::int(9)), r(&[&[1, 9], &[2, 9]]));
    }

    #[test]
    fn equi_join_matches_definition() {
        let a = r(&[&[1, 10], &[2, 20]]);
        let b = r(&[&[10, 100], &[10, 101], &[30, 300]]);
        let j = join(&a, &b, &Condition::eq(2, 1));
        assert_eq!(j, r(&[&[1, 10, 10, 100], &[1, 10, 10, 101]]));
    }

    #[test]
    fn cartesian_product_via_empty_condition() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[8], &[9]]);
        let j = join(&a, &b, &Condition::always());
        assert_eq!(j.len(), 4);
        assert_eq!(j.arity(), 2);
    }

    #[test]
    fn theta_join_with_inequalities() {
        let a = r(&[&[1], &[5]]);
        let b = r(&[&[3]]);
        assert_eq!(join(&a, &b, &Condition::lt(1, 1)), r(&[&[1, 3]]));
        assert_eq!(join(&a, &b, &Condition::gt(1, 1)), r(&[&[5, 3]]));
        assert_eq!(join(&a, &b, &Condition::neq(1, 1)), r(&[&[1, 3], &[5, 3]]));
    }

    #[test]
    fn mixed_condition_join_uses_residual_filter() {
        // equal on col1, strictly increasing on col2
        let a = r(&[&[1, 1], &[1, 5], &[2, 1]]);
        let b = r(&[&[1, 3], &[2, 0]]);
        let theta = Condition::eq(1, 1).and(2, CompOp::Lt, 2);
        assert_eq!(join(&a, &b, &theta), r(&[&[1, 1, 1, 3]]));
    }

    #[test]
    fn semijoin_matches_definition() {
        let a = r(&[&[1, 10], &[2, 20], &[3, 10]]);
        let b = r(&[&[10, 0], &[10, 1]]);
        // duplicates on the right do not duplicate output (set semantics)
        let s = semijoin(&a, &b, &Condition::eq(2, 1));
        assert_eq!(s, r(&[&[1, 10], &[3, 10]]));
    }

    #[test]
    fn semijoin_equals_join_project() {
        let a = r(&[&[1, 10], &[2, 20], &[3, 10]]);
        let b = r(&[&[10, 0], &[20, 9], &[40, 2]]);
        for theta in [
            Condition::eq(2, 1),
            Condition::lt(1, 2),
            Condition::eq(2, 1).and(1, CompOp::Lt, 2),
            Condition::neq(1, 1),
            Condition::always(),
        ] {
            let via_join = project(&join(&a, &b, &theta), &[1, 2]);
            let direct = semijoin(&a, &b, &theta);
            assert_eq!(direct, via_join, "theta = {theta}");
        }
    }

    #[test]
    fn unconditional_semijoin_is_emptiness_test() {
        let a = r(&[&[1], &[2]]);
        assert_eq!(
            semijoin(&a, &Relation::empty(3), &Condition::always()),
            Relation::empty(1)
        );
        assert_eq!(semijoin(&a, &r(&[&[9]]), &Condition::always()), a);
    }

    #[test]
    fn group_count_basic() {
        let a = r(&[&[1, 10], &[1, 20], &[2, 30]]);
        let g = group_count(&a, &[1]);
        assert_eq!(g, r(&[&[1, 2], &[2, 1]]));
    }

    #[test]
    fn group_count_global() {
        let a = r(&[&[1, 10], &[1, 20], &[2, 30]]);
        assert_eq!(group_count(&a, &[]), r(&[&[3]]));
        assert_eq!(group_count(&Relation::empty(2), &[]), r(&[&[0]]));
    }

    #[test]
    fn group_count_empty_input_with_groups() {
        assert_eq!(group_count(&Relation::empty(2), &[1]), Relation::empty(2));
    }

    #[test]
    fn merge_prefix_detection() {
        assert_eq!(merge_prefix_len(&Condition::eq(1, 1)), Some(1));
        assert_eq!(
            merge_prefix_len(&Condition::eq_pairs([(1, 1), (2, 2)])),
            Some(2)
        );
        // Order and duplicates of atoms don't matter.
        assert_eq!(
            merge_prefix_len(&Condition::eq_pairs([(2, 2), (1, 1), (1, 1)])),
            Some(2)
        );
        // A residual inequality atom doesn't block the equality prefix.
        assert_eq!(
            merge_prefix_len(&Condition::eq(1, 1).and(2, CompOp::Lt, 2)),
            Some(1)
        );
        // Not an aligned prefix:
        assert_eq!(merge_prefix_len(&Condition::eq(2, 1)), None);
        assert_eq!(
            merge_prefix_len(&Condition::eq_pairs([(1, 2), (2, 1)])),
            None
        );
        assert_eq!(merge_prefix_len(&Condition::eq_pairs([(2, 2)])), None);
        // A gap breaks the prefix: {1=1, 3=3} misses 2=2.
        assert_eq!(
            merge_prefix_len(&Condition::eq_pairs([(1, 1), (3, 3)])),
            None
        );
        assert_eq!(merge_prefix_len(&Condition::always()), None);
        assert_eq!(merge_prefix_len(&Condition::lt(1, 1)), None);
        // An extra equality atom off the diagonal poisons the whole set.
        assert_eq!(
            merge_prefix_len(&Condition::eq_pairs([(1, 1), (2, 1)])),
            None
        );
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let a = r(&[&[1, 10], &[1, 20], &[2, 5], &[3, 1], &[3, 2]]);
        let b = r(&[&[1, 100], &[1, 200], &[3, 7], &[4, 9]]);
        for theta in [
            Condition::eq(1, 1),
            Condition::eq(1, 1).and(2, CompOp::Lt, 2),
            Condition::eq(1, 1).and(2, CompOp::Neq, 2),
        ] {
            let k = merge_prefix_len(&theta).unwrap();
            let (_, residual) = split_condition(&theta);
            assert_eq!(
                merge_join(&a, &b, k, &residual),
                join(&a, &b, &theta),
                "theta = {theta}"
            );
        }
        // Composite prefix key.
        let c = r(&[&[1, 10, 0], &[1, 10, 1], &[2, 5, 2]]);
        let d = r(&[&[1, 10, 7], &[2, 6, 8]]);
        let theta = Condition::eq_pairs([(1, 1), (2, 2)]);
        assert_eq!(
            merge_join(&c, &d, 2, &Condition::always()),
            join(&c, &d, &theta)
        );
        // Empty operands.
        assert_eq!(
            merge_join(&Relation::empty(2), &b, 1, &Condition::always()),
            Relation::empty(4)
        );
    }

    #[test]
    fn merge_semijoin_matches_hash_semijoin() {
        let a = r(&[&[1, 10], &[1, 20], &[2, 5], &[3, 1]]);
        let b = r(&[&[1, 15], &[3, 0], &[4, 9]]);
        for theta in [
            Condition::eq(1, 1),
            Condition::eq(1, 1).and(2, CompOp::Lt, 2),
            Condition::eq(1, 1).and(2, CompOp::Gt, 2),
        ] {
            let k = merge_prefix_len(&theta).unwrap();
            let (_, residual) = split_condition(&theta);
            assert_eq!(
                merge_semijoin(&a, &b, k, &residual),
                semijoin(&a, &b, &theta),
                "theta = {theta}"
            );
        }
        assert_eq!(
            merge_semijoin(&a, &Relation::empty(2), 1, &Condition::always()),
            Relation::empty(2)
        );
    }

    #[test]
    fn par_join_and_semijoin_match_serial_at_every_worker_count() {
        // 300 left / 200 right tuples over 23 keys: every partition of
        // every tested worker count is populated.
        let lrows: Vec<Vec<i64>> = (0..300).map(|i| vec![i % 23, i]).collect();
        let lrefs: Vec<&[i64]> = lrows.iter().map(|r| r.as_slice()).collect();
        let a = r(&lrefs);
        let rrows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 23, i % 17]).collect();
        let rrefs: Vec<&[i64]> = rrows.iter().map(|r| r.as_slice()).collect();
        let b = r(&rrefs);
        for theta in [
            Condition::eq(1, 1),                       // merge-able prefix
            Condition::eq(2, 1),                       // hash
            Condition::eq(1, 1).and(2, CompOp::Lt, 2), // hash + residual
            Condition::lt(1, 1),                       // nested loop
            Condition::always(),                       // cartesian
        ] {
            let want_join = join(&a, &b, &theta);
            let want_semi = semijoin(&a, &b, &theta);
            for workers in [1usize, 2, 4, 8] {
                assert_eq!(
                    par_join(&a, &b, &theta, workers),
                    want_join,
                    "join {theta} @ {workers}"
                );
                assert_eq!(
                    par_semijoin(&a, &b, &theta, workers),
                    want_semi,
                    "semijoin {theta} @ {workers}"
                );
            }
        }
    }

    #[test]
    fn par_merge_variants_match_serial() {
        let lrows: Vec<Vec<i64>> = (0..240).map(|i| vec![i % 19, i]).collect();
        let lrefs: Vec<&[i64]> = lrows.iter().map(|r| r.as_slice()).collect();
        let a = r(&lrefs);
        let rrows: Vec<Vec<i64>> = (0..160).map(|i| vec![i % 19, i % 13]).collect();
        let rrefs: Vec<&[i64]> = rrows.iter().map(|r| r.as_slice()).collect();
        let b = r(&rrefs);
        let theta = Condition::eq(1, 1).and(2, CompOp::Neq, 2);
        let k = merge_prefix_len(&theta).unwrap();
        let (_, residual) = split_condition(&theta);
        let want_join = merge_join(&a, &b, k, &residual);
        let want_semi = merge_semijoin(&a, &b, k, &residual);
        for workers in [1usize, 3, 4] {
            let (j, jstats) = par_merge_join_stats(&a, &b, k, &residual, workers);
            assert_eq!(j, want_join, "merge-join @ {workers}");
            assert_eq!(jstats.len(), workers);
            let (s, _) = par_merge_semijoin_stats(&a, &b, k, &residual, workers);
            assert_eq!(s, want_semi, "merge-semijoin @ {workers}");
        }
    }

    #[test]
    fn par_stats_account_for_every_tuple() {
        let lrows: Vec<Vec<i64>> = (0..100).map(|i| vec![i % 11, i]).collect();
        let lrefs: Vec<&[i64]> = lrows.iter().map(|r| r.as_slice()).collect();
        let a = r(&lrefs);
        let b = r(&[&[1, 5], &[2, 9], &[3, 1]]);
        let (out, stats) = par_join_stats(&a, &b, &Condition::eq(1, 1), 4);
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.left_rows).sum::<usize>(), a.len());
        assert_eq!(stats.iter().map(|s| s.right_rows).sum::<usize>(), b.len());
        assert_eq!(stats.iter().map(|s| s.out_rows).sum::<usize>(), out.len());
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.partition, i);
        }
        // The no-equality path chunks the left side and replicates the
        // right side into every chunk.
        let (_, nl_stats) = par_join_stats(&a, &b, &Condition::always(), 4);
        assert!(nl_stats.iter().all(|s| s.right_rows == b.len()));
        assert_eq!(nl_stats.iter().map(|s| s.left_rows).sum::<usize>(), a.len());
    }

    #[test]
    fn par_operators_on_empty_inputs() {
        let e2 = Relation::empty(2);
        let b = r(&[&[1, 5]]);
        for workers in [1usize, 4] {
            assert_eq!(
                par_join(&e2, &b, &Condition::eq(1, 1), workers),
                Relation::empty(4)
            );
            assert_eq!(
                par_semijoin(&e2, &b, &Condition::always(), workers),
                Relation::empty(2)
            );
            assert_eq!(
                par_join(&b, &e2, &Condition::eq(1, 1), workers),
                Relation::empty(4)
            );
        }
    }

    #[test]
    fn join_with_strings() {
        let visits = Relation::from_str_rows(&[&["alex", "pareto bar"]]);
        let serves = Relation::from_str_rows(&[&["pareto bar", "westmalle"]]);
        let j = join(&visits, &serves, &Condition::eq(2, 1));
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.tuples()[0],
            tuple!["alex", "pareto bar", "pareto bar", "westmalle"]
        );
    }
}
