//! Minimal, offline, API-compatible stand-in for the `proptest` crate.
//!
//! Implements exactly the surface used by this workspace (see
//! `vendor/README.md`): the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range / tuple / string-pattern
//! strategies, [`collection::vec`], [`sample::select`], [`arbitrary::any`],
//! and the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!` macros.
//!
//! Generation is a deterministic SplitMix64 stream seeded from the test
//! name, so every run is bit-reproducible. There is no shrinking.

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[lo, hi]` over i128 arithmetic to avoid overflow.
        pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }

    /// Configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test-case body did not complete normally: a rejected
    /// assumption (skip the case) or an explicit failure.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Reject(String),
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(move |rng| self.generate(rng))
        }

        /// Build recursive values: `depth` levels of `expand` above the
        /// leaf strategy. The `_desired_size` / `_expected_branch_size`
        /// hints of real proptest are accepted and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let expanded = expand(current).boxed();
                let l = leaf.clone();
                current = BoxedStrategy::new(move |rng| {
                    // Mix leaves back in at every level so generated
                    // structures vary in size, not only in depth.
                    if rng.below(4) == 0 {
                        l.generate(rng)
                    } else {
                        expanded.generate(rng)
                    }
                });
            }
            current
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// String literals act as simple `"[class]{m,n}"` pattern strategies,
    /// the only regex shape this workspace uses. A literal without that
    /// shape yields itself verbatim.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = rng.in_range_i128(lo as i128, hi as i128) as usize;
                    (0..len).map(|_| chars[rng.below(chars.len())]).collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `"[a-z ]{0,8}"`-style patterns into (alphabet, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }
}

pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        BoxedStrategy::new(T::arbitrary)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range_i128(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// `proptest::sample::select(vec![..])` — uniform choice.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Hard assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Hard equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_eq!($l, $r, $($fmt)*) };
}

/// Skip the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// The test-harness macro: each contained `fn name(arg in strategy, ..)`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __accepted = 0u32;
                let mut __attempts = 0u32;
                while __accepted < __cfg.cases && __attempts < __cfg.cases.saturating_mul(20) {
                    __attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__reason),
                        ) => panic!("proptest case failed: {}", __reason),
                    }
                }
                assert!(
                    __accepted > 0,
                    "proptest stub: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
}
