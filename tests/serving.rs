//! End-to-end serving suite over the umbrella crate: the [`Server`]
//! must be a transparent layer — every answer it returns, at every
//! worker count and cache mode, is byte-identical to a direct
//! [`Engine`] run over the same database state.
//!
//! Worker counts default to `{1, 2, 4, 8}`; `SETJOINS_TEST_THREADS`
//! (comma list or single number) narrows them, as in `parallel.rs`.

use setjoins::prelude::*;
use setjoins::server::{CacheMode, Provenance, Server, ServerConfig, WriteOp};
use sj_workload::{ServingWorkload, TraceOp};

fn thread_counts() -> Vec<usize> {
    match std::env::var("SETJOINS_TEST_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            assert!(
                !counts.is_empty(),
                "SETJOINS_TEST_THREADS={s:?} has no usable counts"
            );
            counts
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn workload() -> ServingWorkload {
    ServingWorkload {
        groups: 40,
        divisor_size: 6,
        hot_queries: 10,
        ops: 80,
        seed: 0x5EAF00D,
        ..ServingWorkload::default()
    }
}

/// The mixed read/write/ANALYZE trace, replayed at every worker count:
/// each query answer equals a direct engine over a locally-maintained
/// copy of the evolving database, and the final databases agree.
#[test]
fn served_answers_equal_direct_engine_at_every_worker_count() {
    let w = workload();
    let trace = w.trace();
    for &workers in &thread_counts() {
        let server = Server::start(
            w.database(),
            ServerConfig {
                workers,
                cores: workers,
                ..ServerConfig::default()
            },
        );
        let session = server.session();
        let mut local = w.database();
        for (i, op) in trace.iter().cloned().enumerate() {
            match op {
                TraceOp::Query(e) => {
                    let served = session.query(e.clone()).expect("served query");
                    let direct = Engine::new(local.clone())
                        .query(e.clone())
                        .run()
                        .expect("direct query");
                    assert_eq!(
                        *served.relation, direct.relation,
                        "op {i} @{workers} workers: server ≠ direct for {e}"
                    );
                }
                TraceOp::Insert { relation, tuple } => {
                    local
                        .insert(&relation, tuple.clone())
                        .expect("local insert");
                    session
                        .write(WriteOp::Insert { relation, tuple })
                        .expect("served insert");
                }
                TraceOp::Analyze => {
                    session.write(WriteOp::Analyze).expect("served analyze");
                }
            }
        }
        let stats = server.stats();
        assert!(
            stats.result_hits > 0,
            "@{workers} workers: zipf trace should hit the result cache: {stats:?}"
        );
        assert_eq!(server.shutdown(), local, "@{workers} workers: final states");
    }
}

/// Serving smoke: the default server config over a paper figure — cold,
/// plan-cached and result-cached runs of the Fig. 1 division query all
/// agree with the engine, and provenance progresses through the tiers.
#[test]
fn serving_smoke_on_fig1() {
    let db = setjoins::workload::figures::fig1();
    let e = setjoins::algebra::division::division_double_difference("Person", "Symptoms");
    let expected = Engine::new(db.clone())
        .query(e.clone())
        .run()
        .expect("reference")
        .relation;

    let server = setjoins::server::serve(db);
    let session = server.session();
    let cold = session.query(e.clone()).expect("cold");
    assert_eq!(*cold.relation, expected);
    assert_eq!(cold.provenance, Provenance::Cold);
    let hot = session.query(e.clone()).expect("hot");
    assert_eq!(*hot.relation, expected);
    assert_eq!(hot.provenance, Provenance::ResultCache);

    // Cache off: same answers, always cold.
    let server = Server::start(
        setjoins::workload::figures::fig1(),
        ServerConfig {
            cache: CacheMode::Off,
            ..ServerConfig::default()
        },
    );
    let session = server.session();
    for _ in 0..2 {
        let resp = session.query(e.clone()).expect("uncached");
        assert_eq!(*resp.relation, expected);
        assert_eq!(resp.provenance, Provenance::Cold);
    }
}
