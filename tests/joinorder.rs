//! Differential suite for the join-order enumerator and the multiway
//! join: every [`JoinOrder`] mode must be byte-identical to the
//! as-written order across `Execution::{RowAtATime, Vectorized}` ×
//! `Threads{1, 4}` — reordering and the worst-case-optimal operator are
//! pure plan-level decisions, invisible in the answer. The fixed cases
//! cover the shapes the enumerator finds degenerate (single relations,
//! self-joins, empty inputs, stars, collapsing chains, expressions
//! *around* the join chain) plus the skewed triangle where the AGM
//! trigger actually fires; the property test runs the same matrix over
//! random small relations.
//!
//! `SETJOINS_TEST_THREADS` narrows the worker counts exactly as in
//! `tests/parallel.rs`.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use setjoins::prelude::*;
use setjoins::{eval::Execution, JoinOrder};
use sj_workload::{CyclicWorkload, EdgeDist};

const MODES: [JoinOrder; 3] = [JoinOrder::AsWritten, JoinOrder::Greedy, JoinOrder::Dp];

/// Worker counts under test.
fn worker_counts() -> Vec<usize> {
    match std::env::var("SETJOINS_TEST_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            assert!(
                !counts.is_empty(),
                "SETJOINS_TEST_THREADS={s:?} has no usable counts"
            );
            counts
        }
        Err(_) => vec![1, 4],
    }
}

/// Run `e` under every (mode × stats × execution × workers) cell and
/// assert each answer byte-identical to the as-written baseline.
fn differential(name: &str, db: &Database, e: &Expr) {
    let baseline = Engine::new(db.clone())
        .stats(StatsMode::Analyze)
        .join_order(JoinOrder::AsWritten)
        .query(e.clone())
        .run()
        .unwrap()
        .relation;
    for mode in MODES {
        for stats in [StatsMode::Off, StatsMode::Analyze] {
            for exec in [Execution::RowAtATime, Execution::Vectorized] {
                for &workers in &worker_counts() {
                    let out = Engine::new(db.clone())
                        .stats(stats)
                        .join_order(mode)
                        .execution(exec)
                        .parallelism(Parallelism::Threads(workers))
                        .query(e.clone())
                        .run()
                        .unwrap();
                    assert_eq!(
                        out.relation, baseline,
                        "{name}: {mode} × {stats} × {exec:?} × {workers}w diverged"
                    );
                }
            }
        }
    }
}

fn pairs(rows: impl IntoIterator<Item = [i64; 2]>) -> Relation {
    Relation::from_tuples(2, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
}

fn chain_db() -> Database {
    let mut db = Database::new();
    db.set("R", pairs((0..600).map(|i| [i % 50, i])));
    db.set("S", pairs((0..12).map(|i| [i, i % 3])));
    db.set("T", pairs((0..3).map(|i| [i, i])));
    db
}

// ---------------------------------------------------------------------------
// Degenerate shapes the enumerator must leave intact
// ---------------------------------------------------------------------------

#[test]
fn single_relations_and_non_joins_are_untouched() {
    let db = chain_db();
    for (name, e) in [
        ("scan", Expr::rel("R")),
        ("select", Expr::rel("R").select_lt(1, 2)),
        ("project", Expr::rel("R").project([2, 1])),
        ("union", Expr::rel("S").union(Expr::rel("T"))),
        ("diff", Expr::rel("S").diff(Expr::rel("T"))),
        (
            "semijoin",
            Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")),
        ),
    ] {
        differential(name, &db, &e);
    }
}

#[test]
fn two_relation_joins_and_self_joins_agree() {
    let db = chain_db();
    for (name, e) in [
        (
            "binary join",
            Expr::rel("R").join(Condition::eq(1, 2), Expr::rel("S")),
        ),
        (
            "self join",
            Expr::rel("S").join(Condition::eq(2, 1), Expr::rel("S")),
        ),
        (
            "triangle self join",
            Expr::rel("S")
                .join(Condition::eq(2, 1), Expr::rel("S"))
                .join(Condition::eq_pairs([(4, 1), (1, 2)]), Expr::rel("S")),
        ),
        (
            "theta-only join",
            Expr::rel("S").join(Condition::lt(1, 1), Expr::rel("T")),
        ),
    ] {
        differential(name, &db, &e);
    }
}

#[test]
fn empty_inputs_stay_empty_in_every_mode() {
    let mut db = chain_db();
    db.set("R", Relation::empty(2));
    let chain = Expr::rel("R")
        .join(Condition::eq(1, 2), Expr::rel("S"))
        .join(Condition::eq(3, 1), Expr::rel("T"));
    differential("empty-leftmost", &db, &chain);
    let mut db2 = chain_db();
    db2.set("T", Relation::empty(2));
    differential("empty-rightmost", &db2, &chain);
}

#[test]
fn chains_stars_and_wrapped_joins_agree() {
    let db = chain_db();
    let chain = Expr::rel("R")
        .join(Condition::eq(1, 2), Expr::rel("S"))
        .join(Condition::eq(3, 1), Expr::rel("T"));
    // A star: every arm joins the hub's first column — acyclic, so the
    // multiway trigger must never fire on it.
    let star = Expr::rel("R")
        .join(Condition::eq(1, 1), Expr::rel("S"))
        .join(Condition::eq(1, 1), Expr::rel("T"));
    // Expressions around and inside the chain: the reorderer recurses
    // through non-join nodes and restores the written column order.
    let wrapped = chain.clone().project([5, 1, 3]).select_lt(2, 1);
    let inner = Expr::rel("R")
        .select_lt(1, 2)
        .join(Condition::eq(1, 2), Expr::rel("S").project([2, 1]))
        .join(Condition::eq(3, 2), Expr::rel("T"));
    for (name, e) in [
        ("badly written chain", chain),
        ("star", star),
        ("wrapped chain", wrapped),
        ("chain of transformed leaves", inner),
    ] {
        differential(name, &db, &e);
    }
}

#[test]
fn skewed_triangles_agree_where_the_multiway_operator_fires() {
    let w = CyclicWorkload {
        cycle_len: 3,
        edges_per_table: 600,
        vertices: 128,
        edges: EdgeDist::Zipf(1.3),
        seed: 0x7A1,
    };
    let db = w.database();
    let q = w.query();
    // The suite's premise: this workload actually routes Dp through the
    // multiway operator (skew pushes every pairwise estimate past the
    // AGM bound) — otherwise the differential below tests nothing new.
    let explained = Engine::new(db.clone())
        .stats(StatsMode::Analyze)
        .join_order(JoinOrder::Dp)
        .query(q.clone())
        .explain()
        .unwrap();
    assert!(
        explained.contains("multiway-join"),
        "AGM trigger stayed cold on the skewed triangle:\n{explained}"
    );
    differential("skewed triangle", &db, &q);

    let four = CyclicWorkload {
        cycle_len: 4,
        edges_per_table: 300,
        vertices: 64,
        edges: EdgeDist::Zipf(1.2),
        seed: 0x7A2,
    };
    differential("skewed 4-cycle", &four.database(), &four.query());
}

// ---------------------------------------------------------------------------
// Property test: random relations through the whole knob matrix
// ---------------------------------------------------------------------------

fn arb_relation(arity: usize) -> impl PropStrategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0i64..6, arity), 0..14).prop_map(
        move |rows| {
            Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random ternary chains and triangle closures: every mode at every
    /// execution and worker count equals the as-written answer.
    #[test]
    fn modes_agree_on_random_databases(
        r in arb_relation(2),
        s in arb_relation(2),
        t in arb_relation(2),
        qi in 0usize..3,
    ) {
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        db.set("T", t);
        let chain = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq(4, 1), Expr::rel("T"));
        let cycle = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .join(Condition::eq_pairs([(4, 1), (1, 2)]), Expr::rel("T"));
        let star = Expr::rel("R")
            .join(Condition::eq(1, 1), Expr::rel("S"))
            .join(Condition::eq(1, 1), Expr::rel("T"));
        let e = [chain, cycle, star][qi].clone();
        let baseline = Engine::new(db.clone())
            .stats(StatsMode::Analyze)
            .join_order(JoinOrder::AsWritten)
            .query(e.clone())
            .run()
            .unwrap()
            .relation;
        for mode in MODES {
            for exec in [Execution::RowAtATime, Execution::Vectorized] {
                for &workers in &worker_counts() {
                    let out = Engine::new(db.clone())
                        .stats(StatsMode::Analyze)
                        .join_order(mode)
                        .execution(exec)
                        .parallelism(Parallelism::Threads(workers))
                        .query(e.clone())
                        .run()
                        .unwrap();
                    prop_assert_eq!(
                        &out.relation, &baseline,
                        "{} × {:?} × {}w diverged on query {}", mode, exec, workers, qi
                    );
                }
            }
        }
    }
}
