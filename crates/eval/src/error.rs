//! Evaluation errors.

use sj_algebra::AlgebraError;
use sj_storage::StorageError;
use std::fmt;

/// Errors produced during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The expression failed validation (unknown relation, arity error, …).
    Algebra(AlgebraError),
    /// A storage operation failed.
    Storage(StorageError),
    /// The engine was asked for a set-join/division algorithm the
    /// registry does not know.
    UnknownAlgorithm(String),
    /// The selected algorithm does not implement the requested predicate.
    UnsupportedPredicate {
        /// Name of the algorithm that was asked.
        algorithm: String,
        /// Debug rendering of the predicate it rejected.
        predicate: String,
    },
    /// A division/set-join operand has the wrong shape (division needs a
    /// binary dividend and a unary divisor; set joins need two binary
    /// operands).
    InvalidSetOperand {
        /// Relation name as passed to the engine.
        relation: String,
        /// Its stored arity.
        arity: usize,
        /// The arity the operator requires.
        expected: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Algebra(e) => write!(f, "algebra error: {e}"),
            EvalError::Storage(e) => write!(f, "storage error: {e}"),
            EvalError::UnknownAlgorithm(name) => {
                write!(
                    f,
                    "no registered set-join/division algorithm named {name:?}"
                )
            }
            EvalError::UnsupportedPredicate {
                algorithm,
                predicate,
            } => write!(f, "algorithm {algorithm:?} does not support {predicate}"),
            EvalError::InvalidSetOperand {
                relation,
                arity,
                expected,
            } => write!(
                f,
                "relation {relation:?} has arity {arity}, the set operator needs {expected}"
            ),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Algebra(e) => Some(e),
            EvalError::Storage(e) => Some(e),
            EvalError::UnknownAlgorithm(_)
            | EvalError::UnsupportedPredicate { .. }
            | EvalError::InvalidSetOperand { .. } => None,
        }
    }
}

impl From<AlgebraError> for EvalError {
    fn from(e: AlgebraError) -> Self {
        EvalError::Algebra(e)
    }
}

impl From<StorageError> for EvalError {
    fn from(e: StorageError) -> Self {
        EvalError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EvalError::Algebra(AlgebraError::UnknownRelation("R".into()));
        assert!(e.to_string().contains("unknown relation"));
        assert!(e.source().is_some());
        let s = EvalError::Storage(StorageError::UnknownRelation("R".into()));
        assert!(s.to_string().contains("storage error"));
        assert!(s.source().is_some());
    }
}
