//! Database schemas: finite maps from relation names to arities.

use crate::error::StorageError;
use std::collections::BTreeMap;
use std::fmt;

/// A database schema `S`: a finite set of relation names, each with an
/// associated arity (Section 2 of the paper).
///
/// ```
/// use sj_storage::Schema;
/// // Ullman's beer-drinkers schema from Example 3.
/// let s = Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)]);
/// assert_eq!(s.arity_of("Serves"), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    arities: BTreeMap<String, usize>,
}

impl Schema {
    /// Build a schema from `(name, arity)` pairs. Later duplicates of a name
    /// override earlier ones.
    pub fn new<N: Into<String>>(relations: impl IntoIterator<Item = (N, usize)>) -> Self {
        Schema {
            arities: relations.into_iter().map(|(n, a)| (n.into(), a)).collect(),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Add or replace a relation name.
    pub fn add(&mut self, name: impl Into<String>, arity: usize) {
        self.arities.insert(name.into(), arity);
    }

    /// Arity of `name`, or `None` if the name is not in the schema.
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Arity of `name`, as an error-producing lookup.
    pub fn require(&self, name: &str) -> crate::Result<usize> {
        self.arity_of(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// True iff the schema contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.arities.contains_key(name)
    }

    /// Number of relation names.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// True iff there are no relation names.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterate `(name, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.arities.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// The names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.arities.keys().map(|n| n.as_str())
    }

    /// The maximum arity over all relations (0 for the empty schema).
    pub fn max_arity(&self) -> usize {
        self.arities.values().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, a)) in self.arities.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}/{a}")?;
        }
        write!(f, "}}")
    }
}

impl<N: Into<String>> FromIterator<(N, usize)> for Schema {
    fn from_iter<I: IntoIterator<Item = (N, usize)>>(iter: I) -> Self {
        Schema::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new([("R", 3), ("S", 3), ("T", 2)]);
        assert_eq!(s.arity_of("R"), Some(3));
        assert_eq!(s.arity_of("T"), Some(2));
        assert_eq!(s.arity_of("X"), None);
        assert!(s.contains("S"));
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_arity(), 3);
    }

    #[test]
    fn require_errors_on_missing() {
        let s = Schema::new([("R", 1)]);
        assert!(s.require("R").is_ok());
        assert!(matches!(
            s.require("Q"),
            Err(StorageError::UnknownRelation(n)) if n == "Q"
        ));
    }

    #[test]
    fn iteration_is_name_sorted() {
        let s = Schema::new([("Z", 1), ("A", 2)]);
        let names: Vec<_> = s.names().collect();
        assert_eq!(names, vec!["A", "Z"]);
    }

    #[test]
    fn display() {
        let s = Schema::new([("R", 3), ("T", 2)]);
        assert_eq!(s.to_string(), "{R/3, T/2}");
        assert_eq!(Schema::empty().to_string(), "{}");
    }

    #[test]
    fn add_overrides() {
        let mut s = Schema::empty();
        s.add("R", 1);
        s.add("R", 4);
        assert_eq!(s.arity_of("R"), Some(4));
    }
}
