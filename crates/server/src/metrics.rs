//! Aggregate serving metrics: a thin facade over the shared
//! [`sj_obs::Metrics`] registry, keeping the original counter API
//! (`bump_*` / [`ServerStats::snapshot`]) while every series also shows
//! up in the Prometheus-style [`crate::Server::metrics_text`]
//! exposition.
//!
//! Besides the cache hit counters, the server folds each cold query's
//! [`PlannedReport::max_q_error`] into
//! [`ServerStats::max_q_error_seen`](StatsSnapshot::max_q_error_seen) —
//! the worst cardinality-estimation error any served query has
//! exhibited. This surfaces cost-model drift *in serving*, not just in
//! per-query `render()` output: a dashboard reading the stats snapshot
//! (or scraping the exposition) sees estimator trouble the moment a hot
//! workload starts hitting it.
//!
//! [`PlannedReport::max_q_error`]: sj_eval::PlannedReport::max_q_error

use sj_obs::{Counter, MaxGauge, Metrics};
use std::fmt;
use std::sync::Arc;

/// Aggregate counters for one [`crate::Server`]. All methods are
/// thread-safe; counters only ever increase. Each counter is a handle
/// into the server's [`Metrics`] registry, so the same numbers appear
/// in [`crate::Server::metrics_text`] under the `sj_server_*` series.
pub struct ServerStats {
    registry: Arc<Metrics>,
    queries: Arc<Counter>,
    plan_hits: Arc<Counter>,
    result_hits: Arc<Counter>,
    writes: Arc<Counter>,
    analyzes: Arc<Counter>,
    rejected: Arc<Counter>,
    /// The largest q-error seen. [`MaxGauge`] guards against NaN /
    /// non-positive junk: one poisoned observation would otherwise
    /// stick as the maximum forever (NaN's bit pattern compares
    /// greater than every finite value's).
    max_q_error: Arc<MaxGauge>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new(Arc::new(Metrics::new()))
    }
}

impl ServerStats {
    /// Register the serving series in `registry` and return the facade.
    pub fn new(registry: Arc<Metrics>) -> ServerStats {
        ServerStats {
            queries: registry.counter("sj_server_queries_total"),
            plan_hits: registry.counter_with("sj_server_cache_hits_total", &[("tier", "plan")]),
            result_hits: registry.counter_with("sj_server_cache_hits_total", &[("tier", "result")]),
            writes: registry.counter("sj_server_writes_total"),
            analyzes: registry.counter("sj_server_analyzes_total"),
            rejected: registry.counter("sj_server_rejected_total"),
            max_q_error: registry.max_gauge("sj_server_max_q_error"),
            registry,
        }
    }

    /// The registry the facade's series live in.
    pub fn registry(&self) -> &Arc<Metrics> {
        &self.registry
    }

    pub(crate) fn bump_queries(&self) {
        self.queries.inc();
    }

    pub(crate) fn bump_plan_hits(&self) {
        self.plan_hits.inc();
    }

    pub(crate) fn bump_result_hits(&self) {
        self.result_hits.inc();
    }

    pub(crate) fn bump_writes(&self) {
        self.writes.inc();
    }

    pub(crate) fn bump_analyzes(&self) {
        self.analyzes.inc();
    }

    pub(crate) fn bump_rejected(&self) {
        self.rejected.inc();
    }

    /// Fold one query's worst per-node q-error into the running
    /// maximum. [`MaxGauge::observe`] drops NaN, infinities, and
    /// non-positive values, so junk can never poison the maximum.
    pub(crate) fn record_q_error(&self, q_error: f64) {
        self.max_q_error.observe(q_error);
    }

    /// A consistent-enough point-in-time copy of all counters (each
    /// counter is read atomically; the set is not fenced — fine for
    /// monitoring).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.get(),
            plan_hits: self.plan_hits.get(),
            result_hits: self.result_hits.get(),
            writes: self.writes.get(),
            analyzes: self.analyzes.get(),
            rejected: self.rejected.get(),
            max_q_error_seen: self.max_q_error.get(),
        }
    }
}

impl fmt::Debug for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// A point-in-time copy of a server's [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Queries served (every tier: cold, plan-cached, result-cached).
    pub queries: u64,
    /// Queries that skipped optimize+plan via the plan cache.
    pub plan_hits: u64,
    /// Queries that skipped execution entirely via the result cache.
    pub result_hits: u64,
    /// Write operations applied ([`crate::WriteOp::Insert`] /
    /// [`crate::WriteOp::Set`] / [`crate::WriteOp::Remove`]).
    pub writes: u64,
    /// ANALYZE operations applied.
    pub analyzes: u64,
    /// Submissions rejected by [`crate::Session::try_query`] because the
    /// bounded queue was full.
    pub rejected: u64,
    /// The worst [`sj_eval::PlannedReport::max_q_error`] across all cold
    /// queries, when instrumentation and statistics are on — cost-model
    /// drift made visible in serving.
    pub max_q_error_seen: Option<f64>,
}

impl StatsSnapshot {
    /// Queries that actually executed (everything but result-cache
    /// hits).
    pub fn executed(&self) -> u64 {
        self.queries - self.result_hits
    }

    /// Cold queries: planned from scratch and executed.
    pub fn cold(&self) -> u64 {
        self.queries - self.result_hits - self.plan_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = ServerStats::default();
        s.bump_queries();
        s.bump_queries();
        s.bump_queries();
        s.bump_plan_hits();
        s.bump_result_hits();
        s.bump_writes();
        s.bump_analyzes();
        s.bump_rejected();
        let snap = s.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.plan_hits, 1);
        assert_eq!(snap.result_hits, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.analyzes, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.executed(), 2);
        assert_eq!(snap.cold(), 1);
    }

    #[test]
    fn q_error_keeps_the_maximum() {
        let s = ServerStats::default();
        assert_eq!(s.snapshot().max_q_error_seen, None);
        s.record_q_error(2.5);
        s.record_q_error(17.0);
        s.record_q_error(1.0);
        assert_eq!(s.snapshot().max_q_error_seen, Some(17.0));
        // Junk values are ignored — the NaN-poisoning regression.
        s.record_q_error(f64::NAN);
        s.record_q_error(f64::INFINITY);
        s.record_q_error(-3.0);
        assert_eq!(s.snapshot().max_q_error_seen, Some(17.0));
    }

    #[test]
    fn facade_series_appear_in_the_exposition() {
        let s = ServerStats::default();
        s.bump_queries();
        s.bump_plan_hits();
        s.record_q_error(4.5);
        let text = s.registry().expose();
        assert!(text.contains("sj_server_queries_total 1"), "{text}");
        assert!(
            text.contains("sj_server_cache_hits_total{tier=\"plan\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sj_server_cache_hits_total{tier=\"result\"} 0"),
            "{text}"
        );
        assert!(text.contains("sj_server_max_q_error 4.500000"), "{text}");
    }
}
