//! Pretty-printing of expressions.
//!
//! Two forms are provided:
//!
//! * [`to_text`] — a plain ASCII, fully parenthesized form accepted back by
//!   the parser in [`mod@crate::parse`]: `project[1](semijoin[2=1](Visits, …))`.
//! * [`to_unicode`] — a display form using the paper's symbols
//!   (`π`, `σ`, `τ`, `⋈`, `⋉`, `∪`, `−`, `γ`), for reports and docs.

use crate::expr::{Expr, Selection};
use sj_storage::Value;
use std::fmt::Write;

fn cols_csv(cols: &[usize]) -> String {
    cols.iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Render a constant as a literal the parser accepts: integers in braces
/// (`{7}`), strings in single quotes (`'flu'`). The braces keep integer
/// constants distinguishable from column references in selection conditions.
fn value_literal(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("{{{i}}}"),
        Value::Str(s) => format!("'{s}'"),
    }
}

/// Render the parseable ASCII form (see [`crate::parse::parse`]).
pub fn to_text(e: &Expr) -> String {
    let mut s = String::new();
    write_text(e, &mut s);
    s
}

fn write_text(e: &Expr, out: &mut String) {
    match e {
        Expr::Rel(n) => out.push_str(n),
        Expr::Union(a, b) => {
            out.push_str("union(");
            write_text(a, out);
            out.push_str(", ");
            write_text(b, out);
            out.push(')');
        }
        Expr::Diff(a, b) => {
            out.push_str("diff(");
            write_text(a, out);
            out.push_str(", ");
            write_text(b, out);
            out.push(')');
        }
        Expr::Project(cols, a) => {
            let _ = write!(out, "project[{}](", cols_csv(cols));
            write_text(a, out);
            out.push(')');
        }
        Expr::Select(sel, a) => {
            match sel {
                Selection::Eq(i, j) => {
                    let _ = write!(out, "select[{i}={j}](");
                }
                Selection::Lt(i, j) => {
                    let _ = write!(out, "select[{i}<{j}](");
                }
                Selection::EqConst(i, c) => {
                    let _ = write!(out, "select[{i}={}](", value_literal(c));
                }
            }
            write_text(a, out);
            out.push(')');
        }
        Expr::ConstTag(c, a) => {
            let _ = write!(out, "tag[{}](", value_literal(c));
            write_text(a, out);
            out.push(')');
        }
        Expr::Join(t, a, b) => {
            let _ = write!(out, "join[{t}](");
            write_text(a, out);
            out.push_str(", ");
            write_text(b, out);
            out.push(')');
        }
        Expr::Semijoin(t, a, b) => {
            let _ = write!(out, "semijoin[{t}](");
            write_text(a, out);
            out.push_str(", ");
            write_text(b, out);
            out.push(')');
        }
        Expr::GroupCount(cols, a) => {
            let _ = write!(out, "gcount[{}](", cols_csv(cols));
            write_text(a, out);
            out.push(')');
        }
    }
}

/// Render the paper-style unicode form.
pub fn to_unicode(e: &Expr) -> String {
    match e {
        Expr::Rel(n) => n.clone(),
        Expr::Union(a, b) => format!("({} ∪ {})", to_unicode(a), to_unicode(b)),
        Expr::Diff(a, b) => format!("({} − {})", to_unicode(a), to_unicode(b)),
        Expr::Project(cols, a) => format!("π{}({})", cols_csv(cols), to_unicode(a)),
        Expr::Select(Selection::Eq(i, j), a) => format!("σ{i}={j}({})", to_unicode(a)),
        Expr::Select(Selection::Lt(i, j), a) => format!("σ{i}<{j}({})", to_unicode(a)),
        Expr::Select(Selection::EqConst(i, c), a) => {
            format!("σ{i}={}({})", value_literal(c), to_unicode(a))
        }
        Expr::ConstTag(c, a) => format!("τ{}({})", value_literal(c), to_unicode(a)),
        Expr::Join(t, a, b) => {
            format!("({} ⋈[{t}] {})", to_unicode(a), to_unicode(b))
        }
        Expr::Semijoin(t, a, b) => {
            format!("({} ⋉[{t}] {})", to_unicode(a), to_unicode(b))
        }
        Expr::GroupCount(cols, a) => {
            format!("γ{};count({})", cols_csv(cols), to_unicode(a))
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;

    fn example3() -> Expr {
        Expr::rel("Visits")
            .semijoin(
                Condition::eq(2, 1),
                Expr::rel("Serves").project([1]).diff(
                    Expr::rel("Serves")
                        .semijoin(Condition::eq(2, 2), Expr::rel("Likes"))
                        .project([1]),
                ),
            )
            .project([1])
    }

    #[test]
    fn text_form_of_example3() {
        assert_eq!(
            to_text(&example3()),
            "project[1](semijoin[2=1](Visits, diff(project[1](Serves), \
             project[1](semijoin[2=2](Serves, Likes)))))"
        );
    }

    #[test]
    fn unicode_form_of_example3() {
        let u = to_unicode(&example3());
        assert!(u.contains('π'));
        assert!(u.contains('⋉'));
        assert!(u.contains('−'));
    }

    #[test]
    fn constants_and_selects() {
        let e = Expr::rel("R")
            .tag(Value::int(5))
            .select_const(1, Value::str("x"))
            .select_lt(1, 2);
        let t = to_text(&e);
        assert_eq!(t, "select[1<2](select[1='x'](tag[{5}](R)))");
        let u = to_unicode(&e);
        assert!(u.contains("τ{5}"));
        assert!(u.contains("σ1='x'"));
    }

    #[test]
    fn display_impl_matches_to_text() {
        let e = example3();
        assert_eq!(e.to_string(), to_text(&e));
    }

    #[test]
    fn join_with_multi_atom_condition() {
        let e = Expr::rel("R").join(Condition::eq(1, 2).and_eq(2, 1), Expr::rel("S"));
        assert_eq!(to_text(&e), "join[1=2,2=1](R, S)");
    }

    #[test]
    fn product_prints_true_condition() {
        let e = Expr::rel("R").product(Expr::rel("S"));
        assert_eq!(to_text(&e), "join[true](R, S)");
    }
}
