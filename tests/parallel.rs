//! Differential suite proving **parallel ≡ serial**: every registered
//! set-join and division algorithm, every evaluation [`Strategy`], and
//! every [`OptimizeLevel`] must produce byte-identical relations under
//! [`Parallelism::Serial`] and [`Parallelism::Threads(n)`] for every
//! tested worker count — and, through the kernel layer, under **both**
//! [`Execution`] modes per worker count (each partition runs the row
//! index-view or the vectorized gather-view kernel). Inputs cover
//! random relations (property tests) as well as the adversarial shapes
//! hash partitioning finds hardest: empty operands, skewed and
//! zipf-distributed keys (one partition holds almost everything) and
//! all-duplicate inputs.
//!
//! The tested worker counts default to `{1, 2, 4, 8}`;
//! `SETJOINS_TEST_THREADS` (a comma-separated list or a single number)
//! narrows them, which CI uses to run the whole suite once at `1` and
//! once at `4`.

use proptest::prelude::*;
// `engine::Strategy` (the enum) and proptest's `Strategy` (the trait)
// collide under the two globs: bind each explicitly.
use proptest::strategy::Strategy as PropStrategy;
use setjoins::eval::{Execution, Parallelism, Strategy};
use setjoins::prelude::*;
use sj_algebra::division;
use sj_setjoin::nested_loop_set_join;
use sj_workload::{DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist};

/// Worker counts under test (see module docs).
fn thread_counts() -> Vec<usize> {
    match std::env::var("SETJOINS_TEST_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            assert!(
                !counts.is_empty(),
                "SETJOINS_TEST_THREADS={s:?} has no usable counts"
            );
            counts
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

// ---------------------------------------------------------------------------
// Adversarial deterministic inputs
// ---------------------------------------------------------------------------

/// Build a binary relation from `[A, B]` rows (duplicates welcome — the
/// canonical representation dedups them, which is itself under test).
fn pairs(rows: impl IntoIterator<Item = [i64; 2]>) -> Relation {
    Relation::from_tuples(2, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
}

/// Binary relations that stress the partitioning: empty, skewed onto one
/// key (one partition holds everything), all-duplicate rows (canonical
/// dedup leaves a single tuple), one value shared by every key, and a
/// benign mixed shape.
fn adversarial_pairs() -> Vec<(&'static str, Relation)> {
    vec![
        ("empty", Relation::empty(2)),
        ("skewed-key", pairs((0..60).map(|i| [7, i]))),
        ("all-duplicate", pairs((0..50).map(|_| [3, 9]))),
        ("shared-value", pairs((0..40).map(|i| [i, 5]))),
        // Harmonic key frequencies: rank-r key appears ~n/r times.
        ("zipf-key", pairs((0..90).map(|i| [90 / (i + 1), i % 7]))),
        ("mixed", pairs((0..80).map(|i| [i % 13, i % 7]))),
    ]
}

fn divisors() -> Vec<(&'static str, Relation)> {
    vec![
        ("empty", Relation::empty(1)),
        ("single", Relation::from_int_rows(&[&[5]])),
        ("several", Relation::from_int_rows(&[&[0], &[5], &[9]])),
    ]
}

/// Every registered division algorithm, every worker count, every
/// adversarial input: byte-identical to its own serial run and to the
/// registry baseline.
#[test]
fn division_algorithms_parallel_equals_serial_on_adversarial_inputs() {
    let reg = Registry::standard();
    for (rname, r) in adversarial_pairs() {
        for (sname, s) in divisors() {
            for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
                let baseline = sj_setjoin::nested_loop_division(&r, &s, sem);
                for alg in reg.division_algorithms() {
                    assert_eq!(
                        alg.run(&r, &s, sem),
                        baseline,
                        "{} serial on {rname}÷{sname} {sem:?}",
                        alg.name()
                    );
                    for &n in &thread_counts() {
                        assert_eq!(
                            alg.run_with_workers(&r, &s, sem, n),
                            baseline,
                            "{} @{n} workers on {rname}÷{sname} {sem:?}",
                            alg.name()
                        );
                    }
                }
            }
        }
    }
}

/// Every registered set-join algorithm, every supported predicate, every
/// worker count, every adversarial input pair.
#[test]
fn set_join_algorithms_parallel_equals_serial_on_adversarial_inputs() {
    let reg = Registry::standard();
    let preds = [
        SetPredicate::Contains,
        SetPredicate::ContainedIn,
        SetPredicate::Equals,
        SetPredicate::IntersectsNonempty,
    ];
    for (rname, r) in adversarial_pairs() {
        for (sname, s) in adversarial_pairs() {
            for pred in preds {
                let baseline = nested_loop_set_join(&r, &s, pred);
                for alg in reg.set_join_algorithms() {
                    if !alg.supports(pred) {
                        continue;
                    }
                    for &n in &thread_counts() {
                        assert_eq!(
                            alg.run_with_workers(&r, &s, pred, n),
                            baseline,
                            "{} @{n} workers on {rname}⋈{sname} {pred:?}",
                            alg.name()
                        );
                    }
                }
            }
        }
    }
}

/// The engine end to end on the paper's division plans: every strategy ×
/// every optimize level × every worker count agrees with the serial
/// reference run, on a real workload and on the adversarial shapes.
#[test]
fn engine_division_plans_parallel_equals_serial() {
    let mut dbs: Vec<(String, Database)> = vec![(
        "workload".into(),
        DivisionWorkload {
            groups: 200,
            divisor_size: 8,
            containment_fraction: 0.3,
            extra_per_group: 3,
            noise_domain: 64,
            seed: 0xFA12A11E1,
        }
        .database(),
    )];
    for (name, r) in adversarial_pairs() {
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", Relation::from_int_rows(&[&[5], &[9]]));
        dbs.push((format!("adversarial-{name}"), db));
    }
    let plans = [
        division::division_double_difference("R", "S"),
        division::division_counting("R", "S"),
        division::division_equality("R", "S"),
    ];
    for (dbname, db) in &dbs {
        for e in &plans {
            for level in [
                OptimizeLevel::Off,
                OptimizeLevel::Structural,
                OptimizeLevel::Full,
            ] {
                let reference = Engine::new(db.clone())
                    .optimize(level)
                    .query(e.clone())
                    .run()
                    .unwrap()
                    .relation;
                for strategy in [Strategy::Planned, Strategy::Naive, Strategy::Reference] {
                    for &n in &thread_counts() {
                        for exec in [Execution::RowAtATime, Execution::Vectorized] {
                            let out = Engine::new(db.clone())
                                .optimize(level)
                                .strategy(strategy)
                                .parallelism(Parallelism::Threads(n))
                                .execution(exec)
                                .query(e.clone())
                                .run()
                                .unwrap();
                            assert_eq!(
                                out.relation, reference,
                                "{dbname} {e} {strategy} {level:?} {exec} @{n} workers"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Registry-routed engine set operators under the parallelism knob: the
/// auto pick may change (that is the point) but the relation never does.
#[test]
fn engine_set_operators_parallel_equals_serial() {
    let w = SetJoinWorkload {
        r_groups: 600,
        s_groups: 600,
        set_size: SetSizeDist::Uniform(2, 8),
        domain: 48,
        elements: ElementDist::Zipf(0.8),
        seed: 0x9A11E1,
    };
    let (r, s) = w.generate();
    let mut db = Database::new();
    db.set("R", r.clone());
    db.set("S", s.clone());
    db.set(
        "D",
        Relation::unary((0..4).map(|v| Value::int(1_000_001 + v))),
    );
    let serial = Engine::new(db.clone());
    for &n in &thread_counts() {
        let threaded = Engine::new(db.clone()).parallelism(Parallelism::Threads(n));
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            let a = serial.set_join("R", "S", pred).unwrap();
            let b = threaded.set_join("R", "S", pred).unwrap();
            assert_eq!(a.relation, b.relation, "{pred:?} @{n} workers");
        }
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let a = serial.divide("R", "D", sem).unwrap();
            let b = threaded.divide("R", "D", sem).unwrap();
            assert_eq!(a.relation, b.relation, "division {sem:?} @{n} workers");
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

fn arb_relation(arity: usize) -> impl PropStrategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0i64..6, arity), 0..14).prop_map(
        move |rows| {
            Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
        },
    )
}

fn arb_db() -> impl PropStrategy<Value = Database> {
    (arb_relation(2), arb_relation(2), arb_relation(1)).prop_map(|(r, s, t)| {
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        db.set("T", t);
        db
    })
}

/// Arbitrary valid arity-2 expressions over R, S (both arity 2) that
/// exercise every operator the planner can parallelize.
fn arb_expr() -> impl PropStrategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("R")), Just(Expr::rel("S"))];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| a.join(Condition::eq(1, 1), b).project([1, 2])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| a.join(Condition::eq(2, 1), b).project([2, 1])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.semijoin(Condition::eq(1, 1), b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.semijoin(Condition::lt(1, 2), b)),
            inner.clone().prop_map(|a| a.project([2, 1])),
            inner.clone().prop_map(|a| a.select_eq(1, 2)),
            inner.clone().prop_map(|a| a.group_count([1])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random expression × random database × every strategy × every
    /// optimize level × every worker count: identical to the serial run.
    #[test]
    fn parallel_equals_serial_on_random_expressions(e in arb_expr(), db in arb_db()) {
        for level in [OptimizeLevel::Off, OptimizeLevel::Full] {
            let reference = Engine::new(db.clone())
                .optimize(level)
                .query(e.clone())
                .run()
                .unwrap()
                .relation;
            for strategy in [Strategy::Planned, Strategy::Naive, Strategy::Reference] {
                for &n in &thread_counts() {
                    let out = Engine::new(db.clone())
                        .optimize(level)
                        .strategy(strategy)
                        .parallelism(Parallelism::Threads(n))
                        .query(e.clone())
                        .run()
                        .unwrap();
                    prop_assert_eq!(
                        &out.relation, &reference,
                        "{} under {} {:?} @{} workers", e, strategy, level, n
                    );
                }
            }
        }
    }

    /// Random binary relations: every registered algorithm at every
    /// worker count equals the nested-loop baselines.
    #[test]
    fn parallel_set_ops_equal_serial_on_random_relations(
        r in arb_relation(2),
        s in arb_relation(2),
        d in arb_relation(1),
    ) {
        let reg = Registry::standard();
        for pred in [SetPredicate::Contains, SetPredicate::ContainedIn, SetPredicate::Equals] {
            let baseline = nested_loop_set_join(&r, &s, pred);
            for alg in reg.set_join_algorithms() {
                if !alg.supports(pred) {
                    continue;
                }
                for &n in &thread_counts() {
                    prop_assert_eq!(
                        alg.run_with_workers(&r, &s, pred, n),
                        baseline.clone(),
                        "{} {:?} @{}", alg.name(), pred, n
                    );
                }
            }
        }
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let baseline = sj_setjoin::nested_loop_division(&r, &d, sem);
            for alg in reg.division_algorithms() {
                for &n in &thread_counts() {
                    prop_assert_eq!(
                        alg.run_with_workers(&r, &d, sem, n),
                        baseline.clone(),
                        "{} {:?} @{}", alg.name(), sem, n
                    );
                }
            }
        }
    }

    /// Relation::partition_by_hash invariants on random relations: the
    /// partitions are a disjoint cover with stable key placement.
    #[test]
    fn partitioning_round_trips(r in arb_relation(2), n in 1usize..9) {
        let parts = r.partition_by_hash(&[0], n);
        prop_assert_eq!(parts.len(), n);
        let mut union = Relation::empty(2);
        let mut total = 0usize;
        for p in &parts {
            prop_assert!(p.intersection(&union).unwrap().is_empty());
            total += p.len();
            union = union.union(p).unwrap();
        }
        prop_assert_eq!(total, r.len());
        prop_assert_eq!(union, r.clone());
        for (pi, p) in parts.iter().enumerate() {
            for t in p {
                prop_assert_eq!(Relation::partition_of(t, &[0], n), pi);
            }
        }
    }
}
