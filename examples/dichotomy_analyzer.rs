//! The dichotomy analyzer as a tool: feed it relational-algebra plans (in
//! the textual syntax) and get Linear/Quadratic verdicts with
//! machine-checkable certificates, plus an instrumented [`Engine`] run on
//! the seed database.
//!
//! ```bash
//! cargo run --example dichotomy_analyzer
//! cargo run --example dichotomy_analyzer -- 'project[1](join[2=1](R, S))'
//! ```

use setjoins::prelude::*;
use sj_core::{analyze, measure_growth, Verdict};
use sj_workload::adversarial_division_series;

fn main() {
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let seeds = vec![sj_workload::DivisionWorkload {
        groups: 6,
        divisor_size: 3,
        containment_fraction: 0.5,
        extra_per_group: 2,
        noise_domain: 16,
        seed: 1,
    }
    .database()];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let plans: Vec<String> = if args.is_empty() {
        vec![
            // The classical division plan (quadratic).
            sj_algebra::to_text(&sj_algebra::division::division_double_difference("R", "S")),
            // A key-foreign-key style join (linear).
            "project[1](join[2=1](R, S))".to_string(),
            // A semijoin plan (linear by construction).
            "project[1](semijoin[2=1](R, S))".to_string(),
            // A cartesian product (quadratic).
            "join[true](project[1](R), S)".to_string(),
            // Union/difference only (linear).
            "diff(project[2](R), S)".to_string(),
        ]
    } else {
        args
    };

    let series = adversarial_division_series(&[16, 32, 64, 128], 99);
    // One engine over the seed database answers every submitted plan.
    let engine = Engine::new(seeds[0].clone()).instrument(Instrument::Cardinalities);
    for text in plans {
        println!("plan: {text}");
        let expr = match sj_algebra::parse(&text) {
            Ok(e) => e,
            Err(err) => {
                println!("  parse error: {err}\n");
                continue;
            }
        };
        if let Err(err) = expr.arity(&schema) {
            println!("  invalid over schema {schema}: {err}\n");
            continue;
        }
        let out = engine.query(expr.clone()).run().unwrap();
        println!(
            "  on the seed database: output = {} tuples, max intermediate = {} \
             ({} physical nodes)",
            out.relation.len(),
            out.report.as_ref().map_or(0, |r| r.max_intermediate()),
            out.plan.as_ref().map_or(0, |p| p.node_count()),
        );
        match analyze(&expr, &schema, &seeds) {
            Ok(Verdict::Linear { sa_equivalent }) => {
                println!("  verdict: LINEAR (Theorem 18)");
                println!("  SA= equivalent: {sa_equivalent}");
            }
            Ok(Verdict::Quadratic { witness }) => {
                println!(
                    "  verdict: QUADRATIC (Lemma 24 witness at node {}: {} ⋈ {}, \
                     free {:?} / {:?})",
                    witness.node_id, witness.a, witness.b, witness.f1, witness.f2
                );
            }
            Ok(Verdict::Undetermined) => println!("  verdict: undetermined"),
            Err(err) => println!("  analyzer error: {err}"),
        }
        match measure_growth(&expr, &series) {
            Ok(report) => {
                println!(
                    "  measured growth exponent on the adversarial family: {:.2} ({})",
                    report.exponent,
                    report.classification()
                );
                for p in &report.points {
                    println!(
                        "    |D| = {:>4}  max intermediate = {:>6}",
                        p.db_size, p.max_intermediate
                    );
                }
            }
            Err(err) => println!("  measurement failed: {err}"),
        }
        println!();
    }
    println!(
        "Theorem 17 guarantees the exponents you see are (asymptotically) \
         either ≤ 1 or 2 — never in between."
    );
}
