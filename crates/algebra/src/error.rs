//! Error types for the algebra layer.

use std::fmt;

/// Errors produced while building, validating, or parsing expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// A relation name is not in the schema.
    UnknownRelation(String),
    /// Union/difference operands disagree on arity.
    ArityMismatch {
        /// Left operand arity.
        left: usize,
        /// Right operand arity.
        right: usize,
    },
    /// A 1-based column reference is 0 or exceeds the operand arity.
    ColumnOutOfRange {
        /// The offending column index.
        column: usize,
        /// The arity it was checked against.
        arity: usize,
    },
    /// Parse error with position and message.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable message.
        message: String,
    },
    /// An operation required a specific fragment (e.g. SA=) and the
    /// expression is outside it.
    WrongFragment {
        /// The fragment that was required.
        required: &'static str,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownRelation(n) => write!(f, "unknown relation: {n}"),
            AlgebraError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: left {left} vs right {right}")
            }
            AlgebraError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
            AlgebraError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            AlgebraError::WrongFragment { required } => {
                write!(f, "expression is outside the required fragment {required}")
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AlgebraError::UnknownRelation("R".into()).to_string(),
            "unknown relation: R"
        );
        assert_eq!(
            AlgebraError::ArityMismatch { left: 1, right: 2 }.to_string(),
            "arity mismatch: left 1 vs right 2"
        );
        assert!(AlgebraError::Parse {
            offset: 3,
            message: "x".into()
        }
        .to_string()
        .contains("byte 3"));
        assert!(AlgebraError::WrongFragment { required: "SA=" }
            .to_string()
            .contains("SA="));
    }
}
