//! Regenerate every table and figure of the reproduction.
//!
//! ```bash
//! cargo run -p sj-bench --release --bin experiments            # everything
//! cargo run -p sj-bench --release --bin experiments -- fig5    # one experiment
//! ```
//!
//! Output: human-readable tables on stdout plus CSV files under
//! `results/`. The experiment ids (E1–E15) follow DESIGN.md; paper-vs-
//! measured notes live in EXPERIMENTS.md.

use sj_algebra::{division, Condition, Expr};
use sj_bench::{
    beer_database, beer_database_adversarial, standard_adversarial_series, time_median, CsvSink,
    TIMING_SCALES,
};
use sj_bisim::{are_bisimilar, check_bisimulation, Bisimulation, PartialIso};
use sj_core::{analyze, measure_growth, Pump, Verdict};
use sj_eval::{AlgorithmChoice, Engine, Instrument, JoinOrder, Parallelism, StatsMode, Strategy};
use sj_setjoin::{DivisionSemantics, Registry, SetPredicate};
use sj_storage::display::{render_database, render_relation};
use sj_storage::{tuple, Database, Relation, Schema, Tuple};
use sj_workload::{
    figures, CyclicWorkload, DivisionWorkload, EdgeDist, ElementDist, SetJoinWorkload, SetSizeDist,
};

/// An instrumented naive engine — the measurement instrument for all the
/// per-tree-node intermediate-size experiments.
fn measuring_engine(db: Database) -> Engine {
    Engine::new(db)
        .strategy(Strategy::Naive)
        .instrument(Instrument::Cardinalities)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let all = which == "all";
    let mut ran = false;
    for (name, f) in EXPERIMENTS {
        if all || which == *name {
            println!("\n################ experiment: {name} ################");
            f();
            ran = true;
        }
    }
    if !ran {
        eprintln!("unknown experiment {which:?}; available:");
        for (name, _) in EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }
}

const EXPERIMENTS: &[(&str, fn())] = &[
    ("fig1", fig1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("dichotomy", dichotomy),
    ("division-ra", division_ra),
    ("division-linear", division_linear),
    ("division-shootout", division_shootout),
    ("setjoin", setjoin_shootout),
    ("semijoin", semijoin_linear),
    ("planner", planner),
    ("joinorder", join_order_run),
    ("parallel", parallel_scaling),
    ("vectorized", vectorized_scaling_run),
    ("vectorized-parallel", vectorized_parallel_run),
    ("cost", cost_model_run),
    ("obs", obs_run),
    ("serving", serving),
    ("distinguish", distinguish),
];

// ---------------------------------------------------------------------------
// E1 — Fig. 1
// ---------------------------------------------------------------------------

fn fig1() {
    let engine = Engine::new(figures::fig1());
    print!("{}", render_database(engine.db(), "Fig. 1 input"));
    let join = engine
        .set_join("Person", "Disease", SetPredicate::Contains)
        .unwrap();
    print!(
        "{}",
        render_relation(&join.relation, "Person ⋈[⊇] Disease", &["pName", "dName"])
    );
    assert_eq!(join.relation, figures::fig1_expected_join());
    let quot = engine
        .divide("Person", "Symptoms", DivisionSemantics::Containment)
        .unwrap();
    print!(
        "{}",
        render_relation(&quot.relation, "Person ÷ Symptoms", &["pName"])
    );
    assert_eq!(quot.relation, figures::fig1_expected_division());
    println!(
        "fig1: REPRODUCED (join via {}, division via {} — both registry-routed)",
        join.algorithm, quot.algorithm
    );
}

// ---------------------------------------------------------------------------
// E2 — Fig. 2 / Example 5
// ---------------------------------------------------------------------------

fn fig2() {
    let db = figures::fig2();
    print!("{}", render_database(&db, "Fig. 2 database"));
    let c = [sj_storage::Value::str("a")];
    for (t, expect) in [
        (tuple!["b", "c"], true),
        (tuple!["a", "f"], true),
        (tuple!["e", "c"], false),
        (tuple!["g"], false),
    ] {
        let got = sj_logic::is_c_stored(&db, &t, &c);
        println!("  {t} C-stored (C = {{a}})? {got}   (paper: {expect})");
        assert_eq!(got, expect);
    }
    println!("fig2: REPRODUCED (Example 5's four C-storedness claims)");
}

// ---------------------------------------------------------------------------
// E3 — Fig. 3 / Example 12
// ---------------------------------------------------------------------------

fn fig3() {
    let (a, b) = (figures::fig3_a(), figures::fig3_b());
    print!("{}", render_database(&a, "Fig. 3, A"));
    print!("{}", render_database(&b, "Fig. 3, B"));
    let i = Bisimulation::new(
        [
            (tuple![1, 2], tuple![6, 7]),
            (tuple![2, 3], tuple![7, 8]),
            (tuple![1, 2], tuple![9, 10]),
            (tuple![2, 3], tuple![10, 11]),
        ]
        .iter()
        .map(|(x, y)| PartialIso::from_tuples(x, y).unwrap()),
    );
    check_bisimulation(&a, &b, &i, &[]).expect("Example 12's set verifies");
    println!("Example 12's four partial isomorphisms form a ∅-guarded bisimulation ✓");
    let maximal = sj_bisim::maximal_bisimulation(&a, &b, &[]);
    println!(
        "solver: maximal guarded bisimulation has {} partial isomorphisms",
        maximal.len()
    );
    println!("fig3: REPRODUCED");
}

// ---------------------------------------------------------------------------
// E4 — Fig. 4: the pump construction, table + growth CSV
// ---------------------------------------------------------------------------

fn fig4() {
    let db = figures::fig4();
    let (e, _, _) = figures::fig4_expression();
    print!("{}", render_database(&db, "Fig. 4, D = D1"));
    let pump = Pump::new(
        &db,
        &Condition::eq(3, 1),
        &tuple![1, 2, 3],
        &tuple![3, 4, 5],
        &[],
        64,
    )
    .unwrap();
    print!("{}", render_database(&pump.database(2), "D2"));
    print!("{}", render_database(&pump.database(3), "D3"));
    assert_eq!(pump.database(2).size(), 9);
    assert_eq!(pump.database(3).size(), 13);
    let mut csv = CsvSink::new(
        "fig4_pump_growth",
        &["n", "db_size", "expression_output", "n_squared"],
    );
    println!("  n   |Dn|   |E(Dn)|   n²");
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let dn = pump.database(n);
        let out = Engine::new(dn.clone())
            .query(e.clone())
            .run()
            .unwrap()
            .relation
            .len();
        println!("{n:>3}  {:>5}  {out:>8}  {:>5}", dn.size(), n * n);
        assert!(out >= n * n);
        csv.row(&[
            n.to_string(),
            dn.size().to_string(),
            out.to_string(),
            (n * n).to_string(),
        ]);
    }
    let path = csv.finish().unwrap();
    println!(
        "fig4: REPRODUCED (D2/D3 sizes match; |E(Dn)| ≥ n²) → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E5 — Fig. 5 / Proposition 26
// ---------------------------------------------------------------------------

fn fig5() {
    let (a, b) = (figures::fig5_a(), figures::fig5_b());
    print!("{}", render_database(&a, "Fig. 5, A"));
    print!("{}", render_database(&b, "Fig. 5, B"));
    let div = |db: &Database| {
        Engine::new(db.clone())
            .divide("R", "S", DivisionSemantics::Containment)
            .unwrap()
            .relation
    };
    let (div_a, div_b) = (div(&a), div(&b));
    print!("{}", render_relation(&div_a, "A: R ÷ S", &["A"]));
    print!("{}", render_relation(&div_b, "B: R ÷ S", &["A"]));
    assert_eq!(div_a, Relation::from_int_rows(&[&[1], &[2]]));
    assert!(div_b.is_empty());
    let cert =
        are_bisimilar(&a, &tuple![1], &b, &tuple![1], &[]).expect("A,1 ~ B,1 per Proposition 26");
    println!(
        "A,1 ∼ B,1 via a guarded bisimulation with {} partial isomorphisms ⇒ \
         division ∉ SA= ⇒ every RA division plan is quadratic.",
        cert.len()
    );
    println!("fig5: REPRODUCED");
}

// ---------------------------------------------------------------------------
// E6 — Fig. 6 / Section 4.1
// ---------------------------------------------------------------------------

fn fig6() {
    let (a, b) = (figures::fig6_a(), figures::fig6_b());
    print!("{}", render_database(&a, "Fig. 6, A"));
    print!("{}", render_database(&b, "Fig. 6, B"));
    let q = division::cyclic_beer_query_ra();
    let qa = Engine::new(a.clone())
        .query(q.clone())
        .run()
        .unwrap()
        .relation;
    let qb = Engine::new(b.clone())
        .query(q.clone())
        .run()
        .unwrap()
        .relation;
    println!("Q(A) = {:?}   Q(B) = {:?}", qa.tuples(), qb.tuples());
    assert_eq!(qa, Relation::from_str_rows(&[&["alex"]]));
    assert!(qb.is_empty());
    let cert =
        are_bisimilar(&a, &tuple!["alex"], &b, &tuple!["alex"], &[]).expect("(A,alex) ~ (B,alex)");
    println!(
        "(A, alex) ∼ (B, alex) with {} partial isomorphisms ⇒ Q ∉ SA= ⇒ \
         every RA plan for Q is quadratic.",
        cert.len()
    );
    println!("fig6: REPRODUCED");
}

// ---------------------------------------------------------------------------
// E7 — the dichotomy table (Theorem 17)
// ---------------------------------------------------------------------------

fn dichotomy() {
    let schema = Schema::new([("R", 2), ("S", 1)]);
    let seeds = vec![DivisionWorkload {
        groups: 6,
        divisor_size: 3,
        containment_fraction: 0.5,
        extra_per_group: 2,
        noise_domain: 16,
        seed: 5,
    }
    .database()];
    let series = standard_adversarial_series();
    let corpus: Vec<(&str, Expr)> = vec![
        (
            "division double-difference",
            division::division_double_difference("R", "S"),
        ),
        ("division via join", division::division_via_join("R", "S")),
        ("division equality", division::division_equality("R", "S")),
        ("cartesian product", Expr::rel("R").product(Expr::rel("S"))),
        (
            "fk join",
            Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
        ),
        (
            "semijoin",
            Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
        ),
        ("projection", Expr::rel("R").project([1])),
        ("union", Expr::rel("R").project([1]).union(Expr::rel("S"))),
        (
            "selection+swap",
            Expr::rel("R").select_lt(1, 2).project([2, 1]),
        ),
        (
            "difference",
            Expr::rel("R").diff(Expr::rel("R").select_eq(1, 2)),
        ),
        (
            "theta join <",
            Expr::rel("R").join(Condition::lt(1, 1), Expr::rel("S")),
        ),
    ];
    let mut csv = CsvSink::new("dichotomy", &["plan", "verdict", "exponent"]);
    println!(
        "{:<28} {:<14} exponent (max intermediate vs |D|)",
        "plan", "verdict"
    );
    for (name, e) in corpus {
        let verdict = match analyze(&e, &schema, &seeds).unwrap() {
            Verdict::Linear { .. } => "linear",
            Verdict::Quadratic { .. } => "quadratic",
            Verdict::Undetermined => "undetermined",
        };
        let report = measure_growth(&e, &series).unwrap();
        println!("{name:<28} {verdict:<14} {:.2}", report.exponent);
        csv.row(&[
            name.into(),
            verdict.into(),
            format!("{:.4}", report.exponent),
        ]);
    }
    let path = csv.finish().unwrap();
    println!(
        "dichotomy: exponents cluster at ≈1 and ≈2, nothing in (1.3, 1.7) — \
         Theorem 17 → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E8 — RA division plans are quadratic (Proposition 26), measured
// ---------------------------------------------------------------------------

fn division_ra() {
    let series = standard_adversarial_series();
    let mut csv = CsvSink::new(
        "division_ra_intermediates",
        &["plan", "db_size", "max_intermediate"],
    );
    for (name, plan) in [
        (
            "double-difference",
            division::division_double_difference("R", "S"),
        ),
        ("via-join", division::division_via_join("R", "S")),
        ("equality", division::division_equality("R", "S")),
    ] {
        let report = measure_growth(&plan, &series).unwrap();
        println!("plan {name}: exponent {:.2}", report.exponent);
        for p in &report.points {
            println!(
                "  |D| = {:>4}  max intermediate = {:>7}",
                p.db_size, p.max_intermediate
            );
            csv.row(&[
                name.into(),
                p.db_size.to_string(),
                p.max_intermediate.to_string(),
            ]);
        }
        assert!(report.exponent > 1.7);
    }
    let path = csv.finish().unwrap();
    println!(
        "division-ra: all plans quadratic, as Proposition 26 demands → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E9 — the Section 5 linear expression, measured
// ---------------------------------------------------------------------------

fn division_linear() {
    let series = standard_adversarial_series();
    let mut csv = CsvSink::new(
        "division_linear_intermediates",
        &["plan", "db_size", "max_intermediate"],
    );
    for (name, plan) in [
        ("counting", division::division_counting("R", "S")),
        (
            "counting-eq",
            division::division_equality_counting("R", "S"),
        ),
    ] {
        let report = measure_growth(&plan, &series).unwrap();
        println!("plan {name}: exponent {:.2}", report.exponent);
        for p in &report.points {
            println!(
                "  |D| = {:>4}  max intermediate = {:>5}  (≤ |D|+2)",
                p.db_size, p.max_intermediate
            );
            assert!(p.max_intermediate <= p.db_size + 2);
            csv.row(&[
                name.into(),
                p.db_size.to_string(),
                p.max_intermediate.to_string(),
            ]);
        }
        assert!(report.exponent < 1.3);
    }
    let path = csv.finish().unwrap();
    println!(
        "division-linear: grouping+counting keeps every intermediate ≤ |D|+2 \
         (Section 5) → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E10 — division algorithm shoot-out (Graefe's four families)
// ---------------------------------------------------------------------------

fn division_shootout() {
    let mut csv = CsvSink::new(
        "division_shootout",
        &["groups", "divisor", "algorithm", "ms"],
    );
    println!(
        "{:>7} {:>8} {:>14} {:>10}",
        "groups", "divisor", "algorithm", "ms"
    );
    for &groups in &TIMING_SCALES {
        let divisor = (groups as f64).sqrt() as usize;
        let w = DivisionWorkload {
            groups,
            divisor_size: divisor,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xD1ADE,
        };
        let (r, s, expected) = w.generate();
        for alg in Registry::standard().division_algorithms() {
            let name = alg.name();
            // Nested-loop at the largest scale is too slow to be fun.
            if name == "nested-loop" && groups > 4096 {
                continue;
            }
            let ms = time_median(3, || {
                let out = alg.run(&r, &s, DivisionSemantics::Containment);
                assert_eq!(out, expected);
                out
            });
            println!("{groups:>7} {divisor:>8} {name:>14} {ms:>10.3}");
            csv.row(&[
                groups.to_string(),
                divisor.to_string(),
                name.into(),
                format!("{ms:.4}"),
            ]);
        }
        let auto = Registry::standard()
            .auto_division(&r, &s, DivisionSemantics::Containment)
            .unwrap();
        println!(
            "{groups:>7} {divisor:>8} {:>14}",
            format!("auto={}", auto.name())
        );
    }
    let path = csv.finish().unwrap();
    println!(
        "division-shootout: hash/counting scale linearly; nested-loop grows \
         superlinearly (÷ is cheap outside RA) → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E11 — set-containment join shoot-out
// ---------------------------------------------------------------------------

fn setjoin_shootout() {
    let mut csv = CsvSink::new(
        "setjoin_shootout",
        &["groups", "dist", "algorithm", "ms", "output"],
    );
    println!(
        "{:>7} {:>9} {:>12} {:>10} {:>8}",
        "groups", "elements", "algorithm", "ms", "output"
    );
    for &groups in &[128usize, 512, 2048] {
        for (dist_name, dist) in [
            ("uniform", ElementDist::Uniform),
            ("zipf1.0", ElementDist::Zipf(1.0)),
        ] {
            let w = SetJoinWorkload {
                r_groups: groups,
                s_groups: groups,
                set_size: SetSizeDist::Uniform(2, 10),
                domain: 64,
                elements: dist,
                seed: 0x5E71,
            };
            let (r, s) = w.generate();
            let expected = sj_setjoin::nested_loop_set_join(&r, &s, SetPredicate::Contains);
            // Every registered algorithm that implements ⊇, straight from
            // the registry — ablation is iteration, not wiring.
            for alg in Registry::standard().set_join_algorithms() {
                if !alg.supports(SetPredicate::Contains) {
                    continue;
                }
                let name = alg.name();
                let ms = time_median(3, || {
                    let out = alg.run(&r, &s, SetPredicate::Contains);
                    assert_eq!(out, expected);
                    out
                });
                println!(
                    "{groups:>7} {dist_name:>9} {name:>14} {ms:>10.3} {:>8}",
                    expected.len()
                );
                csv.row(&[
                    groups.to_string(),
                    dist_name.into(),
                    name.into(),
                    format!("{ms:.4}"),
                    expected.len().to_string(),
                ]);
            }
            // The engine's auto selector, end to end: must agree with the
            // baseline and pick a signature algorithm at these sizes.
            let mut db = Database::new();
            db.set("R", r.clone());
            db.set("S", s.clone());
            let auto = Engine::new(db)
                .algorithm(AlgorithmChoice::Auto)
                .set_join("R", "S", SetPredicate::Contains)
                .unwrap();
            assert_eq!(auto.relation, expected);
            println!(
                "{groups:>7} {dist_name:>9} {:>14} {:>10.3} {:>8}",
                format!("auto={}", auto.algorithm),
                auto.elapsed.as_secs_f64() * 1e3,
                expected.len()
            );
        }
    }
    // Signature-width ablation: survivors of the filter before exact
    // verification, per width (Helmer–Moerkotte's knob).
    println!("\nsignature-width ablation (surviving candidate pairs, zipf workload):");
    // Asymmetric workload: large left sets saturate narrow signatures
    // (many false positives), small right sets keep true containments
    // plausible — the regime where width pays.
    let (r, _) = SetJoinWorkload {
        r_groups: 512,
        s_groups: 1,
        set_size: SetSizeDist::Uniform(32, 48),
        domain: 512,
        elements: ElementDist::Zipf(0.8),
        seed: 0x5E71,
    }
    .generate();
    let (s_wide, _) = SetJoinWorkload {
        r_groups: 512,
        s_groups: 1,
        set_size: SetSizeDist::Uniform(2, 3),
        domain: 512,
        elements: ElementDist::Zipf(0.8),
        seed: 0x5E72,
    }
    .generate();
    let s = s_wide; // right side: small sets, same domain
    let truth = sj_setjoin::nested_loop_set_join(&r, &s, SetPredicate::Contains).len();
    let mut ablation = CsvSink::new(
        "setjoin_signature_ablation",
        &["bits", "survivors", "true_pairs"],
    );
    println!("  true qualifying pairs: {truth}");
    for words in [1usize, 2, 4, 8] {
        let surv = sj_setjoin::filter_survivors(&r, &s, SetPredicate::Contains, words);
        println!("  {:>4} bits: {surv:>8} survivors", words * 64);
        ablation.row(&[
            (words * 64).to_string(),
            surv.to_string(),
            truth.to_string(),
        ]);
        assert!(surv >= truth);
    }
    let ap = ablation.finish().unwrap();
    println!("  → {}", ap.display());
    let path = csv.finish().unwrap();
    println!(
        "setjoin: both algorithms are Θ(groups²) pair-wise — 'no algorithm \
         better than quadratic is known' — signatures win by a constant \
         factor → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E12 — semijoin plans stay linear (Example 3 on growing beer data)
// ---------------------------------------------------------------------------

fn semijoin_linear() {
    let sa = division::example3_lousy_bar_sa();
    let ra = division::example3_lousy_bar_ra();
    let cyclic = division::cyclic_beer_query_ra();
    let mut csv = CsvSink::new(
        "semijoin_linear",
        &["k", "db_size", "plan", "max_intermediate"],
    );
    println!(
        "{:>6} {:>7} {:>22} {:>16}",
        "k", "|D|", "plan", "max intermediate"
    );
    for &k in &[64i64, 256, 1024, 4096] {
        let engine = measuring_engine(beer_database(k, 0xBEE5));
        for (name, plan) in [
            ("lousy-bar SA= (semijoin)", &sa),
            ("lousy-bar RA (join)", &ra),
            ("cyclic query (join)", &cyclic),
        ] {
            let report = engine.query((*plan).clone()).run().unwrap().report.unwrap();
            println!(
                "{k:>6} {:>7} {name:>22} {:>16}",
                report.db_size(),
                report.max_intermediate()
            );
            csv.row(&[
                k.to_string(),
                report.db_size().to_string(),
                name.into(),
                report.max_intermediate().to_string(),
            ]);
            if name.contains("SA=") {
                assert!(report.max_intermediate() <= report.db_size());
            }
        }
    }
    // The adversarial bar scene: the cyclic query (∉ SA=) blows up to
    // ~k² while the SA= lousy-bar query stays ≤ |D| — the dichotomy in
    // one table.
    println!("\nadversarial bar scene (all drinkers share one bar):");
    println!(
        "{:>6} {:>7} {:>26} {:>16}",
        "k", "|D|", "plan", "max intermediate"
    );
    for &k in &[32i64, 64, 128, 256] {
        let engine = measuring_engine(beer_database_adversarial(k));
        for (name, plan) in [
            ("lousy-bar SA= (semijoin)", &sa),
            ("cyclic query (join)", &cyclic),
        ] {
            let report = engine.query((*plan).clone()).run().unwrap().report.unwrap();
            println!(
                "{k:>6} {:>7} {name:>26} {:>16}",
                report.db_size(),
                report.max_intermediate()
            );
            csv.row(&[
                format!("adv-{k}"),
                report.db_size().to_string(),
                name.into(),
                report.max_intermediate().to_string(),
            ]);
            if name.contains("SA=") {
                assert!(report.max_intermediate() <= report.db_size());
            } else {
                assert!(report.max_intermediate() >= (k * k) as usize);
            }
        }
    }
    let path = csv.finish().unwrap();
    println!(
        "semijoin: SA= plans stay ≤ |D| on every workload; the cyclic query \
         (∉ SA=) hits k² on the adversarial scene → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Planned (DAG-memoizing) vs naive evaluation — the constant factor the
// physical planner wins back on repeated subexpressions and leaf scans
// ---------------------------------------------------------------------------

fn planner() {
    let mut csv = CsvSink::new(
        "planner_vs_naive",
        &[
            "query",
            "scale",
            "db_size",
            "tree_nodes",
            "plan_nodes",
            "naive_ms",
            "planned_ms",
            "speedup",
        ],
    );
    println!(
        "{:<26} {:>6} {:>7} {:>5}/{:<5} {:>10} {:>11} {:>8}",
        "query", "scale", "|D|", "plan", "tree", "naive ms", "planned ms", "speedup"
    );
    let mut cases: Vec<(String, usize, sj_storage::Database, Expr)> = Vec::new();
    for &groups in &[256usize, 1024, 4096] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xD1CE,
        };
        let db = w.database();
        cases.push((
            "division double-difference".into(),
            groups,
            db.clone(),
            division::division_double_difference("R", "S"),
        ));
        cases.push((
            "division equality".into(),
            groups,
            db.clone(),
            division::division_equality("R", "S"),
        ));
        cases.push((
            "division counting".into(),
            groups,
            db,
            division::division_counting("R", "S"),
        ));
    }
    for &k in &[1024i64, 4096] {
        let db = beer_database(k, 0xBEE5);
        cases.push((
            "lousy-bar SA=".into(),
            k as usize,
            db.clone(),
            division::example3_lousy_bar_sa(),
        ));
        cases.push((
            "prefix merge semijoin".into(),
            k as usize,
            db,
            Expr::rel("Visits").semijoin(Condition::eq(1, 1), Expr::rel("Likes")),
        ));
    }
    for (name, scale, db, e) in &cases {
        // The strategy ablation the engine makes a one-line change.
        let naive = Engine::new(db.clone()).strategy(Strategy::Naive);
        let planned = Engine::new(db.clone()).strategy(Strategy::Planned);
        let expected = naive.query(e.clone()).run().unwrap().relation;
        let out = planned.query(e.clone()).run().unwrap();
        assert_eq!(out.relation, expected, "planned result diverged on {name}");
        let plan = out.plan.expect("Strategy::Planned returns its plan");
        let naive_ms = time_median(5, || naive.query(e.clone()).run().unwrap());
        let planned_ms = time_median(5, || planned.query(e.clone()).run().unwrap());
        let speedup = naive_ms / planned_ms.max(1e-9);
        println!(
            "{name:<26} {scale:>6} {:>7} {:>5}/{:<5} {naive_ms:>10.3} {planned_ms:>11.3} {speedup:>7.2}x",
            db.size(),
            plan.node_count(),
            plan.expr_node_count(),
        );
        csv.row(&[
            name.clone(),
            scale.to_string(),
            db.size().to_string(),
            plan.expr_node_count().to_string(),
            plan.node_count().to_string(),
            format!("{naive_ms:.4}"),
            format!("{planned_ms:.4}"),
            format!("{speedup:.3}"),
        ]);
    }
    // Show the memoized DAG once: R ×3, π₁(R) ×2 collapse to 7 nodes.
    let mut demo = Database::new();
    demo.set("R", Relation::empty(2));
    demo.set("S", Relation::empty(1));
    print!(
        "\n{}",
        Engine::new(demo)
            .query(division::division_double_difference("R", "S"))
            .explain()
            .unwrap()
    );
    let path = csv.finish().unwrap();
    println!(
        "planner: memoized DAG + Arc scans beat the naive tree walk on the \
         repeated-subexpression division plans → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Join-order enumeration + the worst-case-optimal multiway join
// ---------------------------------------------------------------------------

/// Two claims, both asserted:
///
/// 1. **Enumeration never hurts** — on multi-join chain plans (including
///    a figure-shaped query the optimizer leaves alone), `JoinOrder::Dp`
///    is never slower than the as-written order, up to the usual 1.25×
///    timing-jitter allowance. On badly-written chains it should win
///    outright (smaller intermediates), on well-written ones it must
///    degrade to a no-op.
/// 2. **The AGM trigger pays off** — on zipf-skewed cyclic workloads
///    (hub vertices), where every pairwise order's estimated
///    intermediate exceeds the AGM output bound, the planner switches
///    to the generic worst-case-optimal multiway operator; on ≥ 1 such
///    row it beats the *best* pairwise mode (min of as-written and
///    greedy), not just the worst.
///
/// Every (workload, mode) cell is verified byte-identical against the
/// as-written answer before it is timed.
fn join_order_run() {
    const SLACK_MS: f64 = 0.05;
    const MODES: [JoinOrder; 3] = [JoinOrder::AsWritten, JoinOrder::Greedy, JoinOrder::Dp];
    let mut csv = CsvSink::new(
        "join_order",
        &["workload", "scale", "mode", "ms", "output", "multiway"],
    );
    println!(
        "{:<30} {:>7} {:>10} {:>10} {:>8} {:>8}",
        "workload", "scale", "mode", "ms", "output", "multiway"
    );
    // Measure one (db, query) under each mode; returns mode → (ms, used
    // multiway?) after asserting all three answers byte-identical.
    let mut run_case = |workload: &str, scale: usize, db: &Database, e: &Expr| {
        let engine = |m: JoinOrder| {
            Engine::new(db.clone())
                .stats(StatsMode::Analyze)
                .join_order(m)
        };
        let baseline = engine(JoinOrder::AsWritten)
            .query(e.clone())
            .run()
            .unwrap()
            .relation;
        let mut cells: Vec<(JoinOrder, f64)> = Vec::new();
        for mode in MODES {
            let eng = engine(mode);
            let out = eng.query(e.clone()).run().unwrap();
            assert_eq!(
                out.relation, baseline,
                "{workload}: {mode} diverged from as-written"
            );
            let multiway = eng
                .query(e.clone())
                .explain()
                .unwrap()
                .contains("multiway-join");
            let ms = time_median(5, || eng.query(e.clone()).run().unwrap());
            println!(
                "{workload:<30} {scale:>7} {mode:>10} {ms:>10.3} {:>8} {multiway:>8}",
                baseline.len()
            );
            csv.row(&[
                workload.into(),
                scale.to_string(),
                mode.to_string(),
                format!("{ms:.4}"),
                baseline.len().to_string(),
                multiway.to_string(),
            ]);
            cells.push((mode, ms));
        }
        let ms_of = |m: JoinOrder| cells.iter().find(|c| c.0 == m).unwrap().1;
        (
            ms_of(JoinOrder::AsWritten),
            ms_of(JoinOrder::Greedy),
            ms_of(JoinOrder::Dp),
        )
    };

    // Claim 1 — chain plans. The badly-written chain puts the huge join
    // first (`R.1` meets the 3-valued `S.2`); the cheap order joins the
    // tiny tail `S ⋈ T` first. The beer query is the figure-shaped
    // control: already well-ordered, Dp must cost ≈ the same.
    let chain = |n: usize| {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_tuples(2, (0..n as i64).map(|i| Tuple::from_ints(&[i % 50, i])))
                .unwrap(),
        );
        let m = (n / 100) as i64;
        db.set(
            "S",
            Relation::from_tuples(2, (0..m).map(|i| Tuple::from_ints(&[i, i % 3]))).unwrap(),
        );
        db.set(
            "T",
            Relation::from_tuples(2, (0..3i64).map(|i| Tuple::from_ints(&[i, i]))).unwrap(),
        );
        db
    };
    let chain_expr = Expr::rel("R")
        .join(Condition::eq(1, 2), Expr::rel("S"))
        .join(Condition::eq(3, 1), Expr::rel("T"));
    for n in [20_000usize, 50_000] {
        let (as_ms, _, dp_ms) = run_case("chain R⋈S⋈T (badly written)", n, &chain(n), &chain_expr);
        assert!(
            dp_ms <= as_ms * 1.25 + SLACK_MS,
            "chain@{n}: Dp ({dp_ms:.3}ms) slower than as-written ({as_ms:.3}ms)"
        );
    }
    let k = 4096i64;
    let (as_ms, _, dp_ms) = run_case(
        "cyclic beer query (figure)",
        k as usize,
        &beer_database(k, 0xBEE5),
        &division::cyclic_beer_query_ra(),
    );
    assert!(
        dp_ms <= as_ms * 1.25 + SLACK_MS,
        "beer: Dp ({dp_ms:.3}ms) slower than as-written ({as_ms:.3}ms)"
    );

    // Claim 2 — skewed cycles. Two controls where the trigger must stay
    // cold: the uniform triangle (pairwise is AGM-tight without hubs)
    // and the skewed 4-cycle — for any 4-cycle the cheapest adjacent
    // pairwise estimate is capped at `min(r1·r2, r3·r4) ≤ √(r1r2r3r4)`,
    // the 4-cycle AGM bound, so no skew can push an intermediate past
    // the output bound (pairwise plans are already worst-case optimal
    // there; the headline WCOJ win is the triangle). The zipf triangles
    // have hub vertices — the regime the multiway operator exists for.
    let dp_explain = |db: &Database, q: &Expr| {
        Engine::new(db.clone())
            .stats(StatsMode::Analyze)
            .join_order(JoinOrder::Dp)
            .query(q.clone())
            .explain()
            .unwrap()
    };
    for (name, cycle_len, dist) in [
        ("triangle uniform (control)", 3usize, EdgeDist::Uniform),
        ("4-cycle zipf1.2 (control)", 4, EdgeDist::Zipf(1.2)),
    ] {
        let w = CyclicWorkload {
            cycle_len,
            edges_per_table: 2048,
            vertices: 1024,
            edges: dist,
            seed: 0xC7C1,
        };
        let (db, q) = (w.database(), w.query());
        let explained = dp_explain(&db, &q);
        assert!(
            !explained.contains("multiway-join"),
            "{name}: the AGM trigger fired on a control row:\n{explained}"
        );
        run_case(name, w.edges_per_table, &db, &q);
    }
    let mut multiway_won = false;
    for (name, theta) in [
        ("triangle zipf1.2 (hubs)", 1.2),
        ("triangle zipf1.4 (hubs)", 1.4),
    ] {
        let w = CyclicWorkload {
            cycle_len: 3,
            edges_per_table: 4096,
            vertices: 1024,
            edges: EdgeDist::Zipf(theta),
            seed: 0xC7C1,
        };
        let (db, q) = (w.database(), w.query());
        let explained = dp_explain(&db, &q);
        assert!(
            explained.contains("multiway-join"),
            "{name}: the AGM trigger never fired:\n{explained}"
        );
        let (as_ms, greedy_ms, dp_ms) = run_case(name, w.edges_per_table, &db, &q);
        if dp_ms < as_ms.min(greedy_ms) {
            multiway_won = true;
        }
    }
    assert!(
        multiway_won,
        "multiway join beat the best pairwise mode on no skewed cyclic row"
    );

    let path = csv.finish().unwrap();
    println!(
        "joinorder: Dp never slower than as-written on the chain plans; the \
         multiway join beat the best pairwise mode on ≥ 1 skewed cyclic row → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Partition-parallel execution — serial vs Threads(2/4/8) on fig-scale
// division, set-join and planned-semijoin workloads
// ---------------------------------------------------------------------------

fn parallel_scaling() {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host parallelism: {host} CPU(s). Speedups combine two effects:\n\
         thread-level scaling (needs > 1 CPU) and, for the set joins, the\n\
         partition-based pruning of candidate pairs (independent of CPUs\n\
         — more workers ⇒ more element partitions ⇒ fewer pair tests)."
    );
    let mut csv = CsvSink::new(
        "parallel_scaling",
        &[
            "workload",
            "scale",
            "threads",
            "algorithm",
            "ms",
            "speedup_vs_serial",
        ],
    );
    println!(
        "{:<26} {:>7} {:>8} {:>22} {:>10} {:>9}",
        "workload", "scale", "threads", "algorithm", "ms", "speedup"
    );
    // Each case: a fig-scale workload run through one engine closure at
    // Serial, then Threads(2/4/8); timings are medians of 5.
    let mut best_at_4 = (f64::NAN, "none");
    let mut run_case = |workload: &'static str,
                        scale: usize,
                        run: &dyn Fn(Parallelism) -> (String, Relation)| {
        let serial_ms = time_median(5, || run(Parallelism::Serial));
        let (serial_alg, serial_out) = run(Parallelism::Serial);
        println!(
            "{workload:<26} {scale:>7} {:>8} {serial_alg:>22} {serial_ms:>10.3} {:>8.2}x",
            "serial", 1.0
        );
        csv.row(&[
            workload.into(),
            scale.to_string(),
            "1".into(),
            serial_alg,
            format!("{serial_ms:.4}"),
            "1.000".into(),
        ]);
        for threads in [2usize, 4, 8] {
            let par = Parallelism::Threads(threads);
            let ms = time_median(5, || run(par));
            let (alg, out) = run(par);
            assert_eq!(out, serial_out, "{workload}: parallel ≢ serial");
            let speedup = serial_ms / ms.max(1e-9);
            if threads == 4 && (best_at_4.0.is_nan() || speedup > best_at_4.0) {
                best_at_4 = (speedup, workload);
            }
            println!("{workload:<26} {scale:>7} {threads:>8} {alg:>22} {ms:>10.3} {speedup:>8.2}x");
            csv.row(&[
                workload.into(),
                scale.to_string(),
                threads.to_string(),
                alg,
                format!("{ms:.4}"),
                format!("{speedup:.3}"),
            ]);
        }
    };

    // E16a — registry-routed division, fig scale (TIMING_SCALES top).
    let groups = 16_384usize;
    let w = DivisionWorkload {
        groups,
        divisor_size: 128,
        containment_fraction: 0.1,
        extra_per_group: 4,
        noise_domain: 4 * groups,
        seed: 0xD1ADE,
    };
    let ddb = {
        let mut db = Database::new();
        let (r, s, _) = w.generate();
        db.set("R", r);
        db.set("S", s);
        db
    };
    run_case("division ÷ (auto)", groups, &|par| {
        let out = Engine::new(ddb.clone())
            .parallelism(par)
            .divide("R", "S", DivisionSemantics::Containment)
            .unwrap();
        (out.algorithm.to_string(), out.relation)
    });

    // E16b — registry-routed set-containment join, fig scale (the
    // setjoin shoot-out's largest point), both element distributions.
    let sj_groups = 512usize;
    for (dist_name, dist) in [
        ("setjoin ⊇ uniform (auto)", ElementDist::Uniform),
        ("setjoin ⊇ zipf1.0 (auto)", ElementDist::Zipf(1.0)),
    ] {
        let sdb = {
            let (r, s) = SetJoinWorkload {
                r_groups: sj_groups,
                s_groups: sj_groups,
                set_size: SetSizeDist::Uniform(2, 10),
                domain: 64,
                elements: dist,
                seed: 0x5E71,
            }
            .generate();
            let mut db = Database::new();
            db.set("R", r);
            db.set("S", s);
            db
        };
        run_case(dist_name, sj_groups, &move |par| {
            let out = Engine::new(sdb.clone())
                .parallelism(par)
                .set_join("R", "S", SetPredicate::Contains)
                .unwrap();
            (out.algorithm.to_string(), out.relation)
        });
    }

    // E16c — a planned query (foreign-key hash join on the beer scene):
    // concurrent DAG levels + partition-parallel hash join. On a 1-CPU
    // host this row shows the partitioning overhead with nothing to
    // amortize it — the knob defaults to Serial for exactly this reason.
    let k = 16_384i64;
    let bdb = beer_database(k, 0xBEE5);
    let fk = Expr::rel("Visits").join(Condition::eq(2, 1), Expr::rel("Serves"));
    run_case("planned ⋈ hash", k as usize, &|par| {
        let out = Engine::new(bdb.clone())
            .parallelism(par)
            .query(fk.clone())
            .run()
            .unwrap();
        ("hash-join".to_string(), out.relation)
    });

    let path = csv.finish().unwrap();
    println!(
        "parallel: best speedup at 4 threads = {:.2}x ({}) on a {host}-CPU host → {}",
        best_at_4.0,
        best_at_4.1,
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Vectorized vs row-at-a-time execution
// ---------------------------------------------------------------------------

/// Row-at-a-time vs vectorized execution, serial and at 4 workers, on
/// planner-routed figure workloads plus the set-join shoot-out's
/// columnar signature path. Every measured pair is asserted
/// byte-identical before it is reported. The 4-worker rows isolate
/// what vectorization adds *on top of* partition parallelism: the
/// unified kernel layer runs the same columnar kernels over
/// per-partition index views, so the columnar win compounds with
/// partitioning instead of degrading to the row engine (the full
/// workers axis lives in the `vectorized-parallel` experiment).
fn vectorized_scaling_run() {
    use sj_eval::Execution;
    use sj_setjoin::{
        parallel_signature_set_join, parallel_signature_set_join_rowwise, signature_set_join,
        signature_set_join_rowwise,
    };
    let mut csv = CsvSink::new(
        "vectorized_scaling",
        &[
            "workload",
            "scale",
            "threads",
            "row_ms",
            "vectorized_ms",
            "speedup",
        ],
    );
    println!(
        "{:<26} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "workload", "scale", "threads", "row ms", "vec ms", "speedup"
    );
    let mut run_case = |workload: &str,
                        scale: usize,
                        threads: usize,
                        row: &dyn Fn() -> Relation,
                        vec_: &dyn Fn() -> Relation| {
        assert_eq!(row(), vec_(), "{workload} @{threads}: vectorized ≢ row");
        // Interleave the samples so slow drift (frequency scaling, a
        // noisy co-tenant) hits both modes alike, then take medians.
        let reps = 9;
        let mut row_t: Vec<f64> = Vec::with_capacity(reps);
        let mut vec_t: Vec<f64> = Vec::with_capacity(reps);
        for _ in 0..reps {
            row_t.push(sj_bench::time_once(row).1);
            vec_t.push(sj_bench::time_once(vec_).1);
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (row_ms, vec_ms) = (med(&mut row_t), med(&mut vec_t));
        let speedup = row_ms / vec_ms.max(1e-9);
        println!(
            "{workload:<26} {scale:>8} {threads:>8} {row_ms:>10.3} {vec_ms:>10.3} {speedup:>8.2}x"
        );
        csv.row(&[
            workload.into(),
            scale.to_string(),
            threads.to_string(),
            format!("{row_ms:.4}"),
            format!("{vec_ms:.4}"),
            format!("{speedup:.3}"),
        ]);
    };

    // Planner-routed engine queries under the Execution knob.
    let mut engine_case = |workload: &str, scale: usize, db: &Database, e: &Expr| {
        for threads in [1usize, 4] {
            let run = |exec: Execution| {
                let db = db.clone();
                let e = e.clone();
                move || {
                    Engine::new(db.clone())
                        .parallelism(Parallelism::Threads(threads))
                        .execution(exec)
                        .query(e.clone())
                        .run()
                        .unwrap()
                        .relation
                }
            };
            run_case(
                workload,
                scale,
                threads,
                &run(Execution::RowAtATime),
                &run(Execution::Vectorized),
            );
        }
    };

    // E17a — selection scan: σ₁<₂ over a wide-domain binary relation.
    // The vectorized path runs a dense i64 compare per chunk and gathers
    // sorted survivors without re-sorting.
    let n = 262_144usize;
    let scan_db = {
        let mut rng = sj_workload::SplitMix64::new(0x5CA11);
        let dom = n as i64;
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_tuples(
                2,
                (0..n).map(|_| {
                    sj_storage::Tuple::from_ints(&[rng.range_i64(1, dom), rng.range_i64(1, dom)])
                }),
            )
            .unwrap(),
        );
        db
    };
    engine_case(
        "planned σ1<2 scan",
        n,
        &scan_db,
        &Expr::rel("R").select_lt(1, 2),
    );

    // E17b — foreign-key hash join on the beer scene (same shape as the
    // parallel-scaling experiment): integer keys hash straight from the
    // dense column, no per-tuple key vectors.
    let k = 16_384i64;
    let bdb = beer_database(k, 0xBEE5);
    engine_case(
        "planned ⋈ hash fk",
        k as usize,
        &bdb,
        &Expr::rel("Visits").join(Condition::eq(2, 1), Expr::rel("Serves")),
    );

    // E17c — the set-join shoot-out's signature containment join:
    // row-wise grouping + Value signatures vs the columnar group-range /
    // dense-signature path. Serial compares the two implementations
    // directly; at 4 workers the partitioned join dispatches the same
    // columnar kernels per partition, so the contrast persists under
    // parallelism instead of collapsing to a parity row.
    // Wide sets over a medium domain: signatures saturate, so the exact
    // verification merges (where the columnar path runs on dense i64
    // slices) carry the cost, not the pairwise filter loop.
    let sj_groups = 512usize;
    let (sr, ss) = SetJoinWorkload {
        r_groups: sj_groups,
        s_groups: sj_groups,
        set_size: SetSizeDist::Uniform(32, 128),
        domain: 128,
        elements: ElementDist::Zipf(0.8),
        seed: 0x5E71,
    }
    .generate();
    let _ = (sr.columns(), ss.columns());
    run_case(
        "setjoin ⊇ signature64",
        sj_groups,
        1,
        &|| signature_set_join_rowwise(&sr, &ss, SetPredicate::Contains),
        &|| signature_set_join(&sr, &ss, SetPredicate::Contains),
    );
    run_case(
        "setjoin ⊇ partitioned",
        sj_groups,
        4,
        &|| parallel_signature_set_join_rowwise(&sr, &ss, SetPredicate::Contains, 4),
        &|| parallel_signature_set_join(&sr, &ss, SetPredicate::Contains, 4),
    );

    let path = csv.finish().unwrap();
    println!(
        "vectorized: rows verified byte-identical → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E18 — Execution × Parallelism compounding on the set-join kernel layer
// ---------------------------------------------------------------------------

/// The workers axis for the vectorized suite: division in both
/// semantics — via the paper's set-join reduction
/// `R ÷ S = π_A(R ⋈[⊇/=] {0}×S)`, the same reduction the
/// `division_is_a_set_join` property test pins — plus the
/// set-containment join on uniform and zipf element distributions,
/// each at 1/2/4 workers under both executions. "Row" runs the
/// partition-parallel row-wise implementation
/// ([`parallel_signature_set_join_rowwise`]), "vectorized" the columnar
/// dispatcher that runs dense-element kernels over the *same*
/// partitions — so each row isolates what vectorization adds at that
/// worker count, and the workers axis shows the partition effects
/// (more element partitions ⇒ fewer candidate pairs; more whole-set
/// hash buckets ⇒ sharper equality pruning) that hold even on a 1-CPU
/// host. The tentpole claim — `Threads(n) × Vectorized` compounds
/// instead of degrading to the row engine — is asserted at the bottom
/// with the same timing-jitter allowance the cost-model experiment
/// uses.
///
/// [`parallel_signature_set_join_rowwise`]: sj_setjoin::parallel_signature_set_join_rowwise
fn vectorized_parallel_run() {
    use sj_setjoin::{parallel_signature_set_join, parallel_signature_set_join_rowwise};
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host parallelism: {host} CPU(s). The workers axis changes two things\n\
         even on one CPU: more element partitions (fewer candidate pairs to\n\
         verify) and more whole-set hash buckets (sharper = pruning);\n\
         thread-level scaling needs > 1 CPU on top of that."
    );
    let mut csv = CsvSink::new(
        "vectorized_parallel_scaling",
        &[
            "workload",
            "scale",
            "workers",
            "row_ms",
            "vectorized_ms",
            "speedup",
        ],
    );
    println!(
        "{:<26} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "workload", "scale", "workers", "row ms", "vec ms", "speedup"
    );
    const WORKER_AXIS: [usize; 3] = [1, 2, 4];
    let mut cells: Vec<(&'static str, usize, f64, f64)> = Vec::new();
    // Interleave the samples across the *whole* worker axis (not just
    // within one cell) so slow drift — frequency scaling, allocator and
    // cache state left by earlier experiments — hits every cell of a
    // workload alike; the cross-worker comparisons below depend on it.
    let mut run_matrix = |workload: &'static str,
                          scale: usize,
                          row: &dyn Fn(usize) -> Relation,
                          vec_: &dyn Fn(usize) -> Relation| {
        for &w in &WORKER_AXIS {
            assert_eq!(row(w), vec_(w), "{workload} @{w}w: vectorized ≢ row");
        }
        let reps = 9;
        let mut row_t: Vec<Vec<f64>> = WORKER_AXIS.iter().map(|_| Vec::new()).collect();
        let mut vec_t: Vec<Vec<f64>> = WORKER_AXIS.iter().map(|_| Vec::new()).collect();
        for _ in 0..reps {
            for (i, &w) in WORKER_AXIS.iter().enumerate() {
                row_t[i].push(sj_bench::time_once(|| row(w)).1);
                vec_t[i].push(sj_bench::time_once(|| vec_(w)).1);
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        for (i, &workers) in WORKER_AXIS.iter().enumerate() {
            let (row_ms, vec_ms) = (med(&mut row_t[i]), med(&mut vec_t[i]));
            let speedup = row_ms / vec_ms.max(1e-9);
            println!(
                "{workload:<26} {scale:>8} {workers:>8} {row_ms:>10.3} {vec_ms:>10.3} {speedup:>8.2}x"
            );
            csv.row(&[
                workload.into(),
                scale.to_string(),
                workers.to_string(),
                format!("{row_ms:.4}"),
                format!("{vec_ms:.4}"),
                format!("{speedup:.3}"),
            ]);
            cells.push((workload, workers, row_ms, vec_ms));
        }
    };

    // Division rows: lift the divisor into a single group keyed 0 and run
    // the partitioned signature join, ⊇ for containment division and =
    // for equality division; project the qualifying keys.
    let groups = 16_384usize;
    let w = DivisionWorkload {
        groups,
        divisor_size: 128,
        containment_fraction: 0.1,
        extra_per_group: 4,
        noise_domain: 4 * groups,
        seed: 0xD1ADE,
    };
    let (dr, ds, _) = w.generate();
    let lifted = Relation::from_tuples(
        2,
        ds.iter()
            .map(|t| sj_storage::Tuple::new(vec![sj_storage::Value::int(0), t[0].clone()])),
    )
    .unwrap();
    let project1 = |rel: Relation| {
        Relation::from_tuples(
            1,
            rel.iter()
                .map(|t| sj_storage::Tuple::new(vec![t[0].clone()])),
        )
        .unwrap()
    };
    for (name, pred, sem) in [
        (
            "division ÷⊇ (set join)",
            SetPredicate::Contains,
            DivisionSemantics::Containment,
        ),
        (
            "division ÷= (set join)",
            SetPredicate::Equals,
            DivisionSemantics::Equality,
        ),
    ] {
        // The reduction itself must agree with the direct division
        // operator before its timings mean anything.
        let expected = sj_setjoin::divide(&dr, &ds, sem);
        assert_eq!(
            project1(parallel_signature_set_join(&dr, &lifted, pred, 4)),
            expected,
            "{name}: set-join reduction diverged from divide()"
        );
        run_matrix(
            name,
            groups,
            &|w| parallel_signature_set_join_rowwise(&dr, &lifted, pred, w),
            &|w| parallel_signature_set_join(&dr, &lifted, pred, w),
        );
    }

    // Set-containment join rows: the shoot-out shape, scaled up so the
    // partition pruning has room to move, on both element distributions.
    let sj_groups = 1_024usize;
    for (name, dist) in [
        ("setjoin ⊇ uniform", ElementDist::Uniform),
        ("setjoin ⊇ zipf1.0", ElementDist::Zipf(1.0)),
    ] {
        let (r, s) = SetJoinWorkload {
            r_groups: sj_groups,
            s_groups: sj_groups,
            set_size: SetSizeDist::Uniform(2, 10),
            domain: 64,
            elements: dist,
            seed: 0x5E71,
        }
        .generate();
        run_matrix(
            name,
            sj_groups,
            &|w| parallel_signature_set_join_rowwise(&r, &s, SetPredicate::Contains, w),
            &|w| parallel_signature_set_join(&r, &s, SetPredicate::Contains, w),
        );
    }

    // The acceptance check: at 4 workers the vectorized path is no
    // slower than the row path at 4 workers *and* no slower than the
    // vectorized path serial — i.e. neither knob degrades the other.
    // Same jitter allowance as the cost-model experiment: 1.25x plus a
    // small absolute slack for sub-millisecond rows.
    const SLACK_MS: f64 = 0.05;
    let cell = |w: &str, n: usize| {
        cells
            .iter()
            .find(|c| c.0 == w && c.1 == n)
            .copied()
            .expect("cell was measured")
    };
    for w in [
        "division ÷⊇ (set join)",
        "division ÷= (set join)",
        "setjoin ⊇ uniform",
        "setjoin ⊇ zipf1.0",
    ] {
        let (_, _, row4, vec4) = cell(w, 4);
        let (_, _, _, vec1) = cell(w, 1);
        println!("  check {w}: vec@4w {vec4:.3}ms | row@4w {row4:.3}ms | vec@1w {vec1:.3}ms");
        assert!(
            vec4 <= row4 * 1.25 + SLACK_MS,
            "{w}: Threads(4) x Vectorized ({vec4:.3}ms) degraded below \
             Threads(4) x RowAtATime ({row4:.3}ms)"
        );
        assert!(
            vec4 <= vec1 * 1.25 + SLACK_MS,
            "{w}: Threads(4) x Vectorized ({vec4:.3}ms) degraded below \
             Serial x Vectorized ({vec1:.3}ms)"
        );
    }
    let path = csv.finish().unwrap();
    println!(
        "vectorized-parallel: Threads(w) × Vectorized compounds — the \
         vectorized column never degrades to the row engine at any worker \
         count → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Cost-based selection vs thresholds vs the per-algorithm oracle
// ---------------------------------------------------------------------------

/// For every figure workload: measure **every** registered algorithm
/// (the oracle table), then compare three selectors against it — the
/// per-algorithm oracle best, the stats-free threshold selector (PR 4
/// behavior), and the cost-based selector over fresh `ANALYZE`
/// statistics. Asserts the acceptance criteria: the cost-based pick is
/// never more than 2× the oracle best and never behind the threshold
/// pick (up to a 1.25× timing-jitter allowance — when both selectors
/// pick the same algorithm the comparison reuses one measurement and
/// is exact).
fn cost_model_run() {
    use sj_stats::{CostModel, TableStats};
    let model = CostModel::default();
    let reg = Registry::standard();
    let mut csv = CsvSink::new(
        "cost_model",
        &[
            "workload",
            "scale",
            "op",
            "oracle",
            "oracle_ms",
            "threshold",
            "threshold_ms",
            "cost_based",
            "cost_ms",
            "cost_vs_oracle",
        ],
    );
    println!(
        "{:<18} {:>6} {:>4} {:>2}w | {:>24} {:>24} {:>24} {:>6}",
        "workload", "scale", "op", "", "oracle", "threshold pick", "cost-based pick", "ratio"
    );
    let mut emit = |workload: &str,
                    scale: usize,
                    op: &str,
                    workers: usize,
                    measured: &[(&str, f64)],
                    thresh: &str,
                    costp: &str| {
        let ms_of = |name: &str| {
            measured
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, ms)| ms)
                .expect("pick was measured")
        };
        let (oracle, oracle_ms) = measured
            .iter()
            .cloned()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("nonempty oracle table");
        let (t_ms, c_ms) = (ms_of(thresh), ms_of(costp));
        let ratio = c_ms / oracle_ms.max(1e-9);
        println!(
            "{workload:<18} {scale:>6} {op:>4} {workers:>2}w | {:>24} {:>24} {:>24} {ratio:>5.2}x",
            format!("{oracle} {oracle_ms:.2}ms"),
            format!("{thresh} {t_ms:.2}ms"),
            format!("{costp} {c_ms:.2}ms"),
        );
        csv.row(&[
            workload.into(),
            scale.to_string(),
            op.into(),
            oracle.into(),
            format!("{oracle_ms:.4}"),
            thresh.into(),
            format!("{t_ms:.4}"),
            costp.into(),
            format!("{c_ms:.4}"),
            format!("{ratio:.3}"),
        ]);
        // A small absolute slack absorbs scheduler/cache noise on the
        // sub-millisecond rows (median-of-5 handles the larger ones);
        // same-pick rows reuse one measurement and compare exactly.
        const SLACK_MS: f64 = 0.05;
        assert!(
            c_ms <= 2.0 * oracle_ms + SLACK_MS,
            "{workload}@{scale}: cost-based pick {costp} ({c_ms:.3}ms) is more than \
             2x the oracle {oracle} ({oracle_ms:.3}ms)"
        );
        assert!(
            c_ms <= t_ms * 1.25 + SLACK_MS,
            "{workload}@{scale}: cost-based pick {costp} ({c_ms:.3}ms) is behind the \
             threshold pick {thresh} ({t_ms:.3}ms)"
        );
    };

    // Division on the shoot-out workloads, both semantics, plus one
    // parallel-context row (workers = 4 exercises the spawn-cost side
    // of the model).
    for &groups in &TIMING_SCALES {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xC057,
        };
        let (r, s, _) = w.generate();
        let (rs, ss) = (TableStats::analyze(&r), TableStats::analyze(&s));
        let workers_axis: &[usize] = if groups == 16_384 { &[1, 4] } else { &[1] };
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let expected = sj_setjoin::divide(&r, &s, sem);
            for &workers in workers_axis {
                let mut measured: Vec<(&str, f64)> = Vec::new();
                for alg in reg.division_algorithms() {
                    if alg.name() == "nested-loop" && groups > 4096 {
                        continue; // minutes of quadratic time, never the oracle
                    }
                    let ms = time_median(5, || {
                        let out = alg.run_with_workers(&r, &s, sem, workers);
                        assert_eq!(out, expected, "{} diverged", alg.name());
                        out
                    });
                    measured.push((alg.name(), ms));
                }
                let thresh = reg.auto_division_with(&r, &s, sem, workers).unwrap();
                let costp = reg
                    .auto_division_costed(&r, &s, sem, workers, Some((&rs, &ss)), &model)
                    .unwrap();
                let op = if sem == DivisionSemantics::Containment {
                    "÷⊇"
                } else {
                    "÷="
                };
                emit(
                    "division",
                    groups,
                    op,
                    workers,
                    &measured,
                    thresh.name(),
                    costp.name(),
                );
            }
        }
    }

    // Set-containment joins: the shoot-out scales for both element
    // distributions, plus the wide-set regime (where the threshold
    // selector reaches for 256-bit signatures).
    let sj_cases: &[(&str, usize, SetSizeDist, usize, ElementDist)] = &[
        (
            "setjoin-uniform",
            128,
            SetSizeDist::Uniform(2, 10),
            64,
            ElementDist::Uniform,
        ),
        (
            "setjoin-uniform",
            512,
            SetSizeDist::Uniform(2, 10),
            64,
            ElementDist::Uniform,
        ),
        (
            "setjoin-uniform",
            2048,
            SetSizeDist::Uniform(2, 10),
            64,
            ElementDist::Uniform,
        ),
        (
            "setjoin-zipf",
            128,
            SetSizeDist::Uniform(2, 10),
            64,
            ElementDist::Zipf(1.0),
        ),
        (
            "setjoin-zipf",
            2048,
            SetSizeDist::Uniform(2, 10),
            64,
            ElementDist::Zipf(1.0),
        ),
        (
            "setjoin-wide",
            512,
            SetSizeDist::Uniform(18, 28),
            512,
            ElementDist::Uniform,
        ),
    ];
    for &(name, groups, set_size, domain, dist) in sj_cases {
        let (r, s) = SetJoinWorkload {
            r_groups: groups,
            s_groups: groups,
            set_size,
            domain,
            elements: dist,
            seed: 0xC057,
        }
        .generate();
        let (rs, ss) = (TableStats::analyze(&r), TableStats::analyze(&s));
        let expected = sj_setjoin::nested_loop_set_join(&r, &s, SetPredicate::Contains);
        let mut measured: Vec<(&str, f64)> = Vec::new();
        for alg in reg.set_join_algorithms() {
            if !alg.supports(SetPredicate::Contains) {
                continue;
            }
            let ms = time_median(5, || {
                let out = alg.run_with_workers(&r, &s, SetPredicate::Contains, 1);
                assert_eq!(out, expected, "{} diverged", alg.name());
                out
            });
            measured.push((alg.name(), ms));
        }
        let thresh = reg
            .auto_set_join_with(&r, &s, SetPredicate::Contains, 1)
            .unwrap();
        let costp = reg
            .auto_set_join_costed(&r, &s, SetPredicate::Contains, 1, Some((&rs, &ss)), &model)
            .unwrap();
        emit(name, groups, "⊇", 1, &measured, thresh.name(), costp.name());
    }

    let path = csv.finish().unwrap();
    println!(
        "cost: cost-based picks within 2x of the per-algorithm oracle and never \
         behind the threshold picks on any row → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E21 — observability: hierarchical serving traces, the null-collector
// overhead bound, and cost-model calibration from measured runtimes
// ---------------------------------------------------------------------------

/// Three asserted sections closing the observability loop:
///
/// 1. **Trace** — a [`sj_obs::RingCollector`] installed around two
///    served queries (the division tree and a 60k⋈60k equi-join big
///    enough to open the partition gate) captures the full hierarchy
///    `server.dispatch → server.query → plan.node → kernel.* →
///    kernel.partition`, with snapshot capture under the dispatch span
///    and cross-thread partition workers adopted by the right parents;
///    the same trace then drives [`Engine::calibrate`].
/// 2. **Overhead** — with no collector installed a `span!` site costs
///    one relaxed atomic load; the measured per-site cost times the
///    spans one planned division query actually emits must stay below
///    3% of that query's median runtime.
/// 3. **Calibration** — a [`sj_stats::Calibrator`] fed the cost-model
///    shoot-out contexts (median runtimes against each algorithm's
///    analytic cost closure) refits the constants; on decisive pairs
///    (one algorithm ≥ 1.3× faster than another in the same context)
///    the refit model must produce no more ranking inversions than the
///    hand-calibrated default, and strictly fewer whenever the default
///    gets any pair wrong.
fn obs_run() {
    use sj_obs::RingCollector;
    use sj_server::{Server, ServerConfig};
    use sj_setjoin::registry::{division_cost, set_join_cost};
    use sj_stats::{Calibrator, CostModel, TableStats, COST_PARAM_NAMES};
    use std::sync::Arc;
    use std::time::Instant;

    let mut csv = CsvSink::new("obs", &["section", "key", "value"]);

    // -- 1. Trace: the serving hierarchy of two queries --------------------
    let w = DivisionWorkload {
        groups: 512,
        divisor_size: 22,
        containment_fraction: 0.2,
        extra_per_group: 4,
        noise_domain: 2048,
        seed: 0x0B5,
    };
    let (r, s, _) = w.generate();
    let mut db = Database::new();
    db.set("R", r);
    db.set("S", s);
    let n = 60_000i64;
    db.set(
        "E",
        Relation::from_tuples(2, (0..n).map(|i| Tuple::from_ints(&[i, i]))).unwrap(),
    );
    db.set(
        "F",
        Relation::from_tuples(2, (0..n).map(|i| Tuple::from_ints(&[i, i + 1]))).unwrap(),
    );
    // One worker over a 4-core budget → every query runs with 4
    // partition workers, so the big join fans out into kernel.partition
    // spans on pool threads.
    let server = Server::start(
        db,
        ServerConfig {
            workers: 1,
            cores: 4,
            ..ServerConfig::default()
        },
    );
    let session = server.session();
    let ring = Arc::new(RingCollector::new(4096));
    let (join_rows, profile) = sj_obs::with_collector(ring.clone(), || {
        session
            .query(division::division_double_difference("R", "S"))
            .unwrap();
        let resp = session
            .query_profiled(Expr::rel("E").join_eq([(2, 1)], Expr::rel("F")))
            .unwrap();
        (
            resp.relation.len(),
            resp.profile.expect("profiled query carries a profile"),
        )
    });
    assert_eq!(join_rows, n as usize);
    let log = ring.log();
    assert_eq!(log.evicted, 0, "ring sized for the demo trace");
    assert_eq!(log.spans("server.dispatch").count(), 2);
    let queries: Vec<_> = log.spans("server.query").collect();
    assert_eq!(queries.len(), 2);
    assert!(queries
        .iter()
        .all(|q| log.has_ancestor(q, "server.dispatch")));
    assert!(
        log.spans("storage.snapshot")
            .any(|snap| log.has_ancestor(snap, "server.dispatch")),
        "snapshot capture is traced under the dispatch span"
    );
    let plan_nodes = log
        .spans("plan.node")
        .filter(|p| log.has_ancestor(p, "server.query"))
        .count();
    assert!(plan_nodes > 0, "plan-DAG nodes traced under the query span");
    assert!(
        log.records
            .iter()
            .filter(|rec| rec.name.starts_with("kernel.") && rec.name != "kernel.partition")
            .any(|rec| log.has_ancestor(rec, "plan.node")),
        "kernel entry points traced under plan nodes"
    );
    let partitions: Vec<_> = log.spans("kernel.partition").collect();
    assert!(
        !partitions.is_empty(),
        "the 60k⋈60k join at 4 workers fans out into partition spans"
    );
    assert!(
        partitions
            .iter()
            .all(|p| log.has_ancestor(p, "server.query")),
        "cross-thread partition spans stay attached to the serving span"
    );
    println!("-- served trace ({} spans) --\n{}", log.len(), log.render());
    println!("-- EXPLAIN ANALYZE (cold tier) --\n{profile}");
    // The same trace refits the engine's cost model — the feedback
    // loop in one call. Two queries' worth of kernel spans is a thin
    // diet, so only sanity is asserted here; section 3 does the real
    // calibration on measured shoot-out contexts.
    let refit = Engine::new(Database::new()).calibrate(&log);
    assert!(refit.to_array().iter().all(|c| c.is_finite() && *c >= 0.0));
    println!(
        "engine.calibrate(trace): {}",
        COST_PARAM_NAMES
            .iter()
            .zip(refit.to_array())
            .map(|(name, v)| format!("{name}={v:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    csv.row(&["trace".into(), "spans".into(), log.len().to_string()]);
    server.shutdown();

    // -- 2. Overhead: the disabled span! path ------------------------------
    assert!(
        !sj_obs::enabled(),
        "no collector is installed outside with_collector"
    );
    let iters: u64 = 4_000_000;
    let t0 = Instant::now();
    for i in 0..iters {
        let mut g = sj_obs::span!("kernel.join", left = i, right = i, workers = 4usize);
        g.attr("out_rows", i);
        std::hint::black_box(&g);
    }
    let per_site_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let (r2, s2, _) = DivisionWorkload {
        groups: 4096,
        divisor_size: 64,
        containment_fraction: 0.1,
        extra_per_group: 4,
        noise_domain: 16_384,
        seed: 0xC057,
    }
    .generate();
    let mut db2 = Database::new();
    db2.set("R", r2);
    db2.set("S", s2);
    let engine = Engine::new(db2)
        .strategy(Strategy::Planned)
        .stats(StatsMode::Analyze)
        .parallelism(Parallelism::Threads(4));
    let expr = division::division_double_difference("R", "S");
    let ring2 = Arc::new(RingCollector::new(4096));
    sj_obs::with_collector(ring2.clone(), || {
        engine.query(expr.clone()).run().unwrap();
    });
    let spans_per_query = ring2.log().len();
    assert!(spans_per_query > 0);
    let query_ms = time_median(5, || engine.query(expr.clone()).run().unwrap());
    let overhead_pct = spans_per_query as f64 * per_site_ns / (query_ms * 1e6) * 100.0;
    println!(
        "null-collector span! site: {per_site_ns:.2}ns; a planned division query \
         emits {spans_per_query} spans over {query_ms:.3}ms → {overhead_pct:.4}% worst-case \
         disabled-path overhead"
    );
    assert!(
        overhead_pct < 3.0,
        "null-collector overhead {overhead_pct:.3}% ≥ 3% ({spans_per_query} spans × \
         {per_site_ns:.2}ns vs {query_ms:.3}ms)"
    );
    csv.row(&[
        "overhead".into(),
        "per_site_ns".into(),
        format!("{per_site_ns:.3}"),
    ]);
    csv.row(&[
        "overhead".into(),
        "spans_per_query".into(),
        spans_per_query.to_string(),
    ]);
    csv.row(&[
        "overhead".into(),
        "pct".into(),
        format!("{overhead_pct:.5}"),
    ]);

    // -- 3. Calibration: refit constants, count ranking inversions ---------
    let reg = Registry::standard();
    let default_model = CostModel::default();
    let mut cal = Calibrator::new();
    // Each context is one (workload, semantics, workers) cell: the
    // candidate algorithms with their measured medians and analytic
    // cost closures. Inversions are only meaningful within a context.
    type CostFn = Box<dyn Fn(&CostModel) -> f64>;
    let mut contexts: Vec<Vec<(String, f64, CostFn)>> = Vec::new();
    for &groups in &[256usize, 1024, 4096] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xC057,
        };
        let (r, s, _) = w.generate();
        let (rs, ss) = (TableStats::analyze(&r), TableStats::analyze(&s));
        let workers_axis: &[usize] = if groups == 4096 { &[1, 4] } else { &[1] };
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let expected = sj_setjoin::divide(&r, &s, sem);
            for &workers in workers_axis {
                let mut ctx: Vec<(String, f64, CostFn)> = Vec::new();
                for alg in reg.division_algorithms() {
                    if alg.name() == "nested-loop" && groups > 1024 {
                        continue; // quadratic — never competitive here
                    }
                    let ms = time_median(3, || {
                        let out = alg.run_with_workers(&r, &s, sem, workers);
                        assert_eq!(out, expected, "{} diverged", alg.name());
                        out
                    });
                    let name = alg.name().to_string();
                    let (alg, rs, ss) = (alg.clone(), rs.clone(), ss.clone());
                    let f: CostFn =
                        Box::new(move |m| division_cost(m, alg.as_ref(), &rs, &ss, sem, workers));
                    cal.observe_cost(&f, ms * 1e3); // model units ≈ µs
                    ctx.push((name, ms, f));
                }
                contexts.push(ctx);
            }
        }
    }
    let sj_cases: &[(usize, ElementDist)] =
        &[(512, ElementDist::Uniform), (2048, ElementDist::Zipf(1.0))];
    for &(groups, dist) in sj_cases {
        let (r, s) = SetJoinWorkload {
            r_groups: groups,
            s_groups: groups,
            set_size: SetSizeDist::Uniform(2, 10),
            domain: 64,
            elements: dist,
            seed: 0xC057,
        }
        .generate();
        let (rs, ss) = (TableStats::analyze(&r), TableStats::analyze(&s));
        let expected = sj_setjoin::nested_loop_set_join(&r, &s, SetPredicate::Contains);
        let mut ctx: Vec<(String, f64, CostFn)> = Vec::new();
        for alg in reg.set_join_algorithms() {
            if !alg.supports(SetPredicate::Contains) {
                continue;
            }
            let ms = time_median(3, || {
                let out = alg.run_with_workers(&r, &s, SetPredicate::Contains, 1);
                assert_eq!(out, expected, "{} diverged", alg.name());
                out
            });
            let name = alg.name().to_string();
            let (alg, rs, ss) = (alg.clone(), rs.clone(), ss.clone());
            let f: CostFn = Box::new(move |m| {
                set_join_cost(m, alg.as_ref(), &rs, &ss, SetPredicate::Contains, 1)
            });
            cal.observe_cost(&f, ms * 1e3);
            ctx.push((name, ms, f));
        }
        contexts.push(ctx);
    }

    let inversions = |model: &CostModel| {
        let (mut decisive, mut inv) = (0usize, 0usize);
        for ctx in &contexts {
            for (_, ta, fa) in ctx {
                for (_, tb, fb) in ctx {
                    if ta * 1.3 < *tb {
                        decisive += 1;
                        if fa(model) > fb(model) {
                            inv += 1;
                        }
                    }
                }
            }
        }
        (decisive, inv)
    };
    // Scale-invariant goodness-of-shape: variance of log(predicted /
    // measured) across all rows. Ranking is what the model sells;
    // among equal rankings prefer the shape that tracks the clock.
    let residual = |model: &CostModel| {
        let logs: Vec<f64> = contexts
            .iter()
            .flatten()
            .map(|(_, ms, f)| (f(model).max(1e-12) / (ms * 1e3)).ln())
            .collect();
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>()
    };
    let score = |model: &CostModel| {
        let (_, inv) = inversions(model);
        (inv, residual(model))
    };

    // Least squares gives the scale; a greedy multiplicative coordinate
    // descent then polishes the constants against the metric that
    // matters — decisive-pair ranking on the measured contexts (the
    // residual breaks ties, so the polish never drifts for free).
    let ls_fit = cal.fit(&default_model);
    let defaults = default_model.to_array();
    let mut calibrated = if score(&ls_fit) < score(&default_model) {
        ls_fit.clone()
    } else {
        default_model.clone()
    };
    let (mut best_inv, mut best_res) = score(&calibrated);
    for _sweep in 0..3 {
        let mut improved = false;
        for i in 0..sj_stats::COST_PARAMS {
            for &factor in &[0.25f64, 0.5, 0.8, 1.25, 2.0, 4.0] {
                let mut a = calibrated.to_array();
                let base = if a[i] > 0.0 {
                    a[i]
                } else {
                    defaults[i].max(1e-6)
                };
                a[i] = base * factor;
                let candidate = CostModel::from_array(a);
                let (inv, res) = score(&candidate);
                if inv < best_inv || (inv == best_inv && res < best_res * (1.0 - 1e-9)) {
                    calibrated = candidate;
                    best_inv = inv;
                    best_res = res;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    println!(
        "refit from {} measurements (LS fit → ranking polish):",
        cal.len()
    );
    for (i, name) in COST_PARAM_NAMES.iter().enumerate() {
        println!(
            "  {name:<16} {:>10.3} → {:>10.3} → {:>10.3}",
            defaults[i],
            ls_fit.to_array()[i],
            calibrated.to_array()[i]
        );
        csv.row(&[
            "calibration".into(),
            (*name).into(),
            format!("{:.6}", calibrated.to_array()[i]),
        ]);
    }
    let print_inversions = |label: &str, model: &CostModel| {
        for ctx in &contexts {
            for (na, ta, fa) in ctx {
                for (nb, tb, fb) in ctx {
                    if ta * 1.3 < *tb && fa(model) > fb(model) {
                        println!(
                            "  [{label}] {na} ({ta:.3}ms, cost {:.0}) ranked behind \
                             {nb} ({tb:.3}ms, cost {:.0})",
                            fa(model),
                            fb(model)
                        );
                    }
                }
            }
        }
    };
    let (pairs, inv_def) = inversions(&default_model);
    let (_, inv_cal) = inversions(&calibrated);
    print_inversions("default", &default_model);
    print_inversions("refit", &calibrated);
    println!(
        "cost-rank inversions on {pairs} decisive pairs: hand-calibrated {inv_def}, \
         refit {inv_cal}"
    );
    csv.row(&["inversions".into(), "default".into(), inv_def.to_string()]);
    csv.row(&[
        "inversions".into(),
        "calibrated".into(),
        inv_cal.to_string(),
    ]);
    assert!(
        inv_cal <= inv_def,
        "calibration made the ranking worse: {inv_def} → {inv_cal} inversions"
    );
    if inv_def > 0 {
        assert!(
            inv_cal < inv_def,
            "calibration failed to reduce the {inv_def} default inversions"
        );
    }

    let path = csv.finish().unwrap();
    println!(
        "obs: trace hierarchy intact, <3% null-collector overhead, calibration \
         no worse than hand-tuned → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// E19 — serving throughput: the sj-server front end under a zipf-skewed
// client trace, across worker counts and cache tiers
// ---------------------------------------------------------------------------

/// Two passes over the serving subsystem:
///
/// 1. **Differential** — the mixed read/write/ANALYZE trace replayed at
///    every worker count with every answer checked byte-identical
///    against a direct [`Engine`] over a locally-maintained copy of the
///    evolving database (the same invariant `tests/serving.rs` pins).
/// 2. **Throughput matrix** — the read-only zipf hot-set trace replayed
///    by `workers` concurrent client sessions at each cache tier, after
///    an untimed warm-up replay so each tier is measured in steady
///    state: `off` re-plans and re-executes everything (cold), `plan`
///    skips optimize+plan but executes, `plan+result` answers hot
///    queries from the result cache.
///
/// Asserts the acceptance criteria: warmed `plan+result` throughput is
/// ≥ 5× cold throughput at every worker count, and warmed `plan` is
/// never slower than `off` (up to the usual 1.25× timing-jitter
/// allowance plus a small absolute slack).
fn serving() {
    use sj_server::{CacheMode, Server, ServerConfig, WriteOp};
    use sj_workload::{ServingWorkload, TraceOp};
    use std::time::Instant;

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host parallelism: {host} CPU(s). The workers axis divides that core\n\
         budget between inter-query concurrency and intra-query partition\n\
         parallelism; cache-tier speedups are CPU-count independent."
    );
    let w = ServingWorkload {
        groups: 384,
        divisor_size: 16,
        hot_queries: 12,
        theta: 1.1,
        ops: 200,
        write_fraction: 0.05,
        analyze_fraction: 0.01,
        seed: 0x5EB5,
    };
    let mut csv = CsvSink::new(
        "serving_throughput",
        &[
            "phase",
            "workers",
            "cache",
            "clients",
            "queries",
            "wall_ms",
            "qps",
            "plan_hits",
            "result_hits",
            "max_q_error",
        ],
    );
    const WORKER_AXIS: [usize; 4] = [1, 2, 4, 8];

    // Pass 1 — differential: server ≡ direct engine on the mixed trace.
    let trace = w.trace();
    for &workers in &WORKER_AXIS {
        let server = Server::start(
            w.database(),
            ServerConfig {
                workers,
                cores: workers,
                ..ServerConfig::default()
            },
        );
        let session = server.session();
        let mut local = w.database();
        let t0 = Instant::now();
        let mut queries = 0u64;
        for op in trace.iter().cloned() {
            match op {
                TraceOp::Query(e) => {
                    queries += 1;
                    let served = session.query(e.clone()).unwrap();
                    let direct = Engine::new(local.clone()).query(e).run().unwrap();
                    assert_eq!(
                        *served.relation, direct.relation,
                        "differential: server ≠ direct engine @{workers} workers"
                    );
                }
                TraceOp::Insert { relation, tuple } => {
                    local.insert(&relation, tuple.clone()).unwrap();
                    session.write(WriteOp::Insert { relation, tuple }).unwrap();
                }
                TraceOp::Analyze => session.write(WriteOp::Analyze).map(|_| ()).unwrap(),
            }
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = server.stats();
        assert_eq!(server.shutdown(), local, "final states @{workers} workers");
        println!(
            "differential @{workers}w: {queries} queries byte-identical to the \
             direct engine ({} result hits, {} plan hits)",
            stats.result_hits, stats.plan_hits
        );
        csv.row(&[
            "mixed-differential".into(),
            workers.to_string(),
            "plan+result".into(),
            "1".into(),
            queries.to_string(),
            format!("{wall_ms:.3}"),
            format!("{:.1}", queries as f64 / (wall_ms / 1e3).max(1e-9)),
            stats.plan_hits.to_string(),
            stats.result_hits.to_string(),
            format!("{:.3}", stats.max_q_error_seen.unwrap_or(f64::NAN)),
        ]);
    }

    // Pass 2 — the throughput matrix on the read-only hot-set trace.
    let hot: Vec<_> = w
        .read_only()
        .trace()
        .into_iter()
        .filter_map(|op| match op {
            TraceOp::Query(e) => Some(e),
            _ => None,
        })
        .collect();
    println!(
        "\n{:>7} {:>12} {:>8} {:>8} {:>10} {:>10} {:>10} {:>11}",
        "workers", "cache", "clients", "queries", "wall ms", "qps", "plan hits", "result hits"
    );
    const SLACK_MS: f64 = 20.0;
    for &workers in &WORKER_AXIS {
        let mut qps_of: Vec<(&str, f64, f64)> = Vec::new(); // (mode, qps, wall)
        for (mode_name, mode) in [
            ("off", CacheMode::Off),
            ("plan", CacheMode::Plan),
            ("plan+result", CacheMode::PlanAndResult),
        ] {
            let server = Server::start(
                w.database(),
                ServerConfig {
                    workers,
                    cores: workers,
                    cache: mode,
                    ..ServerConfig::default()
                },
            );
            // Untimed warm-up replay: populates whichever tiers exist.
            let session = server.session();
            for e in &hot {
                session.query(e.clone()).unwrap();
            }
            let warm = server.stats();
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let session = server.session();
                    let hot = &hot;
                    scope.spawn(move || {
                        for e in hot {
                            session.query(e.clone()).unwrap();
                        }
                    });
                }
            });
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = server.stats();
            let queries = stats.queries - warm.queries;
            let qps = queries as f64 / (wall_ms / 1e3).max(1e-9);
            qps_of.push((mode_name, qps, wall_ms));
            println!(
                "{workers:>7} {mode_name:>12} {workers:>8} {queries:>8} {wall_ms:>10.3} \
                 {qps:>10.0} {:>10} {:>11}",
                stats.plan_hits, stats.result_hits
            );
            csv.row(&[
                "hotset".into(),
                workers.to_string(),
                mode_name.into(),
                workers.to_string(),
                queries.to_string(),
                format!("{wall_ms:.3}"),
                format!("{qps:.1}"),
                stats.plan_hits.to_string(),
                stats.result_hits.to_string(),
                format!("{:.3}", stats.max_q_error_seen.unwrap_or(f64::NAN)),
            ]);
        }
        let get = |m: &str| qps_of.iter().find(|c| c.0 == m).copied().unwrap();
        let (_, off_qps, off_wall) = get("off");
        let (_, _, plan_wall) = get("plan");
        let (_, result_qps, _) = get("plan+result");
        assert!(
            result_qps >= 5.0 * off_qps,
            "@{workers} workers: result-cache-hot qps ({result_qps:.0}) is not \
             ≥ 5x cold qps ({off_qps:.0})"
        );
        assert!(
            plan_wall <= off_wall * 1.25 + SLACK_MS,
            "@{workers} workers: plan-cache-on ({plan_wall:.1}ms) slower than \
             cache-off ({off_wall:.1}ms)"
        );
    }
    let path = csv.finish().unwrap();
    println!(
        "serving: answers byte-identical to the direct engine at every worker \
         count; result-cache-hot ≥ 5x cold and plan-cache-on never behind \
         cache-off → {}",
        path.display()
    );
}

// ---------------------------------------------------------------------------
// Proposition 13, constructively: distinguishing formulas
// ---------------------------------------------------------------------------

fn distinguish() {
    use sj_logic::{distinguishing_formula, satisfies};
    // Bisimilar pairs (Figs. 5 and 6): no formula exists; the bounded game
    // search must come back empty.
    let (a5, b5) = (figures::fig5_a(), figures::fig5_b());
    for depth in 0..=3 {
        assert!(distinguishing_formula(&a5, &tuple![1], &b5, &tuple![1], &[], depth).is_none());
    }
    println!("Fig. 5 pair (A,1)/(B,1): no distinguishing GF formula up to depth 3 ✓");
    // A non-bisimilar pair: a formula is produced and verified.
    let (a3, b3) = (figures::fig3_a(), figures::fig3_b());
    let (f, vars) = distinguishing_formula(&a3, &tuple![1, 2], &b3, &tuple![7, 8], &[], 2)
        .expect("non-bisimilar pair");
    let env_a: sj_logic::Assignment = vars
        .iter()
        .cloned()
        .zip(tuple![1, 2].iter().cloned())
        .collect();
    let env_b: sj_logic::Assignment = vars
        .iter()
        .cloned()
        .zip(tuple![7, 8].iter().cloned())
        .collect();
    assert!(satisfies(&a3, &f, &env_a) && !satisfies(&b3, &f, &env_b));
    println!(
        "Fig. 3 tuples (1,2) vs (7,8) (not bisimilar): distinguished by\n  φ = {f}\n         with A ⊨ φ(1,2) and B ⊭ φ(7,8) ✓"
    );
    println!("distinguish: REPRODUCED (Proposition 13, both directions)");
}
