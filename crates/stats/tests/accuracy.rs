//! Estimator accuracy: the estimates must stay within a bounded
//! **q-error** of the actuals on the `sj-workload` generators.
//!
//! q-error is the standard estimator quality metric,
//! `max(est, actual) / min(est, actual)` (both smoothed by +1 so empty
//! results do not divide by zero): a q-error of `q` means the estimate
//! is wrong by at most a factor `q` in either direction. The bounds
//! asserted here are deliberately loose enough to be robust across
//! seeds — they pin the estimator's *order of magnitude*, which is
//! what cost-based decisions consume — and tight enough that a broken
//! selectivity formula (off by the domain size, say) fails loudly.

use proptest::prelude::*;
use sj_algebra::{Condition, Expr};
use sj_stats::{division_rows, Estimator, StatsSource, TableStats};
use sj_storage::{Database, FxHashMap, Relation, Value};
use sj_workload::{DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist};
use std::sync::Arc;

/// Smoothed q-error of an estimate against an actual count.
fn q_error(est: f64, actual: usize) -> f64 {
    let (e, a) = (est + 1.0, actual as f64 + 1.0);
    (e / a).max(a / e)
}

fn source_of(db: &Database) -> FxHashMap<String, Arc<TableStats>> {
    db.iter()
        .map(|(n, r)| (n.to_string(), Arc::new(TableStats::analyze(r))))
        .collect()
}

fn actual(e: &Expr, db: &Database) -> usize {
    sj_eval::evaluate(e, db).unwrap().len()
}

/// One estimate/actual comparison on a generated set-join workload.
fn check_workload(dist: ElementDist, seed: u64, eq_bound: f64, join_bound: f64) {
    let (r, s) = SetJoinWorkload {
        r_groups: 300,
        s_groups: 200,
        set_size: SetSizeDist::Uniform(2, 8),
        domain: 64,
        elements: dist,
        seed,
    }
    .generate();
    let mut db = Database::new();
    db.set("R", r.clone());
    db.set("S", s.clone());
    let src = source_of(&db);
    let est = Estimator::new(&src);

    // Constant-equality selectivity from the histogram, on an element
    // value that actually occurs.
    let probe = r.tuples()[r.len() / 2][1].clone();
    let sel = Expr::rel("R").select_const(2, probe.clone());
    let q = q_error(est.estimate(&sel).unwrap().rows, actual(&sel, &db));
    assert!(
        q <= eq_bound,
        "σ₂₌{probe:?} q-error {q:.2} exceeds {eq_bound} (seed {seed}, {dist:?})"
    );

    // Equi-join on the element column: the distinct-count formula.
    let join = Expr::rel("R").join(Condition::eq(2, 2), Expr::rel("S"));
    let q = q_error(est.estimate(&join).unwrap().rows, actual(&join, &db));
    assert!(
        q <= join_bound,
        "join q-error {q:.2} exceeds {join_bound} (seed {seed}, {dist:?})"
    );

    // Group count (distinct keys) is estimated from exact distincts.
    let gc = Expr::rel("R").group_count([1]);
    let q = q_error(est.estimate(&gc).unwrap().rows, actual(&gc, &db));
    assert!(q <= 1.5, "group-count q-error {q:.2} (seed {seed})");

    // Projection onto the key column likewise.
    let pj = Expr::rel("R").project([1]);
    let q = q_error(est.estimate(&pj).unwrap().rows, actual(&pj, &db));
    assert!(q <= 1.5, "projection q-error {q:.2} (seed {seed})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Uniform element distributions: the independence assumptions
    /// hold, estimates stay within small q-error.
    #[test]
    fn uniform_workload_estimates_are_accurate(seed in 1u32..5000) {
        check_workload(ElementDist::Uniform, seed as u64, 4.0, 6.0);
    }

    /// Zipf-skewed elements violate uniformity — the histogram absorbs
    /// most of the skew for constant selections; joins degrade but stay
    /// within an order of magnitude.
    #[test]
    fn zipf_workload_estimates_stay_bounded(seed in 1u32..5000) {
        check_workload(ElementDist::Zipf(1.0), seed as u64, 8.0, 16.0);
    }

    /// Division-output estimates on random near-miss/containment mixes:
    /// the group-statistics estimate stays within an order of magnitude
    /// of the true quotient size on workloads without engineered
    /// correlation (uniform random sets over a small domain).
    #[test]
    fn division_estimate_stays_bounded_on_random_sets(seed in 1u32..5000) {
        let seed = seed as u64;
        let rows: Vec<(i64, i64)> = {
            let mut rng = sj_workload::SplitMix64::new(seed);
            (0..300)
                .flat_map(|g| {
                    let k = 2 + rng.below(6);
                    (0..k).map(move |_| (g, 0)).collect::<Vec<_>>()
                })
                .collect()
        };
        // Re-draw values with a fresh RNG pass (the closure above only
        // fixed the group sizes).
        let mut rng = sj_workload::SplitMix64::new(seed ^ 0xABCD);
        let r = Relation::from_tuples(
            2,
            rows.iter().map(|&(g, _)| {
                sj_storage::Tuple::from_ints(&[g, rng.below(12) as i64])
            }),
        )
        .unwrap();
        let s = Relation::unary((0..2).map(Value::int));
        let stats = TableStats::analyze(&r);
        let est = division_rows(&stats, s.len(), false);
        let actual = sj_setjoin::divide(&r, &s, sj_setjoin::DivisionSemantics::Containment).len();
        let q = q_error(est, actual);
        prop_assert!(q <= 12.0, "division q-error {q:.2} (est {est:.1}, actual {actual})");
    }
}

#[test]
fn estimates_are_deterministic() {
    let db = DivisionWorkload::default().database();
    let src = source_of(&db);
    let est = Estimator::new(&src);
    let e = sj_algebra::division::division_counting("R", "S");
    let a = est.estimate(&e).unwrap().rows;
    let b = Estimator::new(&src).estimate(&e).unwrap().rows;
    assert_eq!(a, b, "same stats ⇒ same estimate");
    // And a re-analysis of equal relations produces equal estimates.
    let src2 = source_of(&db);
    assert_eq!(a, Estimator::new(&src2).estimate(&e).unwrap().rows);
}

#[test]
fn missing_leaf_stats_yield_none_not_nonsense() {
    let db = DivisionWorkload::default().database();
    let mut src = source_of(&db);
    src.remove("S");
    let est = Estimator::new(&src);
    assert!(est
        .estimate(&sj_algebra::division::division_counting("R", "S"))
        .is_none());
    assert!(est.estimate(&Expr::rel("R")).is_some());
    assert!(src.table_stats("S").is_none());
}
