//! Generalized division: composite dividend keys.
//!
//! The paper's `R(A, B) ÷ S(B)` has a single key attribute A, but the
//! operator generalizes to any dividend `R(A₁, …, A_k, …, B, …)`: divide on
//! a chosen *key column set* and a chosen *value column*. This is the form
//! a downstream engine actually needs (e.g. "(student, semester) pairs
//! that completed all core courses").

use crate::division::DivisionSemantics;
use sj_storage::{FxHashMap, FxHashSet, Relation, Tuple, Value};

/// `R ÷ S` with a composite key: returns the distinct `key_cols`
/// projections of `r` whose associated set of `value_col` values contains
/// (or equals) the divisor.
///
/// `key_cols` and `value_col` are 1-based column references into `r`;
/// `s` must be unary. Columns may be listed in any order; they need not be
/// disjoint from `value_col` (though that is the useful case).
///
/// Runs in expected `O(|r| + |s|)` via counting, like
/// [`crate::division::counting_division`].
///
/// ```
/// use sj_setjoin::{divide_general, DivisionSemantics};
/// use sj_storage::Relation;
/// // (student, semester, course): who finished all core courses per semester?
/// let taken = Relation::from_int_rows(&[
///     &[1, 1, 101], &[1, 1, 102],
///     &[1, 2, 101],
///     &[2, 1, 101], &[2, 1, 102],
/// ]);
/// let core = Relation::from_int_rows(&[&[101], &[102]]);
/// let done = divide_general(&taken, &[1, 2], 3, &core, DivisionSemantics::Containment);
/// assert_eq!(done, Relation::from_int_rows(&[&[1, 1], &[2, 1]]));
/// ```
pub fn divide_general(
    r: &Relation,
    key_cols: &[usize],
    value_col: usize,
    s: &Relation,
    sem: DivisionSemantics,
) -> Relation {
    assert_eq!(s.arity(), 1, "divisor must be unary");
    assert!(!key_cols.is_empty(), "need at least one key column");
    for &c in key_cols.iter().chain([&value_col]) {
        assert!(
            c >= 1 && c <= r.arity(),
            "column {c} out of range for arity {}",
            r.arity()
        );
    }
    let divisor: FxHashSet<&Value> = s.iter().map(|t| &t[0]).collect();
    let key0: Vec<usize> = key_cols.iter().map(|&c| c - 1).collect();
    let v0 = value_col - 1;
    // Per key: the set of seen divisor values (distinct!) and whether any
    // non-divisor value occurred. (A composite-key dividend may repeat a
    // (key, value) pair across other columns, so we must deduplicate.)
    struct Acc {
        seen: FxHashSet<Value>,
        extra: bool,
    }
    let mut groups: FxHashMap<Vec<Value>, Acc> = FxHashMap::default();
    for t in r {
        let key: Vec<Value> = key0.iter().map(|&c| t[c].clone()).collect();
        let acc = groups.entry(key).or_insert_with(|| Acc {
            seen: FxHashSet::default(),
            extra: false,
        });
        let v = &t[v0];
        if divisor.contains(v) {
            acc.seen.insert(v.clone());
        } else {
            acc.extra = true;
        }
    }
    let need = divisor.len();
    let out = groups.into_iter().filter_map(|(key, acc)| {
        let ok = match sem {
            DivisionSemantics::Containment => acc.seen.len() == need,
            DivisionSemantics::Equality => acc.seen.len() == need && !acc.extra,
        };
        ok.then(|| Tuple::new(key))
    });
    Relation::from_tuples(key_cols.len(), out).expect("key arity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use DivisionSemantics::{Containment, Equality};

    fn taken() -> Relation {
        // (student, semester, course)
        Relation::from_int_rows(&[
            &[1, 1, 101],
            &[1, 1, 102],
            &[1, 2, 101],
            &[2, 1, 101],
            &[2, 1, 102],
            &[2, 1, 999], // an elective
        ])
    }

    fn core() -> Relation {
        Relation::from_int_rows(&[&[101], &[102]])
    }

    #[test]
    fn composite_key_containment() {
        let got = divide_general(&taken(), &[1, 2], 3, &core(), Containment);
        assert_eq!(got, Relation::from_int_rows(&[&[1, 1], &[2, 1]]));
    }

    #[test]
    fn composite_key_equality_excludes_electives() {
        let got = divide_general(&taken(), &[1, 2], 3, &core(), Equality);
        // student 2 took an elective in semester 1: excluded.
        assert_eq!(got, Relation::from_int_rows(&[&[1, 1]]));
    }

    #[test]
    fn reduces_to_binary_division() {
        let r = Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 7], &[3, 8], &[3, 9]]);
        let s = Relation::from_int_rows(&[&[7], &[8]]);
        for sem in [Containment, Equality] {
            assert_eq!(
                divide_general(&r, &[1], 2, &s, sem),
                crate::division::divide(&r, &s, sem),
                "{sem:?}"
            );
        }
    }

    #[test]
    fn key_order_controls_output_columns() {
        let got = divide_general(&taken(), &[2, 1], 3, &core(), Containment);
        assert_eq!(got, Relation::from_int_rows(&[&[1, 1], &[1, 2]]));
    }

    #[test]
    fn duplicate_pairs_across_other_columns_counted_once() {
        // (key, payload, value): the same (key, value) appears under two
        // payloads — must count once.
        let r = Relation::from_int_rows(&[&[1, 100, 7], &[1, 200, 7], &[1, 100, 8]]);
        let s = Relation::from_int_rows(&[&[7], &[8]]);
        let got = divide_general(&r, &[1], 3, &s, Containment);
        assert_eq!(got, Relation::from_int_rows(&[&[1]]));
        // Equality: no non-divisor values at all → still qualifies.
        let got_eq = divide_general(&r, &[1], 3, &s, Equality);
        assert_eq!(got_eq, Relation::from_int_rows(&[&[1]]));
    }

    #[test]
    fn empty_divisor_containment_keeps_all_keys() {
        let got = divide_general(&taken(), &[1], 3, &Relation::empty(1), Containment);
        assert_eq!(got, Relation::from_int_rows(&[&[1], &[2]]));
        let got_eq = divide_general(&taken(), &[1], 3, &Relation::empty(1), Equality);
        assert!(got_eq.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_column_panics() {
        divide_general(&taken(), &[4], 3, &core(), Containment);
    }
}
