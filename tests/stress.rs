//! Larger-scale smoke tests: the fast algorithms at tens of thousands of
//! tuples (debug-build friendly — only the linear paths run at full size).

use setjoins::eval::Parallelism;
use setjoins::prelude::*;
use sj_setjoin::{
    counting_division, hash_division, parallel_hash_division, parallel_signature_set_join,
    sort_merge_division, DivisionSemantics,
};
use sj_workload::{DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist};

#[test]
fn division_at_fifty_thousand_tuples() {
    let w = DivisionWorkload {
        groups: 10_000,
        divisor_size: 12,
        containment_fraction: 0.05,
        extra_per_group: 4,
        noise_domain: 10_000,
        seed: 0x57E55,
    };
    let (r, s, expected) = w.generate();
    assert!(r.len() > 20_000, "workload too small: {}", r.len());
    let sem = DivisionSemantics::Containment;
    let h = hash_division(&r, &s, sem);
    let m = sort_merge_division(&r, &s, sem);
    let c = counting_division(&r, &s, sem);
    assert_eq!(h, m);
    assert_eq!(h, c);
    assert_eq!(h, expected);
}

#[test]
fn instrumented_eval_on_large_linear_plan() {
    // The counting plan stays ≤ |D| + 2 even at 30k+ tuples.
    let db = DivisionWorkload {
        groups: 8_000,
        divisor_size: 10,
        containment_fraction: 0.1,
        extra_per_group: 3,
        noise_domain: 8_000,
        seed: 0xB16,
    }
    .database();
    let plan = sj_algebra::division::division_counting("R", "S");
    let report = evaluate_instrumented(&plan, &db).unwrap();
    assert!(report.db_size > 20_000);
    assert!(report.max_intermediate() <= report.db_size + 2);
}

#[test]
fn set_join_medium_scale_cross_validation() {
    let w = SetJoinWorkload {
        r_groups: 800,
        s_groups: 800,
        set_size: SetSizeDist::Uniform(2, 8),
        domain: 96,
        elements: ElementDist::Zipf(0.9),
        seed: 0x5CA1E,
    };
    let (r, s) = w.generate();
    let a = sj_setjoin::signature_set_join(&r, &s, SetPredicate::Contains);
    let b = sj_setjoin::inverted_index_set_join(&r, &s);
    assert_eq!(a, b);
    assert!(!a.is_empty(), "workload produced no containments");
}

#[test]
fn pump_construction_at_large_n() {
    // Lemma 24 at n = 512: the database stays linear (~4n) while the
    // join pairs hit n² = 262,144 — verified by the copy-pair counter
    // (full evaluation of the n² output would be slow in debug mode).
    let db = sj_workload::figures::fig4();
    let pump = sj_core::Pump::new(
        &db,
        &Condition::eq(3, 1),
        &tuple![1, 2, 3],
        &tuple![3, 4, 5],
        &[],
        512,
    )
    .unwrap();
    let (size, pairs) = pump.verify(512);
    assert_eq!(size, 5 + 4 * 511);
    assert_eq!(pairs, 512 * 512);
}

#[test]
fn parallel_division_workload_is_deterministic_across_runs() {
    // Fixed-seed fig-scale division workload, executed twice under
    // Threads(4): same tuples, same `render()`-stable instrumentation
    // shape (cardinalities, operators, worker and partition counts are
    // deterministic; the renders omit wall-clock times precisely so this
    // holds).
    let db = DivisionWorkload {
        groups: 6_000,
        divisor_size: 12,
        containment_fraction: 0.1,
        extra_per_group: 4,
        noise_domain: 6_000,
        seed: 0xDE7E12,
    }
    .database();
    for plan in [
        sj_algebra::division::division_counting("R", "S"),
        sj_algebra::division::division_double_difference("R", "S"),
    ] {
        let run = || {
            Engine::new(db.clone())
                .parallelism(Parallelism::Threads(4))
                .instrument(Instrument::Timings)
                .query(plan.clone())
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.relation.tuples(),
            b.relation.tuples(),
            "identical tuples across runs: {plan}"
        );
        let (ra, rb) = (a.report.unwrap(), b.report.unwrap());
        assert_eq!(ra.render(), rb.render(), "render()-stable shape: {plan}");
        // ... and identical to the serial run.
        let serial = Engine::new(db.clone()).query(plan.clone()).run().unwrap();
        assert_eq!(a.relation, serial.relation, "parallel ≡ serial: {plan}");
    }
}

#[test]
fn parallel_set_join_workload_is_deterministic_across_runs() {
    // Fixed-seed fig-scale set-join workload: the partition-based join
    // at 4 workers, twice, against the serial signature join.
    let (r, s) = SetJoinWorkload {
        r_groups: 1_200,
        s_groups: 1_200,
        set_size: SetSizeDist::Uniform(2, 8),
        domain: 72,
        elements: ElementDist::Zipf(0.9),
        seed: 0x57AB1E,
    }
    .generate();
    for pred in [SetPredicate::Contains, SetPredicate::ContainedIn] {
        let once = parallel_signature_set_join(&r, &s, pred, 4);
        let twice = parallel_signature_set_join(&r, &s, pred, 4);
        assert_eq!(once.tuples(), twice.tuples(), "{pred:?}");
        assert_eq!(
            once,
            sj_setjoin::signature_set_join(&r, &s, pred),
            "parallel ≡ serial on {pred:?}"
        );
    }
    // Division at the same scale through the direct parallel operator.
    let (dr, ds, expected) = DivisionWorkload {
        groups: 10_000,
        divisor_size: 12,
        containment_fraction: 0.05,
        extra_per_group: 4,
        noise_domain: 10_000,
        seed: 0x57E55,
    }
    .generate();
    for workers in [2, 4, 8] {
        assert_eq!(
            parallel_hash_division(&dr, &ds, DivisionSemantics::Containment, workers),
            expected,
            "parallel hash division @{workers}"
        );
    }
}

#[test]
fn storage_set_ops_at_scale() {
    // Merge-based set operations on 40k-tuple relations.
    let mk = |offset: i64| {
        let rows: Vec<Tuple> = (0..40_000i64)
            .map(|i| Tuple::from_ints(&[i + offset, (i + offset) % 97]))
            .collect();
        Relation::from_tuples(2, rows).unwrap()
    };
    let a = mk(0);
    let b = mk(20_000);
    let u = a.union(&b).unwrap();
    assert_eq!(u.len(), 60_000);
    let d = a.difference(&b).unwrap();
    assert_eq!(d.len(), 20_000);
    let i = a.intersection(&b).unwrap();
    assert_eq!(i.len(), 20_000);
    assert_eq!(d.union(&i).unwrap(), a);
}
