//! Integration suite for the statistics subsystem: `StatsMode` end to
//! end through the `Engine`, invariants the acceptance criteria demand
//! (stats off ⇒ byte-identical PR-4 selection; stats on ⇒ identical
//! *results* with cost-refined *picks*), catalog invalidation through
//! engine mutation, and the explain/report annotations.

use setjoins::prelude::*;
use sj_algebra::division;
use sj_setjoin::registry::thresholds;
use sj_workload::{DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist};

fn division_db(groups: usize) -> Database {
    DivisionWorkload {
        groups,
        divisor_size: (groups as f64).sqrt() as usize,
        containment_fraction: 0.1,
        extra_per_group: 4,
        noise_domain: 4 * groups,
        seed: 0x57A7,
    }
    .database()
}

fn setjoin_db(groups: usize, dist: ElementDist) -> Database {
    let (r, s) = SetJoinWorkload {
        r_groups: groups,
        s_groups: groups,
        set_size: SetSizeDist::Uniform(2, 10),
        domain: 64,
        elements: dist,
        seed: 0x57A8,
    }
    .generate();
    let mut db = Database::new();
    db.set("R", r);
    db.set("S", s);
    db
}

/// Every stats mode produces identical relations for queries and both
/// set operators, across scales and predicates — the mode may only
/// change *which algorithm* computes the answer.
#[test]
fn stats_modes_never_change_results() {
    for groups in [32usize, 2048] {
        let ddb = division_db(groups);
        let sdb = setjoin_db(groups.min(512), ElementDist::Zipf(1.0));
        let baseline = Engine::new(ddb.clone());
        let sj_baseline = Engine::new(sdb.clone());
        for mode in [StatsMode::Analyze, StatsMode::Cached] {
            let engine = Engine::new(ddb.clone()).stats(mode);
            for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
                assert_eq!(
                    engine.divide("R", "S", sem).unwrap().relation,
                    baseline.divide("R", "S", sem).unwrap().relation,
                    "{mode} {sem:?} at {groups} groups"
                );
            }
            let e = division::division_counting("R", "S");
            assert_eq!(
                engine.query(e.clone()).run().unwrap().relation,
                baseline.query(e).run().unwrap().relation,
                "{mode} query at {groups} groups"
            );
            let sj_engine = Engine::new(sdb.clone()).stats(mode);
            for pred in [
                SetPredicate::Contains,
                SetPredicate::ContainedIn,
                SetPredicate::Equals,
                SetPredicate::IntersectsNonempty,
            ] {
                assert_eq!(
                    sj_engine.set_join("R", "S", pred).unwrap().relation,
                    sj_baseline.set_join("R", "S", pred).unwrap().relation,
                    "{mode} {pred:?}"
                );
            }
        }
    }
}

/// With stats off, selection is the PR-4 threshold behavior, pinned at
/// the exposed threshold constants.
#[test]
fn stats_off_reproduces_threshold_selection_at_the_boundaries() {
    // One tuple below/above SMALL_INPUT flips sort-merge → hash.
    let divisor = Relation::from_int_rows(&[&[0]]);
    let mk = |n: usize| {
        let rows: Vec<Vec<i64>> = (0..n as i64 - 1).map(|i| vec![i, 0]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&refs));
        db.set("S", divisor.clone());
        db
    };
    let at = Engine::new(mk(thresholds::SMALL_INPUT));
    assert_eq!(
        at.divide("R", "S", DivisionSemantics::Containment)
            .unwrap()
            .algorithm,
        "sort-merge"
    );
    let over = Engine::new(mk(thresholds::SMALL_INPUT + 2));
    assert_eq!(
        over.divide("R", "S", DivisionSemantics::Containment)
            .unwrap()
            .algorithm,
        "hash"
    );
}

/// Cost-based selection upgrades the serial containment pick on the
/// selective fig-scale workload (the measured regime where the
/// partition-based join's anchor pruning wins even single-threaded),
/// while tiny inputs keep the setup-free nested loop.
#[test]
fn cost_based_selection_refines_the_containment_pick() {
    let db = setjoin_db(2048, ElementDist::Uniform);
    let threshold = Engine::new(db.clone())
        .set_join("R", "S", SetPredicate::Contains)
        .unwrap();
    let costed = Engine::new(db)
        .stats(StatsMode::Analyze)
        .set_join("R", "S", SetPredicate::Contains)
        .unwrap();
    assert_eq!(threshold.algorithm, "signature64");
    assert_eq!(costed.algorithm, "parallel-signature");
    assert_eq!(threshold.relation, costed.relation);
    let tiny = setjoin_db(4, ElementDist::Uniform);
    let costed = Engine::new(tiny)
        .stats(StatsMode::Analyze)
        .set_join("R", "S", SetPredicate::Contains)
        .unwrap();
    assert_eq!(costed.algorithm, "nested-loop");
}

/// The cached catalog follows database mutation through the engine
/// (copy-on-write invalidation end to end).
#[test]
fn cached_mode_tracks_engine_db_mutation() {
    let mut engine = Engine::new(division_db(16)).stats(StatsMode::Cached);
    let before = engine
        .divide("R", "S", DivisionSemantics::Containment)
        .unwrap();
    assert_eq!(engine.catalog().len(), 2);
    // Replace R with the fig-scale dividend: the pick must follow the
    // new statistics, not the cached ones.
    let big = division_db(16_384);
    let r = big.get("R").unwrap().clone();
    let s = big.get("S").unwrap().clone();
    engine.db_mut().set("R", r);
    engine.db_mut().set("S", s);
    let after = engine
        .divide("R", "S", DivisionSemantics::Containment)
        .unwrap();
    assert_eq!(before.algorithm, "sort-merge");
    assert_eq!(after.algorithm, "counting");
}

/// Explain output and instrumented reports carry estimated-vs-actual
/// row annotations exactly when statistics are enabled.
#[test]
fn explain_and_reports_annotate_estimates() {
    let db = division_db(256);
    let e = division::division_double_difference("R", "S");
    let plain = Engine::new(db.clone()).query(e.clone()).explain().unwrap();
    assert!(!plain.contains("rows"), "{plain}");
    let annotated = Engine::new(db.clone())
        .stats(StatsMode::Cached)
        .query(e.clone())
        .explain()
        .unwrap();
    assert!(annotated.contains("rows"), "{annotated}");
    let out = Engine::new(db)
        .stats(StatsMode::Analyze)
        .instrument(Instrument::Cardinalities)
        .query(e)
        .run()
        .unwrap();
    let planned = out.report.unwrap();
    let planned = planned.as_planned().unwrap();
    assert_eq!(planned.estimates.len(), planned.nodes.len());
    assert!(planned.estimates.iter().all(Option::is_some));
    assert!(planned.render().contains("est≈"));
    // Scan estimates are exact: est == actual cardinality on leaves.
    for (stat, est) in planned.nodes.iter().zip(&planned.estimates) {
        if stat.operator == "scan" {
            assert_eq!(est.unwrap() as usize, stat.cardinality, "{}", stat.label);
        }
    }
}

/// Stats-driven planning composes with optimization, parallelism and
/// both instrumented strategies without changing any result.
#[test]
fn stats_compose_with_optimizer_and_parallelism() {
    let db = division_db(512);
    let e = division::division_via_join("R", "S");
    let want = Engine::new(db.clone()).query(e.clone()).run().unwrap();
    for level in [
        OptimizeLevel::Off,
        OptimizeLevel::Structural,
        OptimizeLevel::Full,
    ] {
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let out = Engine::new(db.clone())
                .stats(StatsMode::Cached)
                .optimize(level)
                .parallelism(par)
                .query(e.clone())
                .run()
                .unwrap();
            assert_eq!(out.relation, want.relation, "{level:?} {par}");
        }
    }
}

/// The statistics types are reachable through the umbrella crate and
/// prelude (API surface pin).
#[test]
fn stats_api_is_exported() {
    let stats = TableStats::analyze(&Relation::from_int_rows(&[&[1, 2], &[1, 3]]));
    assert_eq!(stats.rows, 2);
    assert_eq!(stats.groups(), 1);
    let model = CostModel::default();
    assert!(model.class_cost(ComplexityClass::Quadratic, 100.0) > 0.0);
    let catalog: StatsCatalog = StatsCatalog::new();
    assert!(catalog.is_empty());
    let _ = setjoins::stats::Histogram::empty();
}
