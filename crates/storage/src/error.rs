//! Error types for the storage layer.

use std::fmt;

/// Errors produced by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple or relation had a different arity than required.
    ArityMismatch {
        /// The arity the operation required.
        expected: usize,
        /// The arity that was supplied.
        found: usize,
    },
    /// A relation name was not present in the schema/database.
    UnknownRelation(String),
    /// A column reference was out of range.
    ColumnOutOfRange {
        /// The 1-based column index used.
        column: usize,
        /// The arity it was checked against.
        arity: usize,
    },
    /// A relation exceeded the `u32::MAX`-row capacity of the zero-copy
    /// `u32` tuple-index views ([`crate::relation::ensure_u32_indexable`]).
    RelationTooLarge {
        /// The offending row count.
        rows: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            StorageError::UnknownRelation(n) => write!(f, "unknown relation: {n}"),
            StorageError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
            StorageError::RelationTooLarge { rows } => {
                write!(
                    f,
                    "relation of {rows} rows exceeds the u32 index-view capacity ({})",
                    u32::MAX
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StorageError::ArityMismatch {
                expected: 2,
                found: 3
            }
            .to_string(),
            "arity mismatch: expected 2, found 3"
        );
        assert_eq!(
            StorageError::UnknownRelation("R".into()).to_string(),
            "unknown relation: R"
        );
        assert_eq!(
            StorageError::ColumnOutOfRange {
                column: 4,
                arity: 2
            }
            .to_string(),
            "column 4 out of range for arity 2"
        );
        assert_eq!(
            StorageError::RelationTooLarge {
                rows: 5_000_000_000
            }
            .to_string(),
            "relation of 5000000000 rows exceeds the u32 index-view capacity (4294967295)"
        );
    }
}
