//! Planned (DAG-memoizing) vs naive (tree-walking) evaluation.
//!
//! The division plans repeat subexpressions (`division_double_difference`
//! evaluates `R` three times and `π₁(R)` twice under the naive evaluator)
//! and every leaf scan deep-clones its relation; the planner hash-conses
//! the tree and scans leaves by `Arc`. This bench quantifies the constant
//! factor on the division and semijoin workloads, plus the merge-vs-hash
//! operator choice on an aligned-prefix key.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::{division, Condition, Expr};
use sj_bench::beer_database;
use sj_eval::{evaluate, evaluate_planned};
use sj_workload::DivisionWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("planned_vs_naive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for groups in [256usize, 1024] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xD1CE,
        };
        let db = w.database();
        let e = division::division_double_difference("R", "S");
        group.bench_with_input(BenchmarkId::new("division_naive", groups), &db, |b, db| {
            b.iter(|| evaluate(&e, db).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("division_planned", groups),
            &db,
            |b, db| b.iter(|| evaluate_planned(&e, db).unwrap()),
        );
    }
    for k in [1024i64, 4096] {
        let db = beer_database(k, 0xBEE5);
        let e = division::example3_lousy_bar_sa();
        group.bench_with_input(BenchmarkId::new("lousy_bar_naive", k), &db, |b, db| {
            b.iter(|| evaluate(&e, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lousy_bar_planned", k), &db, |b, db| {
            b.iter(|| evaluate_planned(&e, db).unwrap())
        });
        // Aligned-prefix semijoin: the planner runs a sort-free merge
        // where the naive evaluator builds a hash set.
        let prefix = Expr::rel("Serves").semijoin(Condition::eq(1, 1), Expr::rel("Serves"));
        group.bench_with_input(BenchmarkId::new("prefix_sj_naive", k), &db, |b, db| {
            b.iter(|| evaluate(&prefix, db).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("prefix_sj_planned", k), &db, |b, db| {
            b.iter(|| evaluate_planned(&prefix, db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
