//! Per-relation statistics: `ANALYZE` for canonical set-semantics
//! relations.
//!
//! [`TableStats::analyze`] makes two fused passes per column over a
//! [`Relation`] (distinct/min-max/range, then histogram counting) and
//! produces everything the cost model and the cardinality estimator
//! consume:
//!
//! * per-column distinct count, min/max, and an equi-width
//!   [`Histogram`] ([`ColumnStats`]);
//! * for binary relations, the **set-join view** grouped on the first
//!   column ([`GroupStats`]): group count and the set-size distribution
//!   (min/mean/max and the second moment, which quadratic-cost
//!   estimates need — Definition 15 measures inputs by cardinality, but
//!   the set-join algorithms' work is governed by *group* structure).

use crate::histogram::Histogram;
use sj_storage::{FxHashSet, Relation, Value};

/// Statistics for one column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Exact number of distinct values.
    pub distinct: usize,
    /// Smallest value (None for an empty relation).
    pub min: Option<Value>,
    /// Largest value (None for an empty relation).
    pub max: Option<Value>,
    /// Equi-width histogram over the column's integer values.
    pub histogram: Histogram,
}

/// The set-join view of a binary relation `R(A, B)`: statistics of the
/// grouping `A ↦ {B : (A,B) ∈ R}`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Number of groups (distinct A-values).
    pub groups: usize,
    /// Smallest set size.
    pub min_set: usize,
    /// Largest set size.
    pub max_set: usize,
    /// Mean set size (`rows / groups`).
    pub mean_set: f64,
    /// Second moment of the set size, `E[s²]` — the expected work of a
    /// per-group quadratic pass is `groups · E[s²]`-shaped, which the
    /// mean alone underestimates on skewed inputs.
    pub mean_set_sq: f64,
}

/// Statistics for one relation, produced by [`TableStats::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Cardinality (the paper's Definition 15 size).
    pub rows: usize,
    /// Arity of the analyzed relation.
    pub arity: usize,
    /// Per-column statistics, one entry per column (0-based).
    pub columns: Vec<ColumnStats>,
    /// Set-join view, present iff the relation is binary.
    pub group: Option<GroupStats>,
}

impl TableStats {
    /// Analyze a relation: **two passes per column** (one fused scan
    /// for distinct count, min/max, and the integer value range; one
    /// counting pass for the histogram, which needs the range first)
    /// plus the group scan — `StatsMode::Analyze` runs this per
    /// operator call, so the scan count matters.
    ///
    /// Canonical storage order makes the leading column's distinct
    /// count and the group boundaries allocation-free run counts; only
    /// the non-leading distinct counts need a hash set.
    pub fn analyze(r: &Relation) -> TableStats {
        let arity = r.arity();
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            // Pass 1 (fused): distinct, min/max, integer range.
            // Sorted order makes the leading column's distinct count a
            // run count; other columns go through a hash set.
            let mut runs = 0usize;
            let mut prev: Option<&Value> = None;
            let mut seen: FxHashSet<&Value> = FxHashSet::default();
            if c != 0 {
                seen.reserve(r.len());
            }
            let mut min: Option<&Value> = None;
            let mut max: Option<&Value> = None;
            let mut int_range: Option<(i64, i64)> = None;
            for t in r {
                let v = &t[c];
                if c == 0 {
                    if prev != Some(v) {
                        runs += 1;
                        prev = Some(v);
                    }
                } else {
                    seen.insert(v);
                }
                if min.is_none_or(|m| v < m) {
                    min = Some(v);
                }
                if max.is_none_or(|m| v > m) {
                    max = Some(v);
                }
                if let Some(i) = v.as_int() {
                    int_range = Some(match int_range {
                        None => (i, i),
                        Some((lo, hi)) => (lo.min(i), hi.max(i)),
                    });
                }
            }
            // Pass 2: bucket counting over the precomputed range.
            let histogram = match int_range {
                Some((lo, hi)) => Histogram::build_range(
                    r.iter().filter_map(|t| t[c].as_int()),
                    lo,
                    hi,
                    crate::histogram::DEFAULT_BUCKETS,
                ),
                None => Histogram::empty(),
            };
            columns.push(ColumnStats {
                distinct: if c == 0 { runs } else { seen.len() },
                min: min.cloned(),
                max: max.cloned(),
                histogram,
            });
        }
        let group = (arity == 2).then(|| Self::group_scan(r));
        TableStats {
            rows: r.len(),
            arity,
            columns,
            group,
        }
    }

    fn group_scan(r: &Relation) -> GroupStats {
        let mut groups = 0usize;
        let (mut min_set, mut max_set) = (usize::MAX, 0usize);
        let mut sum_sq = 0f64;
        let mut run = 0usize;
        let mut prev: Option<&Value> = None;
        let mut close = |run: usize, min_set: &mut usize, max_set: &mut usize| {
            *min_set = (*min_set).min(run);
            *max_set = (*max_set).max(run);
            sum_sq += (run * run) as f64;
        };
        for t in r {
            if prev == Some(&t[0]) {
                run += 1;
            } else {
                if run > 0 {
                    close(run, &mut min_set, &mut max_set);
                }
                groups += 1;
                run = 1;
                prev = Some(&t[0]);
            }
        }
        if run > 0 {
            close(run, &mut min_set, &mut max_set);
        }
        GroupStats {
            groups,
            min_set: if groups == 0 { 0 } else { min_set },
            max_set,
            mean_set: if groups == 0 {
                0.0
            } else {
                r.len() as f64 / groups as f64
            },
            mean_set_sq: if groups == 0 {
                0.0
            } else {
                sum_sq / groups as f64
            },
        }
    }

    /// Distinct count of a column, 0 when out of range — the estimator's
    /// total-function accessor.
    pub fn distinct(&self, col: usize) -> usize {
        self.columns.get(col).map_or(0, |c| c.distinct)
    }

    /// The group count of the set-join view ([`GroupStats::groups`]);
    /// falls back to the leading column's distinct count for non-binary
    /// relations and 0 for arity 0.
    pub fn groups(&self) -> usize {
        self.group
            .as_ref()
            .map_or_else(|| self.distinct(0), |g| g.groups)
    }

    /// Mean set size of the set-join view (0 when not binary or empty).
    pub fn mean_set(&self) -> f64 {
        self.group.as_ref().map_or(0.0, |g| g.mean_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(rows: &[[i64; 2]]) -> Relation {
        Relation::from_tuples(2, rows.iter().map(|r| sj_storage::Tuple::from_ints(r))).unwrap()
    }

    #[test]
    fn analyze_empty_relation() {
        let s = TableStats::analyze(&Relation::empty(2));
        assert_eq!(s.rows, 0);
        assert_eq!(s.arity, 2);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.distinct(0), 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.columns[0].histogram.count(), 0);
        let g = s.group.as_ref().unwrap();
        assert_eq!((g.groups, g.min_set, g.max_set), (0, 0, 0));
        assert_eq!(g.mean_set, 0.0);
        assert_eq!(s.groups(), 0);
    }

    #[test]
    fn analyze_counts_columns_and_groups() {
        let r = pairs(&[[1, 10], [1, 11], [1, 12], [2, 10], [3, 10], [3, 13]]);
        let s = TableStats::analyze(&r);
        assert_eq!(s.rows, 6);
        assert_eq!(s.distinct(0), 3);
        assert_eq!(s.distinct(1), 4);
        assert_eq!(s.columns[0].min, Some(Value::int(1)));
        assert_eq!(s.columns[1].max, Some(Value::int(13)));
        let g = s.group.as_ref().unwrap();
        assert_eq!(g.groups, 3);
        assert_eq!(g.min_set, 1);
        assert_eq!(g.max_set, 3);
        assert_eq!(g.mean_set, 2.0);
        // E[s²] = (9 + 1 + 4) / 3
        assert!((g.mean_set_sq - 14.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_single_group_and_all_distinct() {
        // Single value everywhere.
        let one = pairs(&[[5, 9]]);
        let s = TableStats::analyze(&one);
        assert_eq!((s.distinct(0), s.distinct(1)), (1, 1));
        assert_eq!(s.group.as_ref().unwrap().groups, 1);
        assert_eq!(s.columns[1].histogram.estimate_eq(&Value::int(9)), 1.0);
        // All-distinct keys: every group is a singleton.
        let rows: Vec<[i64; 2]> = (0..50).map(|i| [i, 7]).collect();
        let s = TableStats::analyze(&pairs(&rows));
        let g = s.group.as_ref().unwrap();
        assert_eq!(g.groups, 50);
        assert_eq!((g.min_set, g.max_set), (1, 1));
        assert_eq!(g.mean_set_sq, 1.0);
        assert_eq!(s.distinct(1), 1);
    }

    #[test]
    fn analyze_unary_and_string_relations() {
        let u = Relation::unary((0..20).map(Value::int));
        let s = TableStats::analyze(&u);
        assert_eq!(s.arity, 1);
        assert!(s.group.is_none());
        assert_eq!(s.groups(), 20, "falls back to distinct(0)");
        let names = Relation::from_str_rows(&[&["an", "bob"], &["an", "carol"]]);
        let s = TableStats::analyze(&names);
        assert_eq!(s.distinct(0), 1);
        assert_eq!(s.distinct(1), 2);
        assert_eq!(s.columns[0].histogram.count(), 0, "strings not binned");
        assert_eq!(s.columns[0].min, Some(Value::str("an")));
    }

    #[test]
    fn distinct_out_of_range_is_zero() {
        let s = TableStats::analyze(&pairs(&[[1, 2]]));
        assert_eq!(s.distinct(5), 0);
    }
}
