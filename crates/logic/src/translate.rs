//! The two directions of **Theorem 8**: SA= ↔ GF.
//!
//! * [`gf_to_sa`] — for every GF formula `φ(x₁,…,x_k)` with constants in
//!   `C`, an SA= expression `E_φ` with
//!   `E_φ(D) = { d̄ C-stored in D | D ⊨ φ(d̄) }`.
//! * [`sa_to_gf`] — for every (constant-tagging-free) SA= expression `E` of
//!   arity `k`, a GF formula `φ_E(x₁,…,x_k)` with
//!   `{ d̄ | D ⊨ φ_E(d̄) } = E(D)`.
//!
//! Both constructions follow the authors' earlier paper (Leinders, Marx,
//! Tyszkiewicz, Van den Bussche, *The semijoin algebra and the guarded
//! fragment*, JoLLI 2005), which proves the correspondence in the
//! constant-free setting; the present paper notes the extension to
//! constants is routine. Our `gf_to_sa` handles constants fully (via
//! `σᵢ₌c` and constant-tagging in the "stored-tuples" expression);
//! `sa_to_gf` handles constant-free expressions plus `σᵢ₌c` selections
//! (which map to the GF atom `x = c`), and rejects `τ_c` — exactly the
//! fragment the cited proof covers.
//!
//! ### The key idea (both directions)
//!
//! Every SA= output tuple is **C-stored** (Definition 4): its non-constant
//! values sit inside a single stored tuple. Therefore a projection or
//! semijoin witness can always be *guarded* by a relation atom, by
//! disjoining over all relation names `R` and all mappings from expression
//! columns to positions of `R` — a finite case split that converts
//! unguarded ∃ into guarded ∃. Conversely, GF's guarded ∃ quantifies over
//! tuples of a single relation, which a semijoin against that relation
//! simulates.

use crate::error::LogicError;
use crate::formula::{Formula, Var};
use sj_algebra::{Condition, Expr, Selection};
use sj_storage::{Schema, Value};
use std::collections::BTreeMap;

/// A translated query: an expression/formula plus the ordered free
/// variables naming its columns.
#[derive(Debug, Clone)]
pub struct GfQuery {
    /// The GF formula.
    pub formula: Formula,
    /// Free variables in column order (column i ↦ `free_vars[i]`).
    pub free_vars: Vec<Var>,
}

/// A translated expression: SA= expression plus the ordered free variables
/// naming its columns.
#[derive(Debug, Clone)]
pub struct SaQuery {
    /// The SA= expression.
    pub expr: Expr,
    /// Free variables in column order.
    pub free_vars: Vec<Var>,
}

// ---------------------------------------------------------------------------
// The "all C-stored k-tuples" expression
// ---------------------------------------------------------------------------

/// Build the SA= expression whose value on any database `D` is the set of
/// all C-stored `k`-tuples of `D`: the union, over every relation name `R`
/// (arity m) and every map `g : {1..k} → {columns of R} ∪ C`, of
/// `π_g(τ_C(R))`. Uses only projection, constant-tagging and union — all
/// SA= operators.
///
/// Errors with [`LogicError::EmptySchema`] when the schema has no
/// relations (then no tuple is C-stored and no expression exists).
pub fn stored_tuples_expr(
    schema: &Schema,
    k: usize,
    constants: &[Value],
) -> Result<Expr, LogicError> {
    let mut terms: Vec<Expr> = Vec::new();
    for (name, m) in schema.iter() {
        // Base: R tagged with all constants; columns m+1 .. m+|C| hold them.
        let mut base = Expr::rel(name);
        for c in constants {
            base = base.tag(c.clone());
        }
        let pool = m + constants.len(); // columns to draw from
        if k == 0 {
            terms.push(base.project(Vec::<usize>::new()));
            continue;
        }
        if pool == 0 {
            continue; // arity-0 relation, no constants: nothing to draw
        }
        // Enumerate all maps {0..k} → {1..pool} with an odometer.
        let mut idx = vec![1usize; k];
        loop {
            terms.push(base.clone().project(idx.clone()));
            let mut pos = k;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] <= pool {
                    break;
                }
                idx[pos] = 1;
            }
            if done {
                break;
            }
        }
    }
    terms
        .into_iter()
        .reduce(Expr::union)
        .ok_or(LogicError::EmptySchema)
}

// ---------------------------------------------------------------------------
// GF → SA=
// ---------------------------------------------------------------------------

/// Translate a GF formula into an SA= expression computing its C-stored
/// answers (Theorem 8, second statement).
///
/// `constants` must contain every constant of the formula; pass the
/// formula's own constants (`f.constants()`) for the tightest `C`.
pub fn gf_to_sa(f: &Formula, schema: &Schema, constants: &[Value]) -> Result<SaQuery, LogicError> {
    f.check_guarded().map_err(LogicError::Unguarded)?;
    for c in f.constants() {
        if !constants.contains(&c) {
            return Err(LogicError::UnsupportedExpression(format!(
                "constant {c} of the formula is not in the supplied C"
            )));
        }
    }
    let desugared = desugar_bool(f);
    translate_formula(&desugared, schema, constants)
}

/// Replace `→` and `↔` by `¬/∧/∨` so the core translation has fewer cases.
fn desugar_bool(f: &Formula) -> Formula {
    match f {
        Formula::Implies(a, b) => desugar_bool(a).not().or(desugar_bool(b)),
        Formula::Iff(a, b) => {
            let (da, db) = (desugar_bool(a), desugar_bool(b));
            (da.clone().not().or(db.clone())).and(db.not().or(da))
        }
        Formula::Not(a) => desugar_bool(a).not(),
        Formula::And(a, b) => desugar_bool(a).and(desugar_bool(b)),
        Formula::Or(a, b) => desugar_bool(a).or(desugar_bool(b)),
        Formula::Exists {
            vars,
            guard_rel,
            guard_args,
            body,
        } => Formula::Exists {
            vars: vars.clone(),
            guard_rel: guard_rel.clone(),
            guard_args: guard_args.clone(),
            body: Box::new(desugar_bool(body)),
        },
        atom => atom.clone(),
    }
}

/// Semijoin `e_target ⋉ e_sub` keeping target tuples whose `vars_sub`
/// columns (looked up by variable name in `vars_target`) match.
fn expand_to(
    e_sub: Expr,
    vars_sub: &[Var],
    vars_target: &[Var],
    schema: &Schema,
    constants: &[Value],
) -> Result<Expr, LogicError> {
    let stored = stored_tuples_expr(schema, vars_target.len(), constants)?;
    let pairs: Vec<(usize, usize)> = vars_sub
        .iter()
        .enumerate()
        .map(|(sub_pos, v)| {
            let tgt_pos = vars_target
                .iter()
                .position(|w| w == v)
                .expect("vars_sub ⊆ vars_target");
            (tgt_pos + 1, sub_pos + 1)
        })
        .collect();
    Ok(stored.semijoin(Condition::eq_pairs(pairs), e_sub))
}

fn translate_formula(
    f: &Formula,
    schema: &Schema,
    constants: &[Value],
) -> Result<SaQuery, LogicError> {
    match f {
        Formula::Bool(true) => Ok(SaQuery {
            expr: stored_tuples_expr(schema, 0, constants)?,
            free_vars: vec![],
        }),
        Formula::Bool(false) => {
            let s = stored_tuples_expr(schema, 0, constants)?;
            Ok(SaQuery {
                expr: s.clone().diff(s),
                free_vars: vec![],
            })
        }
        Formula::Eq(x, y) => {
            if x == y {
                Ok(SaQuery {
                    expr: stored_tuples_expr(schema, 1, constants)?,
                    free_vars: vec![x.clone()],
                })
            } else {
                Ok(SaQuery {
                    expr: stored_tuples_expr(schema, 2, constants)?.select_eq(1, 2),
                    free_vars: vec![x.clone(), y.clone()],
                })
            }
        }
        Formula::Lt(x, y) => {
            if x == y {
                // x < x is unsatisfiable.
                let s = stored_tuples_expr(schema, 1, constants)?;
                Ok(SaQuery {
                    expr: s.clone().diff(s),
                    free_vars: vec![x.clone()],
                })
            } else {
                Ok(SaQuery {
                    expr: stored_tuples_expr(schema, 2, constants)?.select_lt(1, 2),
                    free_vars: vec![x.clone(), y.clone()],
                })
            }
        }
        Formula::EqConst(x, c) => Ok(SaQuery {
            expr: stored_tuples_expr(schema, 1, constants)?.select_const(1, c.clone()),
            free_vars: vec![x.clone()],
        }),
        Formula::Rel(r, args) => {
            let m = schema
                .arity_of(r)
                .ok_or_else(|| LogicError::BadRelationAtom {
                    relation: r.clone(),
                    message: "not in schema".into(),
                })?;
            if m != args.len() {
                return Err(LogicError::BadRelationAtom {
                    relation: r.clone(),
                    message: format!("arity {m} but {} arguments", args.len()),
                });
            }
            // Distinct variables in first-occurrence order, equality
            // selections for repeats.
            let mut distinct: Vec<Var> = Vec::new();
            let mut expr = Expr::rel(r);
            let mut first_pos: Vec<usize> = Vec::new();
            for (pos, v) in args.iter().enumerate() {
                match args[..pos].iter().position(|w| w == v) {
                    Some(first) => expr = expr.select_eq(first + 1, pos + 1),
                    None => {
                        distinct.push(v.clone());
                        first_pos.push(pos + 1);
                    }
                }
            }
            Ok(SaQuery {
                expr: expr.project(first_pos),
                free_vars: distinct,
            })
        }
        Formula::Not(g) => {
            let sub = translate_formula(g, schema, constants)?;
            let stored = stored_tuples_expr(schema, sub.free_vars.len(), constants)?;
            Ok(SaQuery {
                expr: stored.diff(sub.expr),
                free_vars: sub.free_vars,
            })
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            let sa = translate_formula(a, schema, constants)?;
            let sb = translate_formula(b, schema, constants)?;
            let mut target = sa.free_vars.clone();
            for v in &sb.free_vars {
                if !target.contains(v) {
                    target.push(v.clone());
                }
            }
            let xa = expand_to(sa.expr, &sa.free_vars, &target, schema, constants)?;
            let xb = expand_to(sb.expr, &sb.free_vars, &target, schema, constants)?;
            let expr = if matches!(f, Formula::And(..)) {
                xa.intersect(xb)
            } else {
                xa.union(xb)
            };
            Ok(SaQuery {
                expr,
                free_vars: target,
            })
        }
        Formula::Implies(..) | Formula::Iff(..) => {
            unreachable!("desugared before translation")
        }
        Formula::Exists {
            vars,
            guard_rel,
            guard_args,
            body,
        } => {
            let m = schema
                .arity_of(guard_rel)
                .ok_or_else(|| LogicError::BadRelationAtom {
                    relation: guard_rel.clone(),
                    message: "not in schema".into(),
                })?;
            if m != guard_args.len() {
                return Err(LogicError::BadRelationAtom {
                    relation: guard_rel.clone(),
                    message: format!("arity {m} but {} arguments", guard_args.len()),
                });
            }
            // Guard with repeat-equalities (full arity kept).
            let mut guard = Expr::rel(guard_rel);
            let mut distinct: Vec<Var> = Vec::new();
            let mut first_pos_of: BTreeMap<Var, usize> = BTreeMap::new();
            for (pos, v) in guard_args.iter().enumerate() {
                match first_pos_of.get(v) {
                    Some(&first) => guard = guard.select_eq(first + 1, pos + 1),
                    None => {
                        distinct.push(v.clone());
                        first_pos_of.insert(v.clone(), pos);
                    }
                }
            }
            // Filter by the body: semijoin on the body's free variables
            // (all occur in the guard by guardedness).
            let sub = translate_formula(body, schema, constants)?;
            let pairs: Vec<(usize, usize)> = sub
                .free_vars
                .iter()
                .enumerate()
                .map(|(sub_pos, v)| {
                    let gpos = first_pos_of
                        .get(v)
                        .expect("guardedness checked: body var occurs in guard");
                    (gpos + 1, sub_pos + 1)
                })
                .collect();
            let filtered = guard.semijoin(Condition::eq_pairs(pairs), sub.expr);
            // Project onto the un-quantified guard variables.
            let free: Vec<Var> = distinct
                .iter()
                .filter(|v| !vars.contains(v))
                .cloned()
                .collect();
            let cols: Vec<usize> = free.iter().map(|v| first_pos_of[v] + 1).collect();
            Ok(SaQuery {
                expr: filtered.project(cols),
                free_vars: free,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// SA= → GF
// ---------------------------------------------------------------------------

/// Fresh-variable supply. Free canonical variables are `v{n}`, bound ones
/// `b{n}` — distinct prefixes guarantee substitution never captures.
struct Fresh {
    n: usize,
}

impl Fresh {
    fn free(&mut self) -> Var {
        self.n += 1;
        format!("v{}", self.n)
    }
    fn bound(&mut self) -> Var {
        self.n += 1;
        format!("b{}", self.n)
    }
    fn frees(&mut self, k: usize) -> Vec<Var> {
        (0..k).map(|_| self.free()).collect()
    }
}

/// Translate an SA= expression into an equivalent GF formula (Theorem 8,
/// first statement): `{d̄ | D ⊨ φ_E(d̄)} = E(D)` for every database `D`.
///
/// Handles the constant-free SA= fragment plus `σᵢ₌c` selections (which
/// become `x = c` atoms); rejects `τ_c` (constant-tagging), joins, and
/// grouping with [`LogicError::UnsupportedExpression`].
pub fn sa_to_gf(e: &Expr, schema: &Schema) -> Result<GfQuery, LogicError> {
    e.arity(schema)?;
    let mut fresh = Fresh { n: 0 };
    let (formula, free_vars) = translate_expr(e, schema, &mut fresh)?;
    debug_assert!(formula.check_guarded().is_ok());
    Ok(GfQuery { formula, free_vars })
}

fn rename(f: &Formula, from: &[Var], to: &[Var]) -> Formula {
    let map: BTreeMap<Var, Var> = from.iter().cloned().zip(to.iter().cloned()).collect();
    f.rename_free(&map)
}

fn translate_expr(
    e: &Expr,
    schema: &Schema,
    fresh: &mut Fresh,
) -> Result<(Formula, Vec<Var>), LogicError> {
    match e {
        Expr::Rel(r) => {
            let k = schema.arity_of(r).expect("validated");
            let vars = fresh.frees(k);
            Ok((Formula::Rel(r.clone(), vars.clone()), vars))
        }
        Expr::Union(a, b) => {
            let (fa, va) = translate_expr(a, schema, fresh)?;
            let (fb, vb) = translate_expr(b, schema, fresh)?;
            Ok((fa.or(rename(&fb, &vb, &va)), va))
        }
        Expr::Diff(a, b) => {
            let (fa, va) = translate_expr(a, schema, fresh)?;
            let (fb, vb) = translate_expr(b, schema, fresh)?;
            Ok((fa.and(rename(&fb, &vb, &va).not()), va))
        }
        Expr::Select(sel, a) => {
            let (fa, va) = translate_expr(a, schema, fresh)?;
            let atom = match sel {
                Selection::Eq(i, j) => Formula::Eq(va[i - 1].clone(), va[j - 1].clone()),
                Selection::Lt(i, j) => Formula::Lt(va[i - 1].clone(), va[j - 1].clone()),
                Selection::EqConst(i, c) => Formula::EqConst(va[i - 1].clone(), c.clone()),
            };
            Ok((fa.and(atom), va))
        }
        Expr::Project(cols, a) => {
            let n = a.arity(schema).expect("validated");
            let (fa, va) = translate_expr(a, schema, fresh)?;
            if n == 0 {
                // cols is necessarily empty.
                return Ok((fa, vec![]));
            }
            let out_vars = fresh.frees(cols.len());
            // Disjoin over every relation R and every map f from the
            // subexpression's columns into R's positions: the output tuple,
            // being ∅-stored, sits inside some stored R-tuple.
            let mut cases: Vec<Formula> = Vec::new();
            for (rel_name, m) in schema.iter() {
                if m == 0 {
                    continue;
                }
                let mut map_idx = vec![0usize; n];
                loop {
                    cases.push(projection_case(
                        &fa, &va, cols, &out_vars, rel_name, m, &map_idx, fresh,
                    ));
                    // odometer over maps {0..n} → {0..m}
                    let mut pos = n;
                    let mut done = false;
                    loop {
                        if pos == 0 {
                            done = true;
                            break;
                        }
                        pos -= 1;
                        map_idx[pos] += 1;
                        if map_idx[pos] < m {
                            break;
                        }
                        map_idx[pos] = 0;
                    }
                    if done {
                        break;
                    }
                }
            }
            Ok((Formula::or_all(cases), out_vars))
        }
        Expr::Semijoin(theta, a, b) => {
            if !theta.is_equi() {
                return Err(LogicError::UnsupportedExpression(
                    "sa_to_gf requires equality-only semijoin conditions (SA=)".into(),
                ));
            }
            let (fa, va) = translate_expr(a, schema, fresh)?;
            let n2 = b.arity(schema).expect("validated");
            let (fb, vb) = translate_expr(b, schema, fresh)?;
            if n2 == 0 {
                // Right side is nullary: the semijoin keeps the left side
                // iff the right side is the nonempty nullary relation,
                // i.e. iff φ_b (a sentence) holds.
                return Ok((fa.and(fb), va));
            }
            let mut cases: Vec<Formula> = Vec::new();
            for (rel_name, m) in schema.iter() {
                if m == 0 {
                    continue;
                }
                let mut map_idx = vec![0usize; n2];
                loop {
                    cases.push(semijoin_case(
                        theta, &fb, &vb, &va, rel_name, m, &map_idx, fresh,
                    ));
                    let mut pos = n2;
                    let mut done = false;
                    loop {
                        if pos == 0 {
                            done = true;
                            break;
                        }
                        pos -= 1;
                        map_idx[pos] += 1;
                        if map_idx[pos] < m {
                            break;
                        }
                        map_idx[pos] = 0;
                    }
                    if done {
                        break;
                    }
                }
            }
            Ok((fa.and(Formula::or_all(cases)), va))
        }
        Expr::ConstTag(..) => Err(LogicError::UnsupportedExpression(
            "sa_to_gf does not handle constant-tagging (τ_c); the cited \
             construction covers the constant-free fragment"
                .into(),
        )),
        Expr::Join(..) => Err(LogicError::UnsupportedExpression(
            "sa_to_gf translates the semijoin algebra; lower joins first".into(),
        )),
        Expr::GroupCount(..) => Err(LogicError::UnsupportedExpression(
            "grouping/aggregation is outside first-order logic".into(),
        )),
    }
}

/// One `(R, f)` case of the projection translation:
/// `⋀ outer-equalities ∧ ∃ȳ (R(ū) ∧ φ_a[column l ↦ u_{f(l)}])` where
/// `u_{f(colsⱼ)}` is the output variable `xⱼ` (first claimant; later
/// claimants contribute outer equalities) and the unclaimed positions are
/// fresh quantified variables.
#[allow(clippy::too_many_arguments)]
fn projection_case(
    fa: &Formula,
    va: &[Var],
    cols: &[usize],
    out_vars: &[Var],
    rel_name: &str,
    m: usize,
    map_idx: &[usize],
    fresh: &mut Fresh,
) -> Formula {
    let mut guard_vars: Vec<Option<Var>> = vec![None; m];
    let mut outer_eqs: Vec<Formula> = Vec::new();
    for (j, &col) in cols.iter().enumerate() {
        let p = map_idx[col - 1];
        match &guard_vars[p] {
            None => guard_vars[p] = Some(out_vars[j].clone()),
            Some(u) => outer_eqs.push(Formula::Eq(out_vars[j].clone(), u.clone())),
        }
    }
    let mut quantified: Vec<Var> = Vec::new();
    let guard_args: Vec<Var> = guard_vars
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                let y = fresh.bound();
                quantified.push(y.clone());
                y
            })
        })
        .collect();
    let body_vars: Vec<Var> = (0..va.len())
        .map(|l| guard_args[map_idx[l]].clone())
        .collect();
    let body = rename(fa, va, &body_vars);
    let ex = Formula::Exists {
        vars: quantified,
        guard_rel: rel_name.to_string(),
        guard_args,
        body: Box::new(body),
    };
    Formula::and_all(outer_eqs.into_iter().chain([ex]))
}

/// One `(R, f)` case of the semijoin translation: the positions of `R`
/// hosting θ-constrained right columns take the corresponding **left**
/// variables (free), the rest are fresh quantified variables; the body is
/// `φ_b` with its columns read off the guard.
#[allow(clippy::too_many_arguments)]
fn semijoin_case(
    theta: &Condition,
    fb: &Formula,
    vb: &[Var],
    va: &[Var],
    rel_name: &str,
    m: usize,
    map_idx: &[usize],
    fresh: &mut Fresh,
) -> Formula {
    let mut guard_vars: Vec<Option<Var>> = vec![None; m];
    let mut outer_eqs: Vec<Formula> = Vec::new();
    for atom in theta.atoms() {
        let left_var = va[atom.left - 1].clone();
        let p = map_idx[atom.right - 1];
        match &guard_vars[p] {
            None => guard_vars[p] = Some(left_var),
            Some(u) => {
                if *u != left_var {
                    outer_eqs.push(Formula::Eq(left_var, u.clone()));
                }
            }
        }
    }
    let mut quantified: Vec<Var> = Vec::new();
    let guard_args: Vec<Var> = guard_vars
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                let y = fresh.bound();
                quantified.push(y.clone());
                y
            })
        })
        .collect();
    let body_vars: Vec<Var> = (0..vb.len())
        .map(|j| guard_args[map_idx[j]].clone())
        .collect();
    let body = rename(fb, vb, &body_vars);
    let ex = Formula::Exists {
        vars: quantified,
        guard_rel: rel_name.to_string(),
        guard_args,
        body: Box::new(body),
    };
    Formula::and_all(outer_eqs.into_iter().chain([ex]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::example7_lousy_bar;
    use crate::semantics::eval_query;
    use crate::stored::{all_c_stored_tuples, is_c_stored};
    use sj_eval::evaluate;
    use sj_storage::{Database, Relation, Tuple};

    fn beer_schema() -> Schema {
        Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)])
    }

    fn beer_db() -> Database {
        let mut db = Database::new();
        db.set(
            "Visits",
            Relation::from_str_rows(&[
                &["an", "bad bar"],
                &["bob", "good bar"],
                &["eve", "bad bar"],
            ]),
        );
        db.set(
            "Serves",
            Relation::from_str_rows(&[
                &["bad bar", "swill"],
                &["good bar", "nectar"],
                &["good bar", "swill"],
            ]),
        );
        db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
        db
    }

    /// Candidates for `{d̄ | D ⊨ φ(d̄)}`: the active domain plus sentinels
    /// outside it, to catch formulas that wrongly hold off-domain.
    fn candidates(db: &Database) -> Vec<Value> {
        let mut v = db.active_domain();
        v.push(Value::str("zzz-sentinel"));
        v.push(Value::int(-99_999));
        v
    }

    #[test]
    fn stored_tuples_expr_computes_c_stored_set() {
        let db = beer_db();
        let schema = beer_schema();
        for k in 0..=2 {
            for consts in [vec![], vec![Value::str("swill")]] {
                let e = stored_tuples_expr(&schema, k, &consts).unwrap();
                assert!(e.is_sa_eq(), "stored expr must be SA=");
                let got = evaluate(&e, &db).unwrap();
                let want = all_c_stored_tuples(&db, k, &consts);
                assert_eq!(got.tuples().to_vec(), want, "k={k}, C={consts:?}");
            }
        }
    }

    #[test]
    fn stored_tuples_expr_empty_schema_errors() {
        assert!(matches!(
            stored_tuples_expr(&Schema::empty(), 1, &[]),
            Err(LogicError::EmptySchema)
        ));
    }

    #[test]
    fn gf_to_sa_example7_equals_sa_example3() {
        let db = beer_db();
        let schema = beer_schema();
        let phi = example7_lousy_bar();
        let translated = gf_to_sa(&phi, &schema, &[]).unwrap();
        assert!(translated.expr.is_sa_eq());
        let via_gf = evaluate(&translated.expr, &db).unwrap();
        let direct = evaluate(&sj_algebra::division::example3_lousy_bar_sa(), &db).unwrap();
        assert_eq!(via_gf, direct);
        // an and eve visit the bad bar, which serves only swill (unliked).
        assert_eq!(direct, Relation::from_str_rows(&[&["an"], &["eve"]]));
    }

    #[test]
    fn gf_to_sa_matches_c_stored_semantics() {
        let db = beer_db();
        let schema = beer_schema();
        let x = || "x".to_string();
        let y = || "y".to_string();
        let formulas: Vec<Formula> = vec![
            Formula::Rel("Likes".into(), vec![x(), y()]),
            Formula::Rel("Likes".into(), vec![x(), x()]),
            Formula::Eq(x(), y()),
            Formula::Lt(x(), y()),
            Formula::EqConst(x(), Value::str("swill")),
            Formula::Rel("Serves".into(), vec![x(), y()]).not(),
            Formula::Rel("Serves".into(), vec![x(), y()])
                .and(Formula::Rel("Visits".into(), vec![y(), x()]).not()),
            Formula::Rel("Serves".into(), vec![x(), y()]).or(Formula::Likes_xy()),
            example7_lousy_bar(),
            Formula::exists(["w"], "Likes", ["w", "z"], Formula::Bool(true)),
            Formula::Rel("Visits".into(), vec![x(), y()])
                .implies(Formula::Rel("Serves".into(), vec![y(), x()])),
            Formula::Eq(x(), y()).iff(Formula::Lt(x(), y())),
        ];
        for phi in formulas {
            let consts = phi.constants();
            let q = gf_to_sa(&phi, &schema, &consts).unwrap();
            assert!(q.expr.is_sa(), "{phi}");
            let got = evaluate(&q.expr, &db).unwrap();
            // Expected: C-stored tuples satisfying φ.
            let sat = eval_query(&db, &phi, &q.free_vars, &candidates(&db));
            let want: Vec<Tuple> = sat
                .into_iter()
                .filter(|t| is_c_stored(&db, t, &consts))
                .collect();
            assert_eq!(got.tuples().to_vec(), want, "φ = {phi}");
        }
    }

    // Small helper used in the list above to keep it terse.
    impl Formula {
        #[allow(non_snake_case)]
        fn Likes_xy() -> Formula {
            Formula::Rel("Likes".into(), vec!["x".into(), "y".into()])
        }
    }

    #[test]
    fn sa_to_gf_example3_matches() {
        let db = beer_db();
        let schema = beer_schema();
        let e = sj_algebra::division::example3_lousy_bar_sa();
        let q = sa_to_gf(&e, &schema).unwrap();
        assert!(q.formula.check_guarded().is_ok());
        let want = evaluate(&e, &db).unwrap();
        let got = eval_query(&db, &q.formula, &q.free_vars, &candidates(&db));
        assert_eq!(got, want.tuples().to_vec());
    }

    #[test]
    fn sa_to_gf_handles_each_operator() {
        let db = beer_db();
        let schema = beer_schema();
        let exprs: Vec<Expr> = vec![
            Expr::rel("Likes"),
            Expr::rel("Likes").union(Expr::rel("Serves")),
            Expr::rel("Likes").diff(Expr::rel("Serves")),
            Expr::rel("Likes").project([2]),
            Expr::rel("Likes").project([2, 1]),
            Expr::rel("Likes").project([1, 1, 2]),
            Expr::rel("Likes").project(Vec::<usize>::new()),
            Expr::rel("Likes").select_eq(1, 2),
            Expr::rel("Likes").select_lt(1, 2),
            Expr::rel("Likes").select_const(2, Value::str("nectar")),
            Expr::rel("Visits").semijoin(Condition::eq(2, 1), Expr::rel("Serves")),
            Expr::rel("Visits").semijoin(Condition::always(), Expr::rel("Likes")),
            Expr::rel("Visits")
                .semijoin(Condition::eq_pairs([(2, 1), (2, 1)]), Expr::rel("Serves")),
            Expr::rel("Visits").semijoin(
                Condition::eq_pairs([(1, 1), (2, 2)]),
                Expr::rel("Likes").union(Expr::rel("Serves")),
            ),
            Expr::rel("Serves").project([1]).diff(
                Expr::rel("Serves")
                    .semijoin(Condition::eq(2, 2), Expr::rel("Likes"))
                    .project([1]),
            ),
        ];
        for e in exprs {
            let q = sa_to_gf(&e, &schema).unwrap();
            assert!(q.formula.check_guarded().is_ok(), "{e}");
            let want = evaluate(&e, &db).unwrap();
            let got = eval_query(&db, &q.formula, &q.free_vars, &candidates(&db));
            assert_eq!(got, want.tuples().to_vec(), "E = {e}");
        }
    }

    #[test]
    fn sa_to_gf_rejects_unsupported() {
        let schema = beer_schema();
        assert!(matches!(
            sa_to_gf(&Expr::rel("Likes").tag(Value::int(1)), &schema),
            Err(LogicError::UnsupportedExpression(_))
        ));
        assert!(matches!(
            sa_to_gf(
                &Expr::rel("Likes").join(Condition::eq(1, 1), Expr::rel("Serves")),
                &schema
            ),
            Err(LogicError::UnsupportedExpression(_))
        ));
        assert!(matches!(
            sa_to_gf(&Expr::rel("Likes").group_count([1]), &schema),
            Err(LogicError::UnsupportedExpression(_))
        ));
        assert!(matches!(
            sa_to_gf(
                &Expr::rel("Likes").semijoin(Condition::lt(1, 1), Expr::rel("Serves")),
                &schema
            ),
            Err(LogicError::UnsupportedExpression(_))
        ));
    }

    #[test]
    fn gf_to_sa_rejects_unguarded_and_missing_constants() {
        let schema = beer_schema();
        let bad = Formula::exists(
            ["y"],
            "Likes",
            ["x", "y"],
            Formula::Eq("x".into(), "z".into()),
        );
        assert!(matches!(
            gf_to_sa(&bad, &schema, &[]),
            Err(LogicError::Unguarded(_))
        ));
        let with_const = Formula::EqConst("x".into(), Value::int(5));
        assert!(matches!(
            gf_to_sa(&with_const, &schema, &[]),
            Err(LogicError::UnsupportedExpression(_))
        ));
    }

    #[test]
    fn full_roundtrip_sa_gf_sa() {
        // E → φ_E → E': E'(D) must equal E(D) because SA= outputs are
        // ∅-stored (Theorem 8 applied twice).
        let db = beer_db();
        let schema = beer_schema();
        let e = sj_algebra::division::example3_lousy_bar_sa();
        let q = sa_to_gf(&e, &schema).unwrap();
        let back = gf_to_sa(&q.formula, &schema, &[]).unwrap();
        let original = evaluate(&e, &db).unwrap();
        let roundtripped = evaluate(&back.expr, &db).unwrap();
        assert_eq!(original, roundtripped);
    }
}
