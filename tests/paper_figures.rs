//! Exact reproductions of every figure in the paper (experiments E1–E6 of
//! DESIGN.md). Each test asserts the *precise* relation contents the paper
//! prints, and machine-checks every claim made in the surrounding text.

use setjoins::prelude::*;
use sj_bisim::{are_bisimilar, check_bisimulation, Bisimulation, PartialIso};
use sj_core::Pump;
use sj_eval::evaluate;
use sj_logic::{is_c_stored, satisfies};
use sj_workload::figures;

// ---------------------------------------------------------------------------
// E1 — Fig. 1: set-containment join and division illustration
// ---------------------------------------------------------------------------

#[test]
fn fig1_set_containment_join_table() {
    let engine = Engine::new(figures::fig1());
    let got = engine
        .set_join("Person", "Disease", SetPredicate::Contains)
        .unwrap();
    assert_eq!(got.relation, figures::fig1_expected_join());
}

#[test]
fn fig1_division_table() {
    let engine = Engine::new(figures::fig1());
    let got = engine
        .divide("Person", "Symptoms", DivisionSemantics::Containment)
        .unwrap();
    assert_eq!(got.relation, figures::fig1_expected_division());
}

#[test]
fn fig1_every_algorithm_and_the_ra_plan_agree() {
    let db = figures::fig1();
    let person = db.get("Person").unwrap();
    let symptoms = db.get("Symptoms").unwrap();
    // Every registered division algorithm, via the engine's named choice.
    let engine = Engine::new(db.clone());
    for alg in Registry::standard().division_algorithms() {
        let out = engine
            .clone()
            .algorithm(AlgorithmChoice::named(alg.name()))
            .divide("Person", "Symptoms", DivisionSemantics::Containment)
            .unwrap();
        assert_eq!(
            out.relation,
            figures::fig1_expected_division(),
            "{}",
            out.algorithm
        );
    }
    // The quadratic RA plan computes the same table.
    let mut ra_db = Database::new();
    ra_db.set("R", person.clone());
    ra_db.set("S", symptoms.clone());
    let plan = sj_algebra::division::division_double_difference("R", "S");
    assert_eq!(
        evaluate(&plan, &ra_db).unwrap(),
        figures::fig1_expected_division()
    );
    // And the set-containment join RA plan reproduces the join table.
    let mut sj_db = Database::new();
    sj_db.set("R", person.clone());
    sj_db.set("S", db.get("Disease").unwrap().clone());
    let join_plan = sj_algebra::division::set_containment_join_plan("R", "S");
    assert_eq!(
        evaluate(&join_plan, &sj_db).unwrap(),
        figures::fig1_expected_join()
    );
}

// ---------------------------------------------------------------------------
// E2 — Fig. 2 / Example 5: C-stored tuples
// ---------------------------------------------------------------------------

#[test]
fn fig2_c_stored_examples() {
    let db = figures::fig2();
    let c = [Value::str("a")];
    assert!(is_c_stored(&db, &tuple!["b", "c"], &c));
    assert!(is_c_stored(&db, &tuple!["a", "f"], &c));
    assert!(!is_c_stored(&db, &tuple!["e", "c"], &c));
    assert!(!is_c_stored(&db, &tuple!["g"], &c));
}

// ---------------------------------------------------------------------------
// E3 — Fig. 3 / Example 12: guarded bisimulation
// ---------------------------------------------------------------------------

#[test]
fn fig3_example12_bisimulation_verifies() {
    let (a, b) = (figures::fig3_a(), figures::fig3_b());
    let i = Bisimulation::new(
        [
            (tuple![1, 2], tuple![6, 7]),
            (tuple![2, 3], tuple![7, 8]),
            (tuple![1, 2], tuple![9, 10]),
            (tuple![2, 3], tuple![10, 11]),
        ]
        .iter()
        .map(|(x, y)| PartialIso::from_tuples(x, y).unwrap()),
    );
    check_bisimulation(&a, &b, &i, &[]).unwrap_or_else(|e| panic!("{e}"));
    // The solver rediscovers the bisimilarity without being given I.
    assert!(are_bisimilar(&a, &tuple![1, 2], &b, &tuple![6, 7], &[]).is_some());
}

// ---------------------------------------------------------------------------
// E4 — Fig. 4: the pump construction
// ---------------------------------------------------------------------------

#[test]
fn fig4_pump_reproduces_d2_and_d3() {
    let db = figures::fig4();
    let (e, e1, e2) = figures::fig4_expression();
    // ā = (1,2,3) and b̄ = (3,4,5) are exactly E₁(D) and E₂(D).
    assert_eq!(
        evaluate(&e1, &db).unwrap().tuples().to_vec(),
        vec![tuple![1, 2, 3]]
    );
    assert_eq!(
        evaluate(&e2, &db).unwrap().tuples().to_vec(),
        vec![tuple![3, 4, 5]]
    );
    let pump = Pump::new(
        &db,
        &Condition::eq(3, 1),
        &tuple![1, 2, 3],
        &tuple![3, 4, 5],
        &[],
        8,
    )
    .unwrap();
    // Paper sizes: |D₂| = 9, |D₃| = 13 (four copies per step).
    assert_eq!(pump.database(2).size(), 9);
    assert_eq!(pump.database(3).size(), 13);
    // Lemma 24's guarantees, measured on the real expression.
    for n in [2usize, 3, 5, 8] {
        let dn = pump.database(n);
        assert!(dn.size() <= 2 * 5 * n);
        let out = evaluate(&e, &dn).unwrap();
        assert!(out.len() >= n * n, "n={n}: {} < {}", out.len(), n * n);
    }
}

// ---------------------------------------------------------------------------
// E5 — Fig. 5 / Proposition 26: division is not in SA=
// ---------------------------------------------------------------------------

#[test]
fn fig5_division_differs_but_databases_bisimilar() {
    let (a, b) = (figures::fig5_a(), figures::fig5_b());
    // R ÷ S = {1, 2} on A …
    let div_a = Engine::new(a.clone())
        .divide("R", "S", DivisionSemantics::Containment)
        .unwrap();
    assert_eq!(div_a.relation, Relation::from_int_rows(&[&[1], &[2]]));
    // … and ∅ on B, in both variants.
    let eb = Engine::new(b.clone());
    for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
        assert!(eb.divide("R", "S", sem).unwrap().relation.is_empty());
    }
    // Yet A,1 ∼ B,1: no SA= expression can express division (Cor. 14).
    let cert = are_bisimilar(&a, &tuple![1], &b, &tuple![1], &[]).expect("bisimilar");
    check_bisimulation(&a, &b, &cert, &[]).unwrap();
}

#[test]
fn fig5_proof_set_i_verifies() {
    // The proof's I: {1→1} ∪ {ā→b̄ : same-relation tuple pairs}.
    let (a, b) = (figures::fig5_a(), figures::fig5_b());
    let mut isos = vec![PartialIso::from_tuples(&tuple![1], &tuple![1]).unwrap()];
    for rel in ["R", "S"] {
        for ta in a.get(rel).unwrap() {
            for tb in b.get(rel).unwrap() {
                isos.push(PartialIso::from_tuples(ta, tb).unwrap());
            }
        }
    }
    check_bisimulation(&a, &b, &Bisimulation::new(isos), &[]).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn fig5_set_join_variant_with_tag_column() {
    // "To handle the set join version … insert a column into relation S
    // with always the same value 4": the bisimulation survives.
    let (mut a, mut b) = (figures::fig5_a(), figures::fig5_b());
    let tag = |db: &Database| {
        Relation::from_tuples(2, db.get("S").unwrap().iter().map(|t| tuple![4].concat(t))).unwrap()
    };
    let (sa, sb) = (tag(&a), tag(&b));
    a.set("S", sa);
    b.set("S", sb);
    assert!(are_bisimilar(&a, &tuple![1], &b, &tuple![1], &[]).is_some());
    // The set-containment join is nonempty on A, empty on B.
    let join = |db: &Database| {
        Engine::new(db.clone())
            .set_join("R", "S", SetPredicate::Contains)
            .unwrap()
            .relation
    };
    assert!(!join(&a).is_empty());
    assert!(join(&b).is_empty());
}

// ---------------------------------------------------------------------------
// E6 — Fig. 6 / Section 4.1: the cyclic beer-drinkers query
// ---------------------------------------------------------------------------

#[test]
fn fig6_query_differs_but_databases_bisimilar() {
    let (a, b) = (figures::fig6_a(), figures::fig6_b());
    let q = sj_algebra::division::cyclic_beer_query_ra();
    // In A, Alex visits a bar serving a beer he likes.
    assert_eq!(
        evaluate(&q, &a).unwrap(),
        Relation::from_str_rows(&[&["alex"]])
    );
    // In B, nobody does.
    assert!(evaluate(&q, &b).unwrap().is_empty());
    // Yet (A, alex) ∼ (B, alex).
    let cert = are_bisimilar(&a, &tuple!["alex"], &b, &tuple!["alex"], &[]).expect("bisimilar");
    check_bisimulation(&a, &b, &cert, &[]).unwrap();
}

#[test]
fn fig6_proof_set_i_verifies() {
    let (a, b) = (figures::fig6_a(), figures::fig6_b());
    let mut isos = vec![PartialIso::from_tuples(&tuple!["alex"], &tuple!["alex"]).unwrap()];
    for rel in ["Visits", "Serves", "Likes"] {
        for ta in a.get(rel).unwrap() {
            for tb in b.get(rel).unwrap() {
                isos.push(PartialIso::from_tuples(ta, tb).unwrap());
            }
        }
    }
    check_bisimulation(&a, &b, &Bisimulation::new(isos), &[]).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn fig6_gf_formula_invariance() {
    // Proposition 13 concretely: Example 7's GF formula (the lousy-bar
    // query) evaluates identically on alex in both Fig. 6 databases.
    let (a, b) = (figures::fig6_a(), figures::fig6_b());
    let phi = sj_logic::formula::example7_lousy_bar();
    let env: sj_logic::Assignment = [("x".to_string(), Value::str("alex"))]
        .into_iter()
        .collect();
    assert_eq!(satisfies(&a, &phi, &env), satisfies(&b, &phi, &env));
}
