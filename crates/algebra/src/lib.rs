//! # sj-algebra — relational & semijoin algebra expressions
//!
//! AST, validation, parsing, printing and transformations for the algebras
//! of Leinders & Van den Bussche, *"On the complexity of division and set
//! joins in the relational algebra"*:
//!
//! * **RA** (Definition 1): union, difference, projection, selection
//!   (`σᵢ₌ⱼ`, `σᵢ<ⱼ`), constant-tagging `τ_c`, and θ-joins with
//!   conjunctions over `{=, ≠, <, >}`. RA= is the equality-join fragment.
//! * **SA** (Definition 2): the join replaced by the semijoin `⋉θ`.
//!   SA= is the equality fragment — the paper's characterization of the
//!   *linear* RA queries (Corollary 19).
//! * **Extended RA** (Section 5): grouping `γ` with a count aggregate,
//!   in which division has a linear expression.
//!
//! Modules:
//!
//! * [`expr`] — the AST ([`expr::Expr`]), builders, arity checking,
//!   fragment predicates, subexpression traversal.
//! * [`condition`] — join/semijoin conditions θ and the Definition 20
//!   machinery (`constrainedₗ` / `uncₗ`).
//! * [`display`] / [`mod@parse`] — round-tripping text forms.
//! * [`division`] — the classical division / set-join plans whose
//!   complexity the paper analyzes, and the running-example queries.
//! * [`transform`] — semijoin → join lowering (the linearity note under
//!   Theorem 18).
//! * [`joingraph`] — flattening join chains into (leaves, predicate
//!   edges) graphs and rebuilding them in any association order — the
//!   substrate of the cost-based join-order search in `sj-eval`.

pub mod condition;
pub mod display;
pub mod division;
pub mod error;
pub mod expr;
pub mod joingraph;
pub mod optimize;
pub mod parse;
pub mod transform;

pub use condition::{Atom, CompOp, Condition};
pub use display::{to_text, to_unicode};
pub use error::AlgebraError;
pub use expr::{Expr, Selection};
pub use joingraph::{CyclePos, JoinEdge, JoinGraph, OrderTree};
pub use optimize::{optimize, OptimizeLevel, Pass, Pipeline};
pub use parse::parse;
pub use transform::semijoins_to_joins_checked;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sj_storage::Value;

    /// Strategy for arbitrary conditions with columns in 1..=4.
    fn arb_condition() -> impl Strategy<Value = Condition> {
        proptest::collection::vec(
            (1usize..=4, 1usize..=4, 0u8..4).prop_map(|(l, r, o)| {
                let op = match o {
                    0 => CompOp::Eq,
                    1 => CompOp::Neq,
                    2 => CompOp::Lt,
                    _ => CompOp::Gt,
                };
                Atom {
                    left: l,
                    op,
                    right: r,
                }
            }),
            0..4,
        )
        .prop_map(Condition::new)
    }

    /// Strategy for arbitrary expressions over relations R, S (arity 2).
    /// All column references are drawn from 1..=2 so the expression is
    /// well-formed as long as sub-arities cooperate; we don't force
    /// validity — the round-trip property holds regardless.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![Just(Expr::rel("R")), Just(Expr::rel("S"))];
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
                (proptest::collection::vec(1usize..=2, 0..3), inner.clone())
                    .prop_map(|(cols, a)| a.project(cols)),
                (1usize..=2, 1usize..=2, inner.clone()).prop_map(|(i, j, a)| a.select_eq(i, j)),
                (1usize..=2, 1usize..=2, inner.clone()).prop_map(|(i, j, a)| a.select_lt(i, j)),
                (any::<i64>(), inner.clone()).prop_map(|(c, a)| a.tag(Value::int(c))),
                ("[a-z ]{0,8}", inner.clone()).prop_map(|(s, a)| a.tag(Value::str(s))),
                (arb_condition(), inner.clone(), inner.clone()).prop_map(|(t, a, b)| a.join(t, b)),
                (arb_condition(), inner.clone(), inner.clone())
                    .prop_map(|(t, a, b)| a.semijoin(t, b)),
                (proptest::collection::vec(1usize..=2, 0..3), inner)
                    .prop_map(|(cols, a)| a.group_count(cols)),
            ]
        })
    }

    proptest! {
        /// parse(to_text(e)) == e for every expression.
        #[test]
        fn parse_print_roundtrip(e in arb_expr()) {
            let text = to_text(&e);
            let parsed = parse(&text).unwrap();
            prop_assert_eq!(parsed, e);
        }

        /// Subexpression count equals node count; pre-order starts at root.
        #[test]
        fn subexpr_invariants(e in arb_expr()) {
            let subs = e.subexpressions();
            prop_assert_eq!(subs.len(), e.node_count());
            prop_assert_eq!(subs[0], &e);
            prop_assert!(e.depth() <= e.node_count());
        }

        /// Fragment predicates are consistent: SA= ⊆ SA, RA= ⊆ RA, and
        /// an extended expression is in neither RA nor SA.
        #[test]
        fn fragment_consistency(e in arb_expr()) {
            if e.is_sa_eq() { prop_assert!(e.is_sa()); }
            if e.is_ra_eq() { prop_assert!(e.is_ra()); }
            if e.is_extended() {
                prop_assert!(!e.is_ra() && !e.is_sa());
            }
        }

        /// Swapping a condition twice is the identity.
        #[test]
        fn condition_swap_involution(c in arb_condition()) {
            prop_assert_eq!(c.swapped().swapped(), c);
        }

        /// constrained ∪ unc partitions {1..arity}.
        #[test]
        fn constrained_unc_partition(c in arb_condition()) {
            let arity = 4usize;
            let mut all: Vec<usize> = c.constrained_left();
            all.extend(c.unconstrained_left(arity));
            all.sort_unstable();
            let expect: Vec<usize> = (1..=arity).collect();
            prop_assert_eq!(all, expect);
        }
    }
}
