//! Operator micro-benchmarks (the DESIGN.md ablation on set-semantics
//! dedup cost): each physical operator at a fixed scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::{Condition, Selection};
use sj_eval::ops;
use sj_storage::{Relation, Tuple};
use sj_workload::SplitMix64;
use std::time::Duration;

fn random_relation(n: usize, domain: i64, seed: u64) -> Relation {
    let mut rng = SplitMix64::new(seed);
    Relation::from_tuples(
        2,
        (0..n).map(|_| Tuple::from_ints(&[rng.range_i64(1, domain), rng.range_i64(1, domain)])),
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [1024usize, 8192] {
        let r = random_relation(n, n as i64 / 4, 1);
        let s = random_relation(n, n as i64 / 4, 2);
        group.bench_with_input(BenchmarkId::new("equi_join", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| ops::join(r, s, &Condition::eq(2, 1)))
        });
        group.bench_with_input(BenchmarkId::new("semijoin", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| ops::semijoin(r, s, &Condition::eq(2, 1)))
        });
        group.bench_with_input(BenchmarkId::new("union", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| r.union(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("difference", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| r.difference(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("project_dedup", n), &r, |b, r| {
            b.iter(|| ops::project(r, &[2]))
        });
        group.bench_with_input(BenchmarkId::new("select_lt", n), &r, |b, r| {
            b.iter(|| ops::select(r, &Selection::Lt(1, 2)))
        });
        group.bench_with_input(BenchmarkId::new("group_count", n), &r, |b, r| {
            b.iter(|| ops::group_count(r, &[1]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
