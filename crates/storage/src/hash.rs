//! Fast non-cryptographic hashing.
//!
//! The standard library's default SipHash 1-3 is robust against HashDoS but
//! slow for the short keys (small tuples, single values, integer ids) that
//! dominate this workspace. We implement the FxHash algorithm (the Firefox /
//! rustc hash): a simple multiply-xor rolling hash, excellent for short keys.
//! Inputs here are experiment-controlled, never adversarial, so HashDoS
//! resistance is not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash rotation-multiply constant (from rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash hasher: `state = (state.rotate_left(5) ^ word) * SEED` per
/// 8-byte word. Not DoS-resistant; do not expose to untrusted input.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash one hashable value to a `u64` with FxHash. Convenience for
/// signature computations in the set-join algorithms.
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Tuple, Value};

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_eq!(fx_hash_one(&tuple![1, 2]), fx_hash_one(&tuple![1, 2]));
    }

    #[test]
    fn distinguishes_common_inputs() {
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&tuple![1, 2]), fx_hash_one(&tuple![2, 1]));
        assert_ne!(fx_hash_one(&Value::int(1)), fx_hash_one(&Value::str("1")));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Tuple, usize> = FxHashMap::default();
        m.insert(tuple![1, 2], 7);
        assert_eq!(m.get(&tuple![1, 2]), Some(&7));
        let mut s: FxHashSet<Value> = FxHashSet::default();
        s.insert(Value::int(1));
        assert!(s.contains(&Value::int(1)));
        assert!(!s.contains(&Value::int(2)));
    }

    #[test]
    fn bytes_tail_handling() {
        // Inputs differing only in a sub-word tail byte must hash apart.
        assert_ne!(fx_hash_one(&"abcdefghi"), fx_hash_one(&"abcdefghj"));
        assert_ne!(fx_hash_one(&"a"), fx_hash_one(&"b"));
    }

    #[test]
    fn spread_over_buckets() {
        // Sanity: 1000 consecutive integers should hit many distinct hashes.
        let mut hs = FxHashSet::default();
        for i in 0..1000u64 {
            hs.insert(fx_hash_one(&i));
        }
        assert_eq!(hs.len(), 1000);
    }
}
