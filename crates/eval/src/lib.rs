//! # sj-eval — instrumented evaluation of algebra expressions
//!
//! Evaluators for the RA / SA / extended-RA expressions of `sj-algebra`
//! over `sj-storage` databases:
//!
//! * [`evaluate`] — the plain evaluator: hash equi-joins/semijoins with
//!   residual filters, merge-based set operations, hash grouping.
//! * [`instrumented::evaluate_instrumented`] — the same evaluation, but
//!   additionally reporting the cardinality of **every subexpression**.
//!   This is the measurement instrument behind the paper's Definition 16
//!   ("linear" = every intermediate O(n); "quadratic" = some intermediate
//!   Ω(n²)) and is used by all dichotomy experiments.
//! * [`reference::evaluate_reference`] — a naive nested-loop transliteration
//!   of the paper's semantics, used to cross-validate the optimized
//!   operators in unit and property tests.
//! * [`plan::evaluate_planned`] — the physical planner: the expression is
//!   hash-consed into an operator DAG so each **distinct** subexpression
//!   is evaluated exactly once, leaf relations are scanned zero-copy via
//!   `Arc` handles, and joins/semijoins whose equality keys align with
//!   the canonical sort order run as sort-free merges. See [`plan`] for
//!   the design; [`plan::explain_plan`] renders the chosen operators.
//! * [`engine::Engine`] — **the recommended entry point**: one facade
//!   over all of the above plus the `sj-setjoin` algorithm registry.
//!   Optimizer pipeline, evaluation strategy, instrumentation, and
//!   set-join algorithm selection are builder configuration; queries
//!   return a single [`engine::QueryOutput`]. The free functions above
//!   remain as thin direct wrappers around the same machinery.

pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod instrumented;
pub mod joinorder;
pub mod kernel;
pub mod ops;
pub mod ops_vec;
pub mod par;
pub mod plain;
pub mod plan;
pub mod profile;
pub mod reference;

pub use engine::{
    AlgorithmChoice, Engine, Instrument, Query, QueryOutput, Report, SetOpOutput, StatsMode,
    Strategy,
};
pub use error::EvalError;
pub use exec::Execution;
pub use explain::explain;
pub use instrumented::{evaluate_instrumented, EvalReport, NodeStat};
pub use joinorder::{JoinOrder, DP_MAX_RELATIONS};
pub use kernel::{multiway_join, MultiwayLeaf, MultiwaySpec};
pub use ops::PartitionStat;
pub use par::Parallelism;
pub use plain::evaluate;
pub use plan::{
    evaluate_planned, evaluate_planned_instrumented, explain_plan, PhysOp, PhysicalPlan,
    PlannedReport, Q_ERROR_BUDGET,
};
pub use profile::{ProfileNode, QueryProfile};
pub use reference::evaluate_reference;

/// Most-used items in one import.
pub mod prelude {
    pub use crate::engine::{
        AlgorithmChoice, Engine, Instrument, Query, QueryOutput, Report, SetOpOutput, StatsMode,
        Strategy,
    };
    pub use crate::exec::Execution;
    pub use crate::instrumented::{evaluate_instrumented, EvalReport, NodeStat};
    pub use crate::joinorder::JoinOrder;
    pub use crate::ops::PartitionStat;
    pub use crate::par::Parallelism;
    pub use crate::plain::evaluate;
    pub use crate::plan::{evaluate_planned, evaluate_planned_instrumented, PlannedReport};
    pub use crate::profile::{ProfileNode, QueryProfile};
    pub use crate::reference::evaluate_reference;
}

#[cfg(test)]
mod proptests {
    // `engine::Strategy` would shadow proptest's `Strategy` trait under a
    // glob, so the evaluator entry points are imported explicitly.
    use super::{
        evaluate, evaluate_instrumented, evaluate_planned, evaluate_planned_instrumented,
        evaluate_reference,
    };
    use proptest::prelude::*;
    use sj_algebra::{Atom, CompOp, Condition, Expr};
    use sj_storage::{Database, Relation, Tuple, Value};

    fn arb_relation(arity: usize) -> impl Strategy<Value = Relation> {
        proptest::collection::vec(proptest::collection::vec(0i64..6, arity), 0..12).prop_map(
            move |rows| {
                Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r)))
                    .unwrap()
            },
        )
    }

    fn arb_db() -> impl Strategy<Value = Database> {
        (arb_relation(2), arb_relation(2), arb_relation(1)).prop_map(|(r, s, t)| {
            let mut db = Database::new();
            db.set("R", r);
            db.set("S", s);
            db.set("T", t);
            db
        })
    }

    fn arb_condition() -> impl Strategy<Value = Condition> {
        proptest::collection::vec(
            (1usize..=2, 1usize..=2, 0u8..4).prop_map(|(l, r, o)| Atom {
                left: l,
                op: match o {
                    0 => CompOp::Eq,
                    1 => CompOp::Neq,
                    2 => CompOp::Lt,
                    _ => CompOp::Gt,
                },
                right: r,
            }),
            0..3,
        )
        .prop_map(Condition::new)
    }

    /// Arbitrary **valid** arity-2 expressions over R, S (arity 2).
    fn arb_expr2() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![Just(Expr::rel("R")), Just(Expr::rel("S"))];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
                (1usize..=2, 1usize..=2, inner.clone()).prop_map(|(i, j, a)| a.select_eq(i, j)),
                (1usize..=2, 1usize..=2, inner.clone()).prop_map(|(i, j, a)| a.select_lt(i, j)),
                (0i64..6, inner.clone()).prop_map(|(c, a)| a.tag(Value::int(c)).project([1, 2])),
                (arb_condition(), inner.clone(), inner.clone())
                    .prop_map(|(t, a, b)| a.join(t, b).project([1, 2])),
                (arb_condition(), inner.clone(), inner.clone())
                    .prop_map(|(t, a, b)| a.semijoin(t, b)),
                inner.clone().prop_map(|a| a.project([2, 1])),
                inner.clone().prop_map(|a| a.group_count([1])),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Optimized and reference evaluators agree on random expressions
        /// and databases.
        #[test]
        fn optimized_matches_reference(e in arb_expr2(), db in arb_db()) {
            let fast = evaluate(&e, &db).unwrap();
            let slow = evaluate_reference(&e, &db).unwrap();
            prop_assert_eq!(fast, slow);
        }

        /// The instrumented evaluator computes the same result and one stat
        /// per AST node.
        #[test]
        fn instrumented_consistent(e in arb_expr2(), db in arb_db()) {
            let plain = evaluate(&e, &db).unwrap();
            let report = evaluate_instrumented(&e, &db).unwrap();
            prop_assert_eq!(&report.result, &plain);
            prop_assert_eq!(report.nodes.len(), e.node_count());
            prop_assert_eq!(report.nodes[0].cardinality, plain.len());
            prop_assert!(report.max_intermediate() >= plain.len());
        }

        /// Semijoin is equivalent to join + project (the defining identity
        /// used throughout the paper).
        #[test]
        fn semijoin_join_identity(t in arb_condition(), db in arb_db()) {
            let sj = Expr::rel("R").semijoin(t.clone(), Expr::rel("S"));
            let jp = Expr::rel("R").join(t, Expr::rel("S")).project([1, 2]);
            prop_assert_eq!(evaluate(&sj, &db).unwrap(), evaluate(&jp, &db).unwrap());
        }

        /// Schema-aware semijoin→join lowering preserves semantics.
        #[test]
        fn semijoin_lowering_semantics(e in arb_expr2(), db in arb_db()) {
            let lowered = sj_algebra::semijoins_to_joins_checked(&e, &db.schema()).unwrap();
            prop_assert_eq!(evaluate(&e, &db).unwrap(), evaluate(&lowered, &db).unwrap());
        }

        /// The planned (DAG-memoizing) evaluator agrees with the naive
        /// evaluator on random expressions and databases.
        #[test]
        fn planned_matches_naive(e in arb_expr2(), db in arb_db()) {
            prop_assert_eq!(
                evaluate_planned(&e, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "evaluate_planned({}) diverged", e
            );
        }

        /// Planning the *optimized* expression still agrees with naively
        /// evaluating the original — the optimizer and the planner
        /// compose without changing semantics.
        #[test]
        fn optimized_planned_matches_naive(e in arb_expr2(), db in arb_db()) {
            let opt = sj_algebra::optimize(&e, &db.schema()).unwrap();
            prop_assert_eq!(
                evaluate_planned(&opt, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "optimize({}) = {} then plan diverged", e, opt
            );
        }

        /// The planned instrumented report is consistent: same result, one
        /// stat per *distinct* subexpression, never more stats than tree
        /// nodes.
        #[test]
        fn planned_instrumented_consistent(e in arb_expr2(), db in arb_db()) {
            let plain = evaluate(&e, &db).unwrap();
            let report = evaluate_planned_instrumented(&e, &db).unwrap();
            prop_assert_eq!(&report.result, &plain);
            prop_assert!(report.nodes.len() <= e.node_count());
            prop_assert_eq!(report.expr_nodes, e.node_count());
            // Occurrences over plan nodes sum to the tree size.
            prop_assert_eq!(report.occurrences.iter().sum::<usize>(), e.node_count());
            prop_assert_eq!(report.nodes.last().unwrap().cardinality, plain.len());
        }

        /// The optimizer (selection pushdown, projection pruning, semijoin
        /// reduction) preserves semantics on arbitrary expressions.
        #[test]
        fn optimizer_preserves_semantics(e in arb_expr2(), db in arb_db()) {
            let opt = sj_algebra::optimize(&e, &db.schema()).unwrap();
            prop_assert_eq!(
                evaluate(&e, &db).unwrap(),
                evaluate(&opt, &db).unwrap(),
                "optimize({}) = {} changed semantics", e, opt
            );
        }

        /// Semijoin reduction never increases the max intermediate size.
        #[test]
        fn optimizer_never_hurts_intermediates(e in arb_expr2(), db in arb_db()) {
            let opt = sj_algebra::optimize(&e, &db.schema()).unwrap();
            let before = evaluate_instrumented(&e, &db).unwrap().max_intermediate();
            let after = evaluate_instrumented(&opt, &db).unwrap().max_intermediate();
            prop_assert!(after <= before, "{}: {} -> {} ({} tuples -> {})",
                e, e, opt, before, after);
        }

        /// A single semijoin never outgrows its left operand — the
        /// "linear by definition" property of SA (Section 1).
        #[test]
        fn semijoins_bounded_by_operand(t in arb_condition(), db in arb_db()) {
            let e = Expr::rel("R").semijoin(t, Expr::rel("S"));
            let report = evaluate_instrumented(&e, &db).unwrap();
            let r_size = db.get("R").unwrap().len();
            prop_assert!(report.result.len() <= r_size);
        }
    }
}
