//! The set-join half of Proposition 26, measured: the RA plan for the
//! set-containment join has quadratic intermediates on linear-size
//! families, while the direct algorithms and the set-equality hash join
//! behave as the paper's footnote 1 describes.

use setjoins::prelude::*;
use sj_core::{analyze, log_log_slope, measure_growth};
use sj_eval::evaluate;
use sj_workload::{ElementDist, SetJoinWorkload, SetSizeDist};

/// A linear-size set-join family: k left groups and k right groups with
/// constant-size sets.
fn setjoin_series(scales: &[usize]) -> Vec<Database> {
    scales
        .iter()
        .map(|&k| {
            let w = SetJoinWorkload {
                r_groups: k,
                s_groups: k,
                set_size: SetSizeDist::Fixed(3),
                domain: 4 * k,
                elements: ElementDist::Uniform,
                seed: 0x5E7 ^ k as u64,
            };
            let (r, s) = w.generate();
            let mut db = Database::new();
            db.set("R", r);
            db.set("S", s);
            db
        })
        .collect()
}

#[test]
fn set_containment_ra_plan_is_quadratic() {
    let series = setjoin_series(&[8, 16, 32, 64]);
    let plan = sj_algebra::division::set_containment_join_plan("R", "S");
    let report = measure_growth(&plan, &series).unwrap();
    assert!(
        report.exponent > 1.7,
        "set-containment RA plan exponent {}",
        report.exponent
    );
    // The analyzer agrees, with a witness.
    let schema = Schema::new([("R", 2), ("S", 2)]);
    let verdict = analyze(&plan, &schema, &series[..1]).unwrap();
    assert!(verdict.is_quadratic());
}

#[test]
fn set_equality_ra_plan_is_quadratic_but_hash_join_is_not() {
    let series = setjoin_series(&[8, 16, 32, 64]);
    let plan = sj_algebra::division::set_equality_join_plan("R", "S");
    let report = measure_growth(&plan, &series).unwrap();
    assert!(report.exponent > 1.7, "exponent {}", report.exponent);
    // Footnote 1: with sorting/hashing tricks, set-equality join runs in
    // O(n log n) + output. Measure the hash join's *work* via timing
    // proxy: its output sizes on this family stay linear while the RA
    // plan's intermediates blow up.
    let points: Vec<(f64, f64)> = series
        .iter()
        .map(|db| {
            let out =
                sj_setjoin::hash_set_equality_join(db.get("R").unwrap(), db.get("S").unwrap());
            (db.size() as f64, (out.len() + 1) as f64)
        })
        .collect();
    let slope = log_log_slope(&points);
    assert!(slope < 1.3, "equality-join output slope {slope}");
}

#[test]
fn all_set_join_algorithms_agree_at_scale() {
    for k in [32usize, 128] {
        let w = SetJoinWorkload {
            r_groups: k,
            s_groups: k,
            set_size: SetSizeDist::Uniform(2, 6),
            domain: 48,
            elements: ElementDist::Zipf(0.8),
            seed: k as u64,
        };
        let (r, s) = w.generate();
        let want = sj_setjoin::nested_loop_set_join(&r, &s, SetPredicate::Contains);
        assert_eq!(
            sj_setjoin::signature_set_join(&r, &s, SetPredicate::Contains),
            want
        );
        assert_eq!(
            sj_setjoin::wide_signature_set_join(&r, &s, SetPredicate::Contains, 4),
            want
        );
        assert_eq!(sj_setjoin::inverted_index_set_join(&r, &s), want);
        // And the RA plan.
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        let plan = sj_algebra::division::set_containment_join_plan("R", "S");
        assert_eq!(evaluate(&plan, &db).unwrap(), want);
    }
}

#[test]
fn intersection_join_is_just_an_equijoin() {
    // The paper's remark, at scale: the ∩≠∅ set join equals
    // π_{A,C}(R ⋈_{B=D} S) — evaluated through the RA evaluator.
    let w = SetJoinWorkload {
        r_groups: 100,
        s_groups: 80,
        set_size: SetSizeDist::Uniform(1, 5),
        domain: 64,
        elements: ElementDist::Uniform,
        seed: 77,
    };
    let (r, s) = w.generate();
    let direct = sj_setjoin::intersect_join_via_equijoin(&r, &s);
    let mut db = Database::new();
    db.set("R", r.clone());
    db.set("S", s.clone());
    let plan = Expr::rel("R")
        .join(Condition::eq(2, 2), Expr::rel("S"))
        .project([1, 3]);
    assert_eq!(evaluate(&plan, &db).unwrap(), direct);
    assert_eq!(
        sj_setjoin::nested_loop_set_join(&r, &s, SetPredicate::IntersectsNonempty),
        direct
    );
}

#[test]
fn generalized_division_on_workload() {
    // Composite-key division agrees with filtering per key prefix.
    let w = SetJoinWorkload {
        r_groups: 60,
        s_groups: 1,
        set_size: SetSizeDist::Uniform(2, 8),
        domain: 32,
        elements: ElementDist::Uniform,
        seed: 5,
    };
    let (r2, _) = w.generate();
    // Lift to arity 3 by tagging a payload column, then divide on col 1
    // with values in col 2.
    let r3 = Relation::from_tuples(3, r2.iter().map(|t| t.tag(Value::int(42)))).unwrap();
    let divisor = Relation::unary(r2.iter().take(3).map(|t| t[1].clone()));
    let via_general =
        sj_setjoin::divide_general(&r3, &[1], 2, &divisor, DivisionSemantics::Containment);
    let via_binary = sj_setjoin::divide(&r2, &divisor, DivisionSemantics::Containment);
    assert_eq!(via_general, via_binary);
}
