//! # sj-bench — experiment harness
//!
//! Shared plumbing for the Criterion benches (`benches/`) and the
//! `experiments` binary (`src/bin/experiments.rs`), which regenerates
//! every table and figure of the reproduction as text and CSV (under
//! `results/`).

use sj_storage::Database;
use std::io::Write;
use std::path::PathBuf;

/// The standard scale points used across the experiments.
pub const SCALES: [usize; 5] = [16, 32, 64, 128, 256];

/// Larger scales for the timing benchmarks of the direct algorithms.
pub const TIMING_SCALES: [usize; 4] = [256, 1024, 4096, 16384];

/// The adversarial division series at the standard scales.
pub fn standard_adversarial_series() -> Vec<Database> {
    sj_workload::adversarial_division_series(&SCALES, 0xC0FFEE)
}

/// A beer-drinkers workload (Visits/Serves/Likes over k drinkers/bars/
/// beers) with a sparse cyclic like-pattern, used by the semijoin
/// experiments; `|D| ≈ 4k`.
pub fn beer_database(k: i64, seed: u64) -> Database {
    use sj_storage::{Relation, Tuple};
    let mut rng = sj_workload::SplitMix64::new(seed);
    let mut db = Database::new();
    let visits: Vec<Tuple> = (0..k)
        .map(|i| Tuple::from_ints(&[i, 1000 + rng.range_i64(0, k - 1)]))
        .collect();
    let serves: Vec<Tuple> = (0..k)
        .flat_map(|i| {
            [
                Tuple::from_ints(&[1000 + i, 2000 + i]),
                Tuple::from_ints(&[1000 + i, 2000 + (i + 1) % k]),
            ]
        })
        .collect();
    let likes: Vec<Tuple> = (0..k)
        .map(|i| Tuple::from_ints(&[i, 2000 + rng.range_i64(0, k - 1)]))
        .collect();
    db.set("Visits", Relation::from_tuples(2, visits).unwrap());
    db.set("Serves", Relation::from_tuples(2, serves).unwrap());
    db.set("Likes", Relation::from_tuples(2, likes).unwrap());
    db
}

/// The adversarial beer workload for the cyclic query of Section 4.1:
/// every drinker visits the same bar, which serves `k` beers — the
/// `Visits ⋈ Serves` intermediate is forced to `k²` while `|D| = 3k`.
/// The lousy-bar query (in SA=) stays linear even here.
pub fn beer_database_adversarial(k: i64) -> Database {
    use sj_storage::{Relation, Tuple};
    let mut db = Database::new();
    let visits: Vec<Tuple> = (0..k).map(|i| Tuple::from_ints(&[i, 1000])).collect();
    let serves: Vec<Tuple> = (0..k)
        .map(|j| Tuple::from_ints(&[1000, 2000 + j]))
        .collect();
    let likes: Vec<Tuple> = (0..k)
        .map(|i| Tuple::from_ints(&[i, 2000 + (i + 7) % k]))
        .collect();
    db.set("Visits", Relation::from_tuples(2, visits).unwrap());
    db.set("Serves", Relation::from_tuples(2, serves).unwrap());
    db.set("Likes", Relation::from_tuples(2, likes).unwrap());
    db
}

/// A simple CSV writer into `results/<name>.csv` at the workspace root.
pub struct CsvSink {
    path: PathBuf,
    rows: Vec<String>,
}

impl CsvSink {
    /// Start a CSV with a header row.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let dir = workspace_results_dir();
        CsvSink {
            path: dir.join(format!("{name}.csv")),
            rows: vec![header.join(",")],
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.join(","));
    }

    /// Write the file (creating `results/` if needed); returns the path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(&self.path)?;
        writeln!(f, "{}", self.rows.join("\n"))?;
        Ok(self.path)
    }
}

fn workspace_results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of this crate is <root>/crates/bench.
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Milliseconds (fractional) for one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Median-of-`reps` timing in milliseconds.
pub fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps).map(|_| time_once(&mut f).1).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beer_database_shape() {
        let db = beer_database(50, 1);
        assert_eq!(db.get("Serves").unwrap().len(), 100);
        assert!(db.get("Visits").unwrap().len() <= 50);
        assert_eq!(db.schema().arity_of("Likes"), Some(2));
        // Deterministic.
        assert_eq!(db, beer_database(50, 1));
        assert_ne!(db, beer_database(50, 2));
    }

    #[test]
    fn series_builders() {
        let s = standard_adversarial_series();
        assert_eq!(s.len(), SCALES.len());
        assert!(s[0].size() < s[4].size());
    }

    #[test]
    fn timing_helpers() {
        let (v, ms) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert!(time_median(3, || ()) >= 0.0);
    }

    #[test]
    fn csv_sink_writes() {
        let mut sink = CsvSink::new("test_sink", &["a", "b"]);
        sink.row(&["1".into(), "2".into()]);
        let path = sink.finish().unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }
}
