//! Aggregate serving metrics: lock-free counters every worker updates
//! and any thread can snapshot.
//!
//! Besides the cache hit counters, the server folds each cold query's
//! [`PlannedReport::max_q_error`] into
//! [`ServerStats::max_q_error_seen`] — the worst cardinality-estimation
//! error any served query has exhibited. This surfaces cost-model drift
//! *in serving*, not just in per-query `render()` output: a dashboard
//! reading the stats snapshot sees estimator trouble the moment a hot
//! workload starts hitting it.
//!
//! [`PlannedReport::max_q_error`]: sj_eval::PlannedReport::max_q_error

use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate counters for one [`crate::Server`]. All methods are
/// thread-safe; counters only ever increase.
#[derive(Debug, Default)]
pub struct ServerStats {
    queries: AtomicU64,
    plan_hits: AtomicU64,
    result_hits: AtomicU64,
    writes: AtomicU64,
    analyzes: AtomicU64,
    rejected: AtomicU64,
    /// Bit pattern of the largest q-error seen (positive f64s compare
    /// correctly as integers; 0 bits = nothing recorded yet).
    max_q_error_seen: AtomicU64,
}

impl ServerStats {
    pub(crate) fn bump_queries(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_plan_hits(&self) {
        self.plan_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_result_hits(&self) {
        self.result_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_writes(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_analyzes(&self) {
        self.analyzes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one query's worst per-node q-error into the running
    /// maximum. Q-errors are ≥ 1.0 by definition, so the positive-f64
    /// bit patterns order identically to the values and an integer
    /// `fetch_max` suffices.
    pub(crate) fn record_q_error(&self, q_error: f64) {
        if q_error.is_finite() && q_error > 0.0 {
            self.max_q_error_seen
                .fetch_max(q_error.to_bits(), Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time copy of all counters (each
    /// counter is read atomically; the set is not fenced — fine for
    /// monitoring).
    pub fn snapshot(&self) -> StatsSnapshot {
        let bits = self.max_q_error_seen.load(Ordering::Relaxed);
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            analyzes: self.analyzes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            max_q_error_seen: (bits != 0).then(|| f64::from_bits(bits)),
        }
    }
}

/// A point-in-time copy of a server's [`ServerStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Queries served (every tier: cold, plan-cached, result-cached).
    pub queries: u64,
    /// Queries that skipped optimize+plan via the plan cache.
    pub plan_hits: u64,
    /// Queries that skipped execution entirely via the result cache.
    pub result_hits: u64,
    /// Write operations applied ([`crate::WriteOp::Insert`] /
    /// [`crate::WriteOp::Set`] / [`crate::WriteOp::Remove`]).
    pub writes: u64,
    /// ANALYZE operations applied.
    pub analyzes: u64,
    /// Submissions rejected by [`crate::Session::try_query`] because the
    /// bounded queue was full.
    pub rejected: u64,
    /// The worst [`sj_eval::PlannedReport::max_q_error`] across all cold
    /// queries, when instrumentation and statistics are on — cost-model
    /// drift made visible in serving.
    pub max_q_error_seen: Option<f64>,
}

impl StatsSnapshot {
    /// Queries that actually executed (everything but result-cache
    /// hits).
    pub fn executed(&self) -> u64 {
        self.queries - self.result_hits
    }

    /// Cold queries: planned from scratch and executed.
    pub fn cold(&self) -> u64 {
        self.queries - self.result_hits - self.plan_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = ServerStats::default();
        s.bump_queries();
        s.bump_queries();
        s.bump_queries();
        s.bump_plan_hits();
        s.bump_result_hits();
        s.bump_writes();
        s.bump_analyzes();
        s.bump_rejected();
        let snap = s.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.plan_hits, 1);
        assert_eq!(snap.result_hits, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.analyzes, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.executed(), 2);
        assert_eq!(snap.cold(), 1);
    }

    #[test]
    fn q_error_keeps_the_maximum() {
        let s = ServerStats::default();
        assert_eq!(s.snapshot().max_q_error_seen, None);
        s.record_q_error(2.5);
        s.record_q_error(17.0);
        s.record_q_error(1.0);
        assert_eq!(s.snapshot().max_q_error_seen, Some(17.0));
        // Junk values are ignored.
        s.record_q_error(f64::NAN);
        s.record_q_error(f64::INFINITY);
        s.record_q_error(-3.0);
        assert_eq!(s.snapshot().max_q_error_seen, Some(17.0));
    }
}
